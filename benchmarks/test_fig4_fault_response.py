"""Experiment fig4-protocol: the fault-response exchange of Figure 4.

Benchmarks the full FixD pipeline on the replicated KV store with a buggy
backup: detection, peer checkpoint/model collection, recovery-line
assembly, channel-state reconstruction and investigation.
"""

from __future__ import annotations

from bench_workloads import build_kv_cluster

from repro.core.fixd import FixD, FixDConfig
from repro.investigator.investigator import InvestigatorConfig


def run_pipeline():
    cluster = build_kv_cluster(buggy=True)
    fixd = FixD(FixDConfig(investigator=InvestigatorConfig(max_states=2000, max_depth=50)))
    fixd.attach(cluster)
    cluster.run(max_events=2000)
    return fixd


def test_fig4_fault_response_pipeline(benchmark, report_rows):
    fixd = benchmark(run_pipeline)
    report = fixd.last_report
    assert report is not None, "the buggy backup must trigger a fault"
    report_rows.append(f"fault: {report.fault.invariant} at {report.fault.pid}")
    report_rows.append(
        f"peer responses: {len(report.protocol_run.responses)}; "
        f"consistent: {report.protocol_run.consistent}; "
        f"in-flight at line: {len(report.protocol_run.in_flight)}"
    )
    report_rows.append(
        f"investigation: {report.investigation.states_explored} states, "
        f"{len(report.investigation.trails)} violating trail(s)"
    )
    assert report.protocol_run.consistent
    assert report.investigation.found_violation


def test_fig4_protocol_cost_grows_with_cluster_size(report_rows):
    """Collecting checkpoints and models is linear in the number of peers."""
    from repro.api import Cluster, ClusterConfig, apps

    _kv = apps.app("kvstore").exports
    KVClient = _kv["KVClient"]
    KVReplica = _kv["KVReplica"]
    KVReplicaStale = _kv["KVReplicaStale"]

    class Rewriter(KVClient):
        operations = [("put", "k", 1), ("put", "k", 2)]

    sizes = {}
    for replicas in (2, 4, 6):
        cluster = Cluster(ClusterConfig(seed=21))
        cluster.add_process("replica0", KVReplica)
        for index in range(1, replicas):
            cluster.add_process(f"replica{index}", KVReplicaStale)
        cluster.add_process("client0", Rewriter)
        fixd = FixD(FixDConfig(investigate_on_fault=False))
        fixd.attach(cluster)
        cluster.run(max_events=3000)
        responses = len(fixd.last_report.protocol_run.responses) if fixd.last_report else 0
        sizes[replicas + 1] = responses
    report_rows.append(f"peer responses by cluster size: {sizes}")
    assert all(sizes[size] == size for size in sizes)
