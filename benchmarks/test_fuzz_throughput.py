"""Fuzzing-layer throughput: generation, fingerprinting, end-to-end execs.

Reports how fast the fuzz subsystem's three hot stages run — sampling
candidate scenarios from a learned vocabulary, fingerprinting finished
runs into coverage keys, and the full generate→execute→dedup loop.
These are reported (and floor-checked very loosely, to stay robust
across machines) rather than baseline-guarded: fuzzing throughput is a
capacity number, not a regression-gated hot path.
"""

from __future__ import annotations

from repro.api import FaultSchedule, Scenario, run_scenario
from repro.api.faults import Duplicate
from repro.fuzz import Budget, coverage_key, fuzz, generate_scenario, vocabulary_for

GENERATE_BATCH = 100


def test_generation_throughput(benchmark, report_rows):
    vocabulary = vocabulary_for("kvstore")

    def generate_batch():
        return [
            generate_scenario("kvstore", seed, vocabulary=vocabulary)
            for seed in range(GENERATE_BATCH)
        ]

    scenarios = benchmark(generate_batch)
    assert len(scenarios) == GENERATE_BATCH
    # each candidate is a valid, serializable artefact
    sample = scenarios[0]
    assert Scenario.from_json(sample.to_json()) == sample
    report_rows.append(f"generated {GENERATE_BATCH} candidate scenarios per round")


def test_coverage_fingerprint_throughput(benchmark, report_rows):
    outcome = run_scenario(
        Scenario(
            app="kvstore",
            name="bench-coverage",
            faults=FaultSchedule.of(Duplicate(match_kind="REPLICATE", count=1)),
        )
    )
    key = benchmark(coverage_key, outcome)
    assert len(key) == 16
    report_rows.append(
        f"fingerprinted a {outcome.scroll['entries']}-entry run into {key}"
    )


def test_fuzz_loop_execs_per_sec(report_rows):
    report = fuzz("token_ring", seed=9, budget=Budget(max_execs=30), shrink=False)
    report_rows.append(
        f"{report.execs} execs in {report.elapsed_s:.2f}s "
        f"({report.execs_per_sec:.1f}/s), {report.new_coverage} coverage points"
    )
    assert report.execs == 30
    # very loose capacity floor: the sim backend fuzzes way faster than
    # 5 scenarios/second on any machine this repo targets
    assert report.execs_per_sec > 5
