"""Experiment fig2-timemachine: rolling the system back to an earlier consistent point (Figure 2).

Measures the cost of computing a safe recovery line and restoring every
process of a token-ring run, and checks the qualitative claims: the
restored state is consistent and never ahead of the pre-rollback state.
"""

from __future__ import annotations

from bench_workloads import build_ring_cluster

from repro.timemachine.recovery_line import is_consistent
from repro.timemachine.time_machine import TimeMachine


def instrumented_ring():
    cluster = build_ring_cluster(nodes=3, rounds=5)
    time_machine = TimeMachine()
    time_machine.attach(cluster)
    cluster.run(max_events=300)
    return cluster, time_machine


def test_fig2_rollback_to_consistent_state(benchmark, report_rows):
    def run_once():
        cluster, time_machine = instrumented_ring()
        entries_before = {pid: cluster.process(pid).state["entries"] for pid in cluster.pids}
        result = time_machine.rollback_to_consistent_state()
        return cluster, result, entries_before

    cluster, result, entries_before = benchmark(run_once)
    entries_after = {pid: cluster.process(pid).state["entries"] for pid in cluster.pids}
    report_rows.append(f"restored processes: {result.restored_pids}")
    report_rows.append(f"max rollback distance (sim time): {result.max_rollback_distance:.2f}")
    assert is_consistent(result.recovery_line.checkpoints)
    assert all(entries_after[pid] <= entries_before[pid] for pid in cluster.pids)


def test_fig2_rollback_cost_scales_with_checkpoint_count(report_rows):
    """More recorded history means more (but still bounded) recovery-line work."""
    iterations = {}
    for rounds in (2, 5, 10):
        cluster = build_ring_cluster(nodes=3, rounds=rounds)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run(max_events=1000)
        line = time_machine.latest_recovery_line()
        iterations[rounds] = (time_machine.store.total_checkpoints(), line.iterations)
    report_rows.append(f"(checkpoints, line iterations) by rounds: {iterations}")
    counts = [value[0] for value in iterations.values()]
    assert counts == sorted(counts)
