"""Shared workload builders for the benchmark harness.

Kept separate from ``conftest.py`` so benchmark modules can import the
builders explicitly (``from bench_workloads import ...``) while the
fixture machinery stays in conftest.
"""

from __future__ import annotations

from repro.apps.kvstore import KVClient, KVReplica, KVReplicaStale
from repro.apps.token_ring import TokenRingNode, build_token_ring
from repro.dsim.cluster import Cluster, ClusterConfig


class RewritingClient(KVClient):
    """Client workload that overwrites keys (exposes the stale-version bug)."""

    operations = [
        ("put", "alpha", 1),
        ("put", "beta", 2),
        ("put", "alpha", 3),
        ("get", "alpha", None),
        ("put", "beta", 4),
        ("get", "beta", None),
    ]


def kvstore_factories(buggy: bool = False):
    """The standard 3-replica + 1-client KV store used throughout the benchmarks."""
    backup = KVReplicaStale if buggy else KVReplica
    return {
        "replica0": KVReplica,
        "replica1": backup,
        "replica2": backup,
        "client0": RewritingClient,
    }


def build_kv_cluster(seed: int = 21, buggy: bool = False, halt: bool = False) -> Cluster:
    cluster = Cluster(ClusterConfig(seed=seed, halt_on_violation=halt))
    for pid, factory in kvstore_factories(buggy).items():
        cluster.add_process(pid, factory)
    return cluster


def build_ring_cluster(nodes: int = 3, rounds: int = 5, seed: int = 5) -> Cluster:
    cluster = Cluster(ClusterConfig(seed=seed, halt_on_violation=False))
    build_token_ring(cluster, nodes=nodes, node_class=TokenRingNode, max_rounds=rounds)
    return cluster
