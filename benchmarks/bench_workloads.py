"""Shared workload builders for the benchmark harness.

Kept separate from ``conftest.py`` so benchmark modules can import the
builders explicitly (``from bench_workloads import ...``) while the
fixture machinery stays in conftest.  Everything is expressed through
the ``repro.api`` facade: clusters come from the app registry, and the
process classes the deep-dive benchmarks need come from the registry's
exports.
"""

from __future__ import annotations

from repro.api import Cluster, ClusterConfig, apps

_KV = apps.app("kvstore").exports
KVReplica = _KV["KVReplica"]
KVReplicaStale = _KV["KVReplicaStale"]
#: overwrite-heavy client workload (exposes the stale-version bug)
RewritingClient = _KV["KVRewritingClient"]


def kvstore_factories(buggy: bool = False):
    """The standard 3-replica + 1-client KV store used throughout the benchmarks."""
    backup = KVReplicaStale if buggy else KVReplica
    return {
        "replica0": KVReplica,
        "replica1": backup,
        "replica2": backup,
        "client0": RewritingClient,
    }


def build_kv_cluster(seed: int = 21, buggy: bool = False, halt: bool = False) -> Cluster:
    cluster = Cluster(ClusterConfig(seed=seed, halt_on_violation=halt))
    apps.build(
        cluster,
        "kvstore",
        replicas=3,
        clients=1,
        stale_backups=buggy,
        rewriting_clients=True,
    )
    return cluster


def build_ring_cluster(nodes: int = 3, rounds: int = 5, seed: int = 5) -> Cluster:
    cluster = Cluster(ClusterConfig(seed=seed, halt_on_violation=False))
    apps.build(cluster, "token_ring", nodes=nodes, max_rounds=rounds)
    return cluster
