"""Experiment fig1-scroll: recording nondeterministic actions on the Scroll (Figure 1).

The paper claims the Scroll only needs to record nondeterministic actions
and their outcomes.  This benchmark measures the cost of running the KV
store workload with no recording, with liblog-style (library-level)
recording, and with Flashback-style (syscall-level) recording, and checks
the qualitative shape: recording overhead is modest and the
coarser-grained policies record strictly fewer entries.
"""

from __future__ import annotations

from bench_workloads import build_kv_cluster, kvstore_factories

from repro.scroll.interceptor import InterceptionMode, RecordingPolicy
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.replayer import Replayer


def run_workload(policy=None):
    cluster = build_kv_cluster()
    recorder = None
    if policy is not None:
        recorder = ScrollRecorder(policy=policy)
        cluster.add_hook(recorder)
    result = cluster.run(max_events=2000)
    return result, recorder


def test_fig1_baseline_no_recording(benchmark, report_rows):
    result, _ = benchmark(run_workload, None)
    report_rows.append(f"baseline events executed: {result.events_executed}")
    assert result.ok


def test_fig1_library_level_recording(benchmark, report_rows):
    result, recorder = benchmark(run_workload, RecordingPolicy(InterceptionMode.LIBRARY))
    report_rows.append(f"liblog-style entries recorded: {len(recorder.scroll)}")
    assert result.ok
    assert len(recorder.scroll) > 0


def test_fig1_syscall_level_recording(benchmark, report_rows):
    result, recorder = benchmark(run_workload, RecordingPolicy(InterceptionMode.SYSCALL))
    report_rows.append(f"flashback-style entries recorded: {len(recorder.scroll)}")
    assert result.ok


def test_fig1_recorded_scroll_supports_replay(report_rows):
    """The recorded Scroll is sufficient to replay every process offline."""
    _, recorder = run_workload(RecordingPolicy(InterceptionMode.SYSCALL))
    report = Replayer(recorder.scroll, kvstore_factories()).replay_all()
    report_rows.append(
        f"replayed {report.total_events()} events across {len(report.processes)} processes, "
        f"divergences: {len(report.diverged_processes())}"
    )
    assert report.ok


def test_fig1_policy_granularity_ordering(report_rows):
    """blackbox < library < syscall in entries recorded (same workload)."""
    sizes = {}
    for mode in (InterceptionMode.BLACKBOX, InterceptionMode.LIBRARY, InterceptionMode.SYSCALL):
        _, recorder = run_workload(RecordingPolicy(mode))
        sizes[mode.value] = len(recorder.scroll)
    report_rows.append(f"entries by interception mode: {sizes}")
    assert sizes["blackbox"] <= sizes["library"] <= sizes["syscall"]
