"""Experiment fig8-matrix: the technique/tool comparison matrix (Figure 8).

Regenerates the paper's Figure 8 from the capability registry: the
technique and comparison-tool rows are fixed by the paper, while FixD's
row is *derived* from the components this library actually implements.
The assertions check the derived row matches the paper's claim (every
column covered) and that no single technique achieves that by itself.
"""

from __future__ import annotations

from repro.core.registry import (
    FIXD_CLAIMED_SERVICES,
    ServiceKind,
    Technique,
    default_matrix,
    derive_composite_capability,
)


def test_fig8_matrix_regeneration(benchmark, report_rows):
    matrix = benchmark(default_matrix)
    report_rows.append("")
    report_rows.extend(matrix.render().splitlines())
    fixd_row = matrix.get("FixD")
    assert fixd_row is not None
    assert fixd_row.services == FIXD_CLAIMED_SERVICES


def test_fig8_technique_rows_match_paper(report_rows):
    matrix = default_matrix()
    expectations = {
        "Model Checking": {ServiceKind.PREVENTIVE, ServiceKind.COMPREHENSIVE},
        "Logging": {ServiceKind.DIAGNOSTIC, ServiceKind.OPPORTUNISTIC},
        "Checkpoint & Rollback": {ServiceKind.OPPORTUNISTIC},
        "Dynamic Updates": {ServiceKind.TREATMENT},
        "Speculations": {ServiceKind.TREATMENT, ServiceKind.OPPORTUNISTIC},
        "liblog": {ServiceKind.DIAGNOSTIC, ServiceKind.OPPORTUNISTIC},
        "CMC": {ServiceKind.OPPORTUNISTIC},
    }
    for name, services in expectations.items():
        row = matrix.get(name)
        assert row is not None, f"missing row {name}"
        assert row.services == frozenset(services), f"row {name} does not match the paper"
    report_rows.append(f"verified {len(expectations)} technique/tool rows against Figure 8")


def test_fig8_every_column_requires_the_composition(report_rows):
    """Dropping any one of FixD's constituent techniques loses at least one column."""
    full = [
        Technique.MODEL_CHECKING,
        Technique.LOGGING,
        Technique.SPECULATIONS,
        Technique.DYNAMIC_UPDATES,
        Technique.CHECKPOINT_ROLLBACK,
    ]
    # Speculations and dynamic updates overlap on "treatment", and speculations
    # subsume checkpoint/rollback's column, so only some omissions lose coverage;
    # the essential ones are model checking (preventive/comprehensive) and logging
    # (diagnostic).
    for essential in (Technique.MODEL_CHECKING, Technique.LOGGING):
        reduced = [technique for technique in full if technique is not essential]
        row = derive_composite_capability("FixD-minus", reduced)
        assert row.services != FIXD_CLAIMED_SERVICES
    report_rows.append("model checking and logging are each essential to full coverage")
