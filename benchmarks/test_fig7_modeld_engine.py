"""Experiment fig7-modeld: the ModelD engine (front-end + back-end, Figure 7).

Benchmarks the guarded-command back-end on a classic protocol model and
exercises the two features Figure 7's architecture enables: dynamic
action injection and custom search order.
"""

from __future__ import annotations

from repro.investigator.explorer import SearchOrder
from repro.investigator.frontend import ModelBuilder
from repro.investigator.guarded import Action
from repro.investigator.modeld import ModelD, ModelDConfig


def ticket_lock_builder(customers: int = 3) -> ModelBuilder:
    """A ticket lock with N customers; the buggy 'barge' action skips the queue."""
    builder = ModelBuilder("ticket-lock")
    builder.variables(next_ticket=0, serving=0, in_cs=0, done=0)

    def take(state):
        return state.with_values(next_ticket=state["next_ticket"] + 1)

    def enter(state):
        return state.with_values(in_cs=state["in_cs"] + 1, serving=state["serving"] + 1)

    def barge(state):
        # BUG: enters the critical section without holding the serving ticket.
        return state.with_values(in_cs=state["in_cs"] + 1)

    def leave(state):
        return state.with_values(in_cs=state["in_cs"] - 1, done=state["done"] + 1)

    builder.add_action("take-ticket", take, guard=lambda s: s["next_ticket"] < customers)
    builder.add_action("enter", enter, guard=lambda s: s["serving"] < s["next_ticket"] and s["in_cs"] == 0)
    builder.add_action("barge", barge, guard=lambda s: s["next_ticket"] > 0)
    builder.add_action("leave", leave, guard=lambda s: s["in_cs"] > 0)
    builder.invariant("mutual-exclusion", lambda s: s["in_cs"] <= 1)
    builder.terminal(lambda s: s["done"] >= customers)
    return builder


def test_fig7_backend_exhaustive_check(benchmark, report_rows):
    checker = ModelD.from_builder(ticket_lock_builder(), ModelDConfig(max_states=50_000))
    result = benchmark(checker.check, SearchOrder.BFS)
    report_rows.append(
        f"states={result.states_explored} transitions={result.transitions} "
        f"violations={len(result.violations)}"
    )
    assert not result.ok
    assert result.shortest_violation().length <= 4


def test_fig7_dynamic_action_injection_fixes_model(benchmark, report_rows):
    def inject_and_check():
        checker = ModelD.from_builder(ticket_lock_builder(), ModelDConfig(max_states=50_000))
        checker.inject_action(
            Action(
                "barge",
                effect=lambda s: s,
                guard=lambda s: False,   # the fix disables barging entirely
            )
        )
        return checker.check(SearchOrder.BFS)

    result = benchmark(inject_and_check)
    report_rows.append(f"after injection: violations={len(result.violations)}")
    assert result.ok


def test_fig7_search_order_is_pluggable(report_rows):
    checker = ModelD.from_builder(ticket_lock_builder(), ModelDConfig(max_states=50_000))
    rows = {}
    for order in (SearchOrder.BFS, SearchOrder.DFS, SearchOrder.HEURISTIC, SearchOrder.RANDOM):
        if order is SearchOrder.HEURISTIC:
            result = checker.heuristic_check(lambda s: s["in_cs"])
        elif order is SearchOrder.RANDOM:
            result = checker.random_walks(seed=2)
        else:
            result = checker.check(order)
        rows[order.value] = (result.states_explored, len(result.violations) + len(result.deadlocks))
    report_rows.append(f"(states, findings) by search order: {rows}")
    assert all(found >= 1 for _, found in rows.values())
