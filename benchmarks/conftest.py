"""Fixtures for the benchmark harness."""

from __future__ import annotations

import pytest


@pytest.fixture
def report_rows(request):
    """Collect printable result rows; printed at teardown so they survive -q runs."""
    rows = []
    yield rows
    if rows:
        header = f"\n[{request.node.name}]"
        print(header)
        for row in rows:
            print("  " + row)
