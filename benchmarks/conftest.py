"""Fixtures for the benchmark harness."""

from __future__ import annotations

from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Every benchmark is `slow`: excluded from the default quick run.

    The hook receives the whole session's items, so restrict the marker
    to this directory.  The full sweep still runs under ``pytest -m ""``
    (see pytest.ini).
    """
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def report_rows(request):
    """Collect printable result rows; printed at teardown so they survive -q runs."""
    rows = []
    yield rows
    if rows:
        header = f"\n[{request.node.name}]"
        print(header)
        for row in rows:
            print("  " + row)
