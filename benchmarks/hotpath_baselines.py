"""Seed (pre-index) reference implementations of the three hot paths.

These are byte-for-byte ports of the implementations this repository
shipped with before the hot-path overhaul: linear-scan Scroll queries, a
scheduler whose ``peek_time`` sorts the whole queue, and a COW capture
that re-pickles and re-hashes the entire state on every checkpoint.

They serve two purposes:

* ``benchmarks/test_perf_hotpaths.py`` and ``benchmarks/run_bench.py``
  measure the indexed implementations against them;
* ``tests/property/test_hotpath_equivalence.py`` asserts the optimized
  implementations produce *identical* observable behavior.

Keep them dumb and obviously correct — they are the oracle.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import pickle
import statistics
import time as _time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.dsim.scheduler import Event, EventKind  # facade-ok: seed-behaviour oracle of the scheduler internals
from repro.errors import SimulationError
from repro.scroll.entry import ActionKind, ScrollEntry

# ----------------------------------------------------------------------
# Scroll baseline: every query is a full linear scan
# ----------------------------------------------------------------------


class NaiveScrollQueries:
    """Linear-scan versions of the Scroll query surface."""

    def __init__(self, entries: Iterable[ScrollEntry]) -> None:
        self._entries: List[ScrollEntry] = list(entries)

    def entries_for(self, pid: str) -> List[ScrollEntry]:
        return [entry for entry in self._entries if entry.pid == pid]

    def of_kind(self, *kinds: ActionKind) -> List[ScrollEntry]:
        wanted = set(kinds)
        return [entry for entry in self._entries if entry.kind in wanted]

    def nondeterministic(self) -> List[ScrollEntry]:
        return [entry for entry in self._entries if entry.is_nondeterministic]

    def between(self, start: float, end: float) -> List[ScrollEntry]:
        return [entry for entry in self._entries if start <= entry.time < end]

    def pids(self) -> List[str]:
        return sorted({entry.pid for entry in self._entries})

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self._entries:
            counts[entry.kind.value] = counts.get(entry.kind.value, 0) + 1
        return counts

    def counts_by_process(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self._entries:
            counts[entry.pid] = counts.get(entry.pid, 0) + 1
        return counts

    def last_entry(self, pid: Optional[str] = None) -> Optional[ScrollEntry]:
        candidates = self._entries if pid is None else self.entries_for(pid)
        return candidates[-1] if candidates else None

    def received_messages(self, pid: str) -> List[Dict]:
        return [
            entry.detail["message"]
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.RECEIVE and "message" in entry.detail
        ]

    def sent_messages(self, pid: str) -> List[Dict]:
        return [
            entry.detail["message"]
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.SEND and "message" in entry.detail
        ]

    def random_outcomes(self, pid: str) -> List[Dict]:
        return [
            {"method": entry.detail.get("method"), "value": entry.detail.get("value")}
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.RANDOM
        ]

    def clock_reads(self, pid: str) -> List[float]:
        return [
            entry.detail.get("value", entry.time)
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.CLOCK_READ
        ]

    def timer_firings(self, pid: str) -> List[Dict]:
        return [
            {"name": entry.detail.get("name"), "time": entry.time}
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.TIMER
        ]

    @staticmethod
    def merge_key(entry: ScrollEntry):
        causal_weight = sum(entry.vt.as_dict().values()) if entry.vt is not None else 0
        return (entry.time, causal_weight, entry.seq)

    @staticmethod
    def merge(scroll_entry_lists: Iterable[Iterable[ScrollEntry]]) -> List[ScrollEntry]:
        combined: List[ScrollEntry] = []
        for entries in scroll_entry_lists:
            combined.extend(entries)
        return sorted(combined, key=NaiveScrollQueries.merge_key)


# ----------------------------------------------------------------------
# Scheduler baseline: sorted(queue) per peek, full scans on cancel
# ----------------------------------------------------------------------


class NaiveScheduler:
    """The seed scheduler: correct, but peek/cancel/pending scan everything."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def executed_events(self) -> int:
        return self._executed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, kind: EventKind, target: str, payload: Any = None) -> Event:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} time units in the past")
        return self.schedule_at(self._now + delay, kind, target, payload)

    def schedule_at(self, time: float, kind: EventKind, target: str, payload: Any = None) -> Event:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} which is before now (t={self._now})"
            )
        event = Event(time=float(time), seq=next(self._sequence), kind=kind, target=target, payload=payload)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        event.cancelled = True

    def cancel_for_target(self, target: str, kind: Optional[EventKind] = None) -> int:
        cancelled = 0
        for event in self._queue:
            if event.cancelled or event.target != target:
                continue
            if kind is not None and event.kind is not kind:
                continue
            event.cancelled = True
            cancelled += 1
        return cancelled

    def pop_next(self) -> Optional[Event]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue produced an event from the past")
            self._now = event.time
            self._executed += 1
            return event
        return None

    def pending(self, kind: Optional[EventKind] = None) -> List[Event]:
        events = sorted(event for event in self._queue if not event.cancelled)
        if kind is not None:
            events = [event for event in events if event.kind is kind]
        return events

    def peek_time(self) -> Optional[float]:
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time
        return None

    def drain(self, until: Optional[float] = None):
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                return
            event = self.pop_next()
            if event is None:
                return
            yield event

    def reset_to(self, time: float) -> None:
        self._queue.clear()
        self._now = float(time)


# ----------------------------------------------------------------------
# COW baseline: re-pickle and re-hash the whole state per capture
# ----------------------------------------------------------------------


class NaiveCowCapture:
    """The seed capture loop, instrumented to count bytes hashed."""

    def __init__(self, page_size: int = 1024) -> None:
        self.page_size = page_size
        self._pages: Dict[str, bytes] = {}
        self.hashed_bytes_total = 0
        self.serialized_bytes_total = 0

    def capture(self, state: Dict[str, Any]) -> List[str]:
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        self.serialized_bytes_total += len(blob)
        pages = [
            blob[offset : offset + self.page_size]
            for offset in range(0, len(blob), self.page_size)
        ] or [b""]
        hashes = []
        for page in pages:
            self.hashed_bytes_total += len(page)
            digest = hashlib.sha1(page).hexdigest()
            hashes.append(digest)
            if digest not in self._pages:
                self._pages[digest] = page
        return hashes


# ----------------------------------------------------------------------
# timing helper
# ----------------------------------------------------------------------


def sample_ns_per_op(fn: Callable[[], int], repeats: int = 5) -> List[float]:
    """Nanoseconds per operation for each of ``repeats`` runs.

    ``fn`` performs a batch of work and returns the operation count of
    that batch.
    """
    samples = []
    for _ in range(repeats):
        start = _time.perf_counter_ns()
        ops = fn()
        elapsed = _time.perf_counter_ns() - start
        samples.append(elapsed / max(1, ops))
    return samples


def interleaved_ns_per_op(
    a: Callable[[], int], b: Callable[[], int], repeats: int = 5
) -> tuple:
    """Alternate timing of two workloads so machine-load drift hits both.

    Returns ``(samples_a, samples_b)``; compare their minima for a
    contention-resistant ratio (the minimum approximates the
    uncontended cost), and report medians for the trajectory file.
    """
    samples_a: List[float] = []
    samples_b: List[float] = []
    for _ in range(repeats):
        samples_a.extend(sample_ns_per_op(a, 1))
        samples_b.extend(sample_ns_per_op(b, 1))
    return samples_a, samples_b


def median_ns_per_op(fn: Callable[[], int], repeats: int = 5) -> float:
    """Median nanoseconds per operation over ``repeats`` runs."""
    return statistics.median(sample_ns_per_op(fn, repeats))
