"""Ablation ablation-search-order: BFS vs DFS vs heuristic vs random search.

ModelD's pluggable search order is what lets the Investigator either
follow one conventional path or hunt for bugs; this ablation measures how
many states each order needs to find the first violation in a
seeded-bug protocol model.
"""

from __future__ import annotations

from repro.investigator.explorer import Explorer, SearchOrder
from repro.investigator.frontend import ModelBuilder


def racy_counter_builder(depth: int = 6) -> ModelBuilder:
    """Two counters; the bug state needs both to reach ``depth`` (a deep interleaving)."""
    builder = ModelBuilder("racy-counters")
    builder.variables(x=0, y=0)
    builder.add_action("inc-x", lambda s: s.with_values(x=s["x"] + 1), guard=lambda s: s["x"] < depth)
    builder.add_action("inc-y", lambda s: s.with_values(y=s["y"] + 1), guard=lambda s: s["y"] < depth)
    builder.invariant("not-both-maxed", lambda s: not (s["x"] == depth and s["y"] == depth))
    return builder


def states_to_first_violation(order: SearchOrder, **kwargs) -> int:
    model = racy_counter_builder().build()
    explorer = Explorer(
        model,
        search_order=order,
        max_states=100_000,
        stop_at_first_violation=True,
        check_deadlocks=False,
        **kwargs,
    )
    result = explorer.explore()
    assert not result.ok, f"{order} failed to find the seeded violation"
    return result.states_explored


def test_search_order_bfs(benchmark, report_rows):
    states = benchmark(states_to_first_violation, SearchOrder.BFS)
    report_rows.append(f"bfs: {states} states to first violation")


def test_search_order_dfs(benchmark, report_rows):
    states = benchmark(states_to_first_violation, SearchOrder.DFS)
    report_rows.append(f"dfs: {states} states to first violation")


def test_search_order_heuristic(benchmark, report_rows):
    states = benchmark(
        states_to_first_violation, SearchOrder.HEURISTIC, heuristic=lambda s: s["x"] + s["y"]
    )
    report_rows.append(f"heuristic: {states} states to first violation")


def test_search_order_random(benchmark, report_rows):
    states = benchmark(states_to_first_violation, SearchOrder.RANDOM, random_seed=3, max_depth=20)
    report_rows.append(f"random: {states} states to first violation")


def test_guided_orders_beat_bfs_on_deep_bugs(report_rows):
    bfs = states_to_first_violation(SearchOrder.BFS)
    dfs = states_to_first_violation(SearchOrder.DFS)
    heuristic = states_to_first_violation(SearchOrder.HEURISTIC, heuristic=lambda s: s["x"] + s["y"])
    report_rows.append(f"states to violation: bfs={bfs}, dfs={dfs}, heuristic={heuristic}")
    assert dfs < bfs
    assert heuristic < bfs
