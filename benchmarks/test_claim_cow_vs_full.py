"""Experiment claim-4.2-cow: copy-on-write checkpoints are lighter than full copies
(Section 4.2).

Sweeps state size and mutation ratio and compares bytes written per
checkpoint by the COW page store against full deep-copy checkpoints.  The
paper's qualitative claim — "checkpoints generated using speculations
introduce less overhead than certain types of traditional checkpointing"
— corresponds to the COW store writing a small fraction of the full size
once most of the state is unchanged between checkpoints.
"""

from __future__ import annotations

from repro.timemachine.cow import CowPageStore, full_checkpoint_bytes


ITEM_BYTES = 1024


def _item(tag: str) -> str:
    """A bulk item of exactly ITEM_BYTES characters (stable sizes keep pages aligned)."""
    return (tag + "-").ljust(ITEM_BYTES, "x")


def make_state(kilobytes: int) -> dict:
    """A process state with ``kilobytes`` KiB of bulk data plus a few counters."""
    return {
        "bulk": [_item(f"init{index:05d}") for index in range(kilobytes)],
        "counter": 0,
        "cursor": 0,
    }


def checkpoint_series(kilobytes: int, checkpoints: int, mutate_fraction: float, page_size: int = 1024):
    """Take a series of checkpoints, mutating a fraction of the bulk data between them."""
    store = CowPageStore(page_size=page_size)
    state = make_state(kilobytes)
    mutated_items = max(1, int(kilobytes * mutate_fraction))
    for index in range(checkpoints):
        state["counter"] = index
        if index:
            for offset in range(mutated_items):
                position = (index * 7 + offset) % kilobytes
                state["bulk"][position] = _item(f"v{index:03d}-{offset:04d}")
        store.capture("p", state, float(index))
    return store


def test_cow_capture_small_mutations(benchmark, report_rows):
    store = benchmark(checkpoint_series, 64, 5, 0.05)
    report_rows.append(
        f"64 KiB state, 5% mutated: stored={store.stored_bytes()} logical={store.logical_bytes()} "
        f"savings={store.savings_ratio():.1%}"
    )
    assert store.savings_ratio() > 0.5


def test_full_checkpoint_baseline(benchmark, report_rows):
    state = make_state(64)
    size = benchmark(full_checkpoint_bytes, state)
    report_rows.append(f"full checkpoint of 64 KiB state: {size} bytes per checkpoint")
    assert size > 64 * 1024


def test_cow_savings_grow_as_mutation_ratio_falls(report_rows):
    savings = {}
    for fraction in (0.5, 0.2, 0.05):
        store = checkpoint_series(32, 6, fraction)
        savings[fraction] = round(store.savings_ratio(), 3)
    report_rows.append(f"savings ratio by mutation fraction: {savings}")
    assert savings[0.05] > savings[0.2] > savings[0.5]


def test_cow_never_worse_than_full_copies_by_much(report_rows):
    """Even with 100% mutation the COW store stores about the logical volume (plus page slack)."""
    store = checkpoint_series(16, 4, 1.0)
    overhead = store.stored_bytes() / store.logical_bytes()
    report_rows.append(f"worst-case stored/logical ratio: {overhead:.2f}")
    assert overhead <= 1.1
