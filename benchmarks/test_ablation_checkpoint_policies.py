"""Ablation ablation-ckpt-policy: communication-induced vs periodic vs coordinated
checkpointing.

The design choice DESIGN.md calls out: the paper picks communication-
induced checkpointing (via speculations); this ablation quantifies the
trade-off against the uncoordinated periodic policy and the coordinated
stop-the-world snapshot on the same workload — checkpoints taken, bytes
stored, and how far the safe recovery line lags the failure point.
"""

from __future__ import annotations

from bench_workloads import build_kv_cluster

from repro.timemachine.coordinated import CoordinatedSnapshotter
from repro.timemachine.recovery_line import compute_recovery_line, is_consistent, unsafe_line
from repro.timemachine.time_machine import CheckpointPolicy, TimeMachine, TimeMachineConfig


def run_with_policy(policy: CheckpointPolicy, periodic_interval: int = 5):
    cluster = build_kv_cluster()
    time_machine = TimeMachine(
        TimeMachineConfig(policy=policy, periodic_interval=periodic_interval)
    )
    time_machine.attach(cluster)
    cluster.start()
    if policy is CheckpointPolicy.COORDINATED:
        # Coordinated snapshots are taken explicitly at intervals.
        snapshotter = CoordinatedSnapshotter(time_machine.store)
        for _ in range(4):
            cluster.run(max_events=20)
            snapshotter.take_snapshot(cluster)
    cluster.run(max_events=2000)
    return cluster, time_machine


def test_policy_comm_induced(benchmark, report_rows):
    cluster, tm = benchmark(run_with_policy, CheckpointPolicy.COMMUNICATION_INDUCED)
    line = compute_recovery_line(tm.store)
    report_rows.append(
        f"comm-induced: checkpoints={tm.store.total_checkpoints()} "
        f"bytes={tm.store.total_bytes()} rollback_steps={line.total_rollback_steps()}"
    )
    assert is_consistent(line.checkpoints)
    assert line.total_rollback_steps() == 0  # the latest cut is already consistent


def test_policy_periodic(benchmark, report_rows):
    cluster, tm = benchmark(run_with_policy, CheckpointPolicy.PERIODIC)
    line = compute_recovery_line(tm.store)
    report_rows.append(
        f"periodic(5): checkpoints={tm.store.total_checkpoints()} "
        f"bytes={tm.store.total_bytes()} rollback_steps={line.total_rollback_steps()}"
    )
    assert is_consistent(line.checkpoints)


def test_policy_coordinated(benchmark, report_rows):
    cluster, tm = benchmark(run_with_policy, CheckpointPolicy.COORDINATED)
    report_rows.append(
        f"coordinated: checkpoints={tm.store.total_checkpoints()} bytes={tm.store.total_bytes()}"
    )
    line = compute_recovery_line(tm.store)
    assert is_consistent(line.checkpoints)


def test_policy_tradeoff_shape(report_rows):
    """Comm-induced takes the most checkpoints but needs no rollback propagation."""
    _, comm = run_with_policy(CheckpointPolicy.COMMUNICATION_INDUCED)
    _, periodic = run_with_policy(CheckpointPolicy.PERIODIC, periodic_interval=7)
    comm_count = comm.store.total_checkpoints()
    periodic_count = periodic.store.total_checkpoints()
    comm_line = compute_recovery_line(comm.store)
    periodic_line = compute_recovery_line(periodic.store)
    report_rows.append(
        f"checkpoints: comm-induced={comm_count}, periodic={periodic_count}; "
        f"rollback steps: comm-induced={comm_line.total_rollback_steps()}, "
        f"periodic={periodic_line.total_rollback_steps()}"
    )
    assert comm_count > periodic_count
    assert comm_line.total_rollback_steps() <= periodic_line.total_rollback_steps()
