"""Hot-path microbenchmarks: indexed Scroll, O(log n) scheduler, dirty-page COW.

Quantifies the three asymptotic wins of the hot-path overhaul against
the seed implementations preserved in :mod:`hotpath_baselines`:

* per-pid Scroll queries: index-backed O(k) vs full-log linear scans;
* ``Scheduler.drain`` with cancellations: lazy deletion + per-target
  index vs sort-the-queue-per-peek;
* ``CowPageStore.capture``: per-key dirty tracking vs re-pickling and
  re-hashing the whole state every checkpoint.

The speedup thresholds asserted here (10x / 10x / 5x) are the issue's
acceptance floors; the measured ratios are typically 1-2 orders of
magnitude above them, so the assertions are robust to machine noise.
"""

from __future__ import annotations

from run_bench import measure_cow, measure_scheduler, measure_scroll, measure_scroll_spill

N_EVENTS = 50_000


def test_scroll_per_pid_queries_10x(report_rows):
    metrics = measure_scroll(n=N_EVENTS, pids=100, repeats=5)
    report_rows.append(
        f"indexed={metrics['indexed_ns_per_query']:.0f}ns/query "
        f"naive={metrics['naive_ns_per_query']:.0f}ns/query "
        f"speedup={metrics['speedup']:.1f}x"
    )
    assert metrics["speedup"] >= 10.0


def test_scheduler_drain_with_cancellations_10x(report_rows):
    metrics = measure_scheduler(n=N_EVENTS, targets=100, repeats=3, naive_sample=25)
    report_rows.append(
        f"indexed={metrics['indexed_ns_per_event']:.0f}ns/event "
        f"naive={metrics['naive_ns_per_event']:.0f}ns/event "
        f"speedup={metrics['speedup']:.1f}x"
    )
    assert metrics["speedup"] >= 10.0


def test_spilled_scroll_replay_within_2x_and_5x_leaner(report_rows):
    """Tiered-storage acceptance: on a 100k-entry log spilled to a 10% hot
    window, whole-system replay stays within 2x of the in-memory path while
    resident entry storage shrinks at least 5x — and the replayed states are
    identical."""
    metrics = measure_scroll_spill(n=100_000, pids=20, hot_fraction=0.10, repeats=3)
    report_rows.append(
        f"replay memory={metrics['memory_replay_ns_per_event']:.0f}ns/event "
        f"tiered={metrics['tiered_replay_ns_per_event']:.0f}ns/event "
        f"slowdown={metrics['replay_slowdown']:.2f}x "
        f"memory_reduction={metrics['memory_reduction']:.1f}x "
        f"({metrics['spilled_entries']} of {metrics['n_entries']} entries spilled)"
    )
    assert metrics["replay_equivalent"], "spilled replay must match in-memory replay"
    assert metrics["replay_slowdown"] <= 2.0
    assert metrics["memory_reduction"] >= 5.0


def test_cow_capture_hashes_5x_fewer_bytes(report_rows):
    metrics = measure_cow(keys=200, key_bytes=512, captures=50, mutate_fraction=0.01)
    report_rows.append(
        f"cow={metrics['cow_hashed_bytes_per_capture']:.0f}B/capture "
        f"naive={metrics['naive_hashed_bytes_per_capture']:.0f}B/capture "
        f"reduction={metrics['hash_reduction']:.1f}x"
    )
    assert metrics["restore_ok"], "dirty-page captures must restore the exact state"
    assert metrics["hash_reduction"] >= 5.0
