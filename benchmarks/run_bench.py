#!/usr/bin/env python
"""Hot-path microbenchmark entry point: emits ``BENCH_hotpaths.json``.

Measures the three hot paths the perf overhaul targets — indexed Scroll
queries, the lazy-deletion scheduler, and dirty-page COW captures —
against the seed (pre-overhaul) reference implementations in
:mod:`hotpath_baselines`, and writes median ns/op (and bytes hashed per
capture) so future PRs can track the perf trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py [--quick] [--out PATH]

The same measurement functions back ``benchmarks/test_perf_hotpaths.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import statistics  # noqa: E402

from hotpath_baselines import (  # noqa: E402
    NaiveCowCapture,
    NaiveScheduler,
    NaiveScrollQueries,
    interleaved_ns_per_op,
)

from repro.dsim.scheduler import EventKind, Scheduler  # noqa: E402
from repro.scroll.entry import ActionKind, ScrollEntry  # noqa: E402
from repro.scroll.scroll import Scroll  # noqa: E402
from repro.timemachine.cow import CowPageStore  # noqa: E402

_QUERY_KINDS = [
    ActionKind.RECEIVE,
    ActionKind.SEND,
    ActionKind.RANDOM,
    ActionKind.CLOCK_READ,
    ActionKind.TIMER,
]


def make_entries(n: int, pids: int):
    """A deterministic, realistically shaped global log of ``n`` entries."""
    entries = []
    for index in range(n):
        pid = f"p{index % pids}"
        kind = _QUERY_KINDS[index % len(_QUERY_KINDS)]
        detail = {}
        if kind in (ActionKind.RECEIVE, ActionKind.SEND):
            detail = {"message": {"msg_id": index, "src": pid, "dst": "p0", "kind": "X", "payload": index}}
        elif kind is ActionKind.RANDOM:
            detail = {"method": "random", "value": (index % 997) / 997.0}
        elif kind is ActionKind.CLOCK_READ:
            detail = {"value": index * 0.001}
        elif kind is ActionKind.TIMER:
            detail = {"name": f"t{index % 7}"}
        entries.append(ScrollEntry(pid=pid, kind=kind, time=index * 0.001, detail=detail))
    return entries


def measure_scroll(n: int = 50_000, pids: int = 50, repeats: int = 5) -> Dict[str, float]:
    """Per-pid replay-material queries: indexed Scroll vs linear scans."""
    entries = make_entries(n, pids)
    indexed = Scroll(entries)
    naive = NaiveScrollQueries(entries)
    all_pids = [f"p{i}" for i in range(pids)]

    def run_queries(log) -> int:
        for pid in all_pids:
            log.entries_for(pid)
            log.received_messages(pid)
            log.random_outcomes(pid)
            log.clock_reads(pid)
            log.timer_firings(pid)
        return 5 * len(all_pids)

    indexed_samples, naive_samples = interleaved_ns_per_op(
        lambda: run_queries(indexed), lambda: run_queries(naive), repeats
    )
    return {
        "n_entries": n,
        "indexed_ns_per_query": statistics.median(indexed_samples),
        "naive_ns_per_query": statistics.median(naive_samples),
        # ratio of minima: the uncontended costs, robust to machine load
        "speedup": min(naive_samples) / min(indexed_samples),
    }


def _fill_scheduler(scheduler, n: int, targets: int) -> None:
    """Schedule ``n`` events and cancel roughly half of them.

    Mimics the crash/rollback pattern: whole-target cancellations via
    ``cancel_for_target`` plus scattered single-event cancels.
    """
    events = []
    for index in range(n):
        target = f"t{index % targets}"
        kind = EventKind.DELIVER if index % 3 else EventKind.TIMER
        events.append(scheduler.schedule((index * 7919) % 1000 + 0.001, kind, target, payload=index))
    for target_index in range(0, targets, 2):  # "crash" every other target
        scheduler.cancel_for_target(f"t{target_index}")
    for index in range(0, n, 13):  # scattered timer cancellations
        scheduler.cancel(events[index])


def measure_scheduler(
    n: int = 50_000, targets: int = 100, repeats: int = 3, naive_sample: int = 25
) -> Dict[str, float]:
    """drain()-with-cancellations: lazy deletion vs sort-per-peek.

    The optimized scheduler drains all ``n`` events.  The seed scheduler
    sorts the whole queue on every ``peek_time``, so draining 50k events
    outright is infeasible; its per-event cost is sampled over the first
    ``naive_sample`` drain steps at full queue depth (which *understates*
    the seed's true total cost, since the queue only shrinks later).
    """

    def drain_fast() -> int:
        scheduler = Scheduler()
        _fill_scheduler(scheduler, n, targets)
        count = 0
        for _ in scheduler.drain():
            count += 1
        return count

    def drain_naive_sample() -> int:
        scheduler = NaiveScheduler()
        _fill_scheduler(scheduler, n, targets)
        count = 0
        for _ in scheduler.drain():
            count += 1
            if count >= naive_sample:
                break
        return count

    indexed_samples, naive_samples = interleaved_ns_per_op(
        drain_fast, drain_naive_sample, repeats
    )
    return {
        "n_events": n,
        "indexed_ns_per_event": statistics.median(indexed_samples),
        "naive_ns_per_event": statistics.median(naive_samples),
        "speedup": min(naive_samples) / min(indexed_samples),
    }


def measure_cow(
    keys: int = 200,
    key_bytes: int = 512,
    captures: int = 50,
    mutate_fraction: float = 0.01,
    page_size: int = 1024,
) -> Dict[str, float]:
    """Bytes SHA-1'd per capture: dirty-key tracking vs full re-hash."""
    def make_state() -> dict:
        return {f"key{i:04d}": f"v0-{i:04d}-".ljust(key_bytes, "x") for i in range(keys)}

    mutated = max(1, int(keys * mutate_fraction))

    cow = CowPageStore(page_size=page_size)
    naive = NaiveCowCapture(page_size=page_size)
    state = make_state()
    checkpoints = []
    for round_index in range(captures):
        if round_index:
            for offset in range(mutated):
                position = (round_index * 17 + offset) % keys
                state[f"key{position:04d}"] = f"v{round_index:03d}-{offset:04d}-".ljust(key_bytes, "x")
        checkpoints.append(cow.capture("p", state, float(round_index)))
        naive.capture(state)

    restore_ok = cow.restore(checkpoints[-1]) == state
    cow_per_capture = cow.hashed_bytes_total / captures
    naive_per_capture = naive.hashed_bytes_total / captures
    return {
        "captures": captures,
        "mutate_fraction": mutate_fraction,
        "cow_hashed_bytes_per_capture": cow_per_capture,
        "naive_hashed_bytes_per_capture": naive_per_capture,
        "hash_reduction": naive_per_capture / cow_per_capture,
        "cow_serialized_bytes_per_capture": cow.serialized_bytes_total / captures,
        "naive_serialized_bytes_per_capture": naive.serialized_bytes_total / captures,
        "restore_ok": restore_ok,
    }


def run_all(quick: bool = False) -> Dict[str, Dict[str, float]]:
    if quick:
        return {
            "scroll_per_pid_queries": measure_scroll(n=10_000, pids=20, repeats=3),
            "scheduler_drain_cancellations": measure_scheduler(n=10_000, targets=50, repeats=2, naive_sample=15),
            "cow_capture_dirty_pages": measure_cow(keys=100, captures=20),
        }
    return {
        "scroll_per_pid_queries": measure_scroll(),
        "scheduler_drain_cancellations": measure_scheduler(),
        "cow_capture_dirty_pages": measure_cow(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller workloads (CI smoke)")
    parser.add_argument("--out", default="BENCH_hotpaths.json", help="output path")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, metrics in results.items():
        line = ", ".join(
            f"{key}={value:.1f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in metrics.items()
        )
        print(f"{name}: {line}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
