#!/usr/bin/env python
"""Hot-path benchmark entry point: emits and checks ``BENCH_hotpaths.json``.

Measures the hot paths the perf PRs target — indexed Scroll queries, the
lazy-deletion scheduler, dirty-page COW captures, whole-log replay from
a spilled Scroll, and the three real-process transports (batched pipe
writes; zero-pickle shared-memory rings; batched socket frames) — and
writes the results as two profiles::

    PYTHONPATH=src python benchmarks/run_bench.py            # full + quick
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # quick only
    PYTHONPATH=src python benchmarks/run_bench.py --quick --check   # CI smoke

``BENCH_hotpaths.json`` holds a ``full`` profile (the committed perf
trajectory at production-ish sizes) and a ``quick`` profile (small sizes,
cheap enough for the default test run).  ``--check`` re-measures the
selected profile(s) and fails (exit 1) when a guarded metric regresses
more than 20% against the committed baseline.  Guarded metrics are the
machine-relative ratios (speedups, reduction factors, slowdowns) — raw
ns/op numbers vary across machines and are reported but not guarded;
each guard also has a green zone derived from the issue's acceptance
floors so scheduler-scale ratios (~10^4x) can't flap CI on timing noise.

The same measurement functions back ``benchmarks/test_perf_hotpaths.py``
and the non-slow smoke test in ``tests/integration/test_bench_smoke.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import statistics  # noqa: E402

from hotpath_baselines import (  # noqa: E402
    NaiveCowCapture,
    NaiveScheduler,
    NaiveScrollQueries,
    interleaved_ns_per_op,
)

from repro.api import Cluster, ClusterConfig, Process, apps, handler  # noqa: E402

# Internal perf oracles: this benchmark measures the scheduler and the
# mp transport's batching knobs themselves, below the facade.
from repro.dsim.backend import MPBackend, MPBackendOptions  # noqa: E402  # facade-ok: transport batching knobs under measurement
from repro.dsim.net_backend import NetBackend, NetBackendOptions  # noqa: E402  # facade-ok: socket batching knobs under measurement
from repro.dsim.scheduler import EventKind, Scheduler  # noqa: E402  # facade-ok: scheduler hot path under measurement
from repro.scroll.entry import ActionKind, ScrollEntry  # noqa: E402
from repro.scroll.replayer import Replayer  # noqa: E402
from repro.scroll.scroll import Scroll  # noqa: E402
from repro.dsim.clock import VectorTimestamp  # noqa: E402  # facade-ok: synthetic recovery lines for the durable store under measurement
from repro.dsim.process import ProcessCheckpoint  # noqa: E402  # facade-ok: synthetic recovery lines for the durable store under measurement
from repro.timemachine import DurableCheckpointStore, RecoveryLine  # noqa: E402
from repro.timemachine.cow import CowPageStore  # noqa: E402

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_hotpaths.json"
)

_QUERY_KINDS = [
    ActionKind.RECEIVE,
    ActionKind.SEND,
    ActionKind.RANDOM,
    ActionKind.CLOCK_READ,
    ActionKind.TIMER,
]


def make_entries(n: int, pids: int):
    """A deterministic, realistically shaped global log of ``n`` entries."""
    entries = []
    for index in range(n):
        pid = f"p{index % pids}"
        kind = _QUERY_KINDS[index % len(_QUERY_KINDS)]
        detail = {}
        if kind in (ActionKind.RECEIVE, ActionKind.SEND):
            detail = {"message": {"msg_id": index, "src": pid, "dst": "p0", "kind": "X", "payload": index}}
        elif kind is ActionKind.RANDOM:
            detail = {"method": "random", "value": (index % 997) / 997.0}
        elif kind is ActionKind.CLOCK_READ:
            detail = {"value": index * 0.001}
        elif kind is ActionKind.TIMER:
            detail = {"name": f"t{index % 7}"}
        entries.append(ScrollEntry(pid=pid, kind=kind, time=index * 0.001, detail=detail))
    return entries


def measure_scroll(n: int = 50_000, pids: int = 50, repeats: int = 5) -> Dict[str, float]:
    """Per-pid replay-material queries: indexed Scroll vs linear scans."""
    entries = make_entries(n, pids)
    indexed = Scroll(entries)
    naive = NaiveScrollQueries(entries)
    all_pids = [f"p{i}" for i in range(pids)]

    def run_queries(log) -> int:
        for pid in all_pids:
            log.entries_for(pid)
            log.received_messages(pid)
            log.random_outcomes(pid)
            log.clock_reads(pid)
            log.timer_firings(pid)
        return 5 * len(all_pids)

    indexed_samples, naive_samples = interleaved_ns_per_op(
        lambda: run_queries(indexed), lambda: run_queries(naive), repeats
    )
    return {
        "n_entries": n,
        "indexed_ns_per_query": statistics.median(indexed_samples),
        "naive_ns_per_query": statistics.median(naive_samples),
        # ratio of minima: the uncontended costs, robust to machine load
        "speedup": min(naive_samples) / min(indexed_samples),
    }


def _fill_scheduler(scheduler, n: int, targets: int) -> None:
    """Schedule ``n`` events and cancel roughly half of them.

    Mimics the crash/rollback pattern: whole-target cancellations via
    ``cancel_for_target`` plus scattered single-event cancels.
    """
    events = []
    for index in range(n):
        target = f"t{index % targets}"
        kind = EventKind.DELIVER if index % 3 else EventKind.TIMER
        events.append(scheduler.schedule((index * 7919) % 1000 + 0.001, kind, target, payload=index))
    for target_index in range(0, targets, 2):  # "crash" every other target
        scheduler.cancel_for_target(f"t{target_index}")
    for index in range(0, n, 13):  # scattered timer cancellations
        scheduler.cancel(events[index])


def measure_scheduler(
    n: int = 50_000, targets: int = 100, repeats: int = 3, naive_sample: int = 25
) -> Dict[str, float]:
    """drain()-with-cancellations: lazy deletion vs sort-per-peek.

    The optimized scheduler drains all ``n`` events.  The seed scheduler
    sorts the whole queue on every ``peek_time``, so draining 50k events
    outright is infeasible; its per-event cost is sampled over the first
    ``naive_sample`` drain steps at full queue depth (which *understates*
    the seed's true total cost, since the queue only shrinks later).
    """

    def drain_fast() -> int:
        scheduler = Scheduler()
        _fill_scheduler(scheduler, n, targets)
        count = 0
        for _ in scheduler.drain():
            count += 1
        return count

    def drain_naive_sample() -> int:
        scheduler = NaiveScheduler()
        _fill_scheduler(scheduler, n, targets)
        count = 0
        for _ in scheduler.drain():
            count += 1
            if count >= naive_sample:
                break
        return count

    indexed_samples, naive_samples = interleaved_ns_per_op(
        drain_fast, drain_naive_sample, repeats
    )
    return {
        "n_events": n,
        "indexed_ns_per_event": statistics.median(indexed_samples),
        "naive_ns_per_event": statistics.median(naive_samples),
        "speedup": min(naive_samples) / min(indexed_samples),
    }


def measure_cow(
    keys: int = 200,
    key_bytes: int = 512,
    captures: int = 50,
    mutate_fraction: float = 0.01,
    page_size: int = 1024,
) -> Dict[str, float]:
    """Bytes SHA-1'd per capture: dirty-key tracking vs full re-hash."""
    def make_state() -> dict:
        return {f"key{i:04d}": f"v0-{i:04d}-".ljust(key_bytes, "x") for i in range(keys)}

    mutated = max(1, int(keys * mutate_fraction))

    cow = CowPageStore(page_size=page_size)
    naive = NaiveCowCapture(page_size=page_size)
    state = make_state()
    checkpoints = []
    for round_index in range(captures):
        if round_index:
            for offset in range(mutated):
                position = (round_index * 17 + offset) % keys
                state[f"key{position:04d}"] = f"v{round_index:03d}-{offset:04d}-".ljust(key_bytes, "x")
        checkpoints.append(cow.capture("p", state, float(round_index)))
        naive.capture(state)

    restore_ok = cow.restore(checkpoints[-1]) == state
    cow_per_capture = cow.hashed_bytes_total / captures
    naive_per_capture = naive.hashed_bytes_total / captures
    return {
        "captures": captures,
        "mutate_fraction": mutate_fraction,
        "cow_hashed_bytes_per_capture": cow_per_capture,
        "naive_hashed_bytes_per_capture": naive_per_capture,
        "hash_reduction": naive_per_capture / cow_per_capture,
        "cow_serialized_bytes_per_capture": cow.serialized_bytes_total / captures,
        "naive_serialized_bytes_per_capture": naive.serialized_bytes_total / captures,
        "restore_ok": restore_ok,
    }


def measure_chunked_cow(
    elements: int = 100_000,
    captures: int = 12,
    mutate_fraction: float = 0.01,
    commit_every: int = 3,
    chunk_elems: int = 8,
    page_size: int = 1024,
) -> Dict[str, float]:
    """Delta-chunked captures of one huge dict key vs whole-key re-serialization.

    The kvstore-shaped worst case the chunking exists for: a state with
    a single ``elements``-entry dict, mutated 1% per capture at
    *scattered* positions (scatter is the hard case for chunk locality —
    a contiguous mutation run would flatter the ratio).  The oracle is
    the same store with chunking disabled (``chunk_threshold=None``),
    which re-pickles and re-hashes the whole key per capture; both
    guarded ratios (``pickled_reduction``, ``hash_reduction``) are
    steady-state per-capture costs, excluding the first full capture
    that both stores pay identically.

    Every ``commit_every``-th capture also flushes a synthetic
    single-process recovery line to a durable blob store in a scratch
    directory; ``dedup_ratio`` (logical manifest bytes over unique bytes
    on disk) is the content-addressing payoff across committed lines,
    and ``resume_ok`` gates that the state read back from disk is
    exactly the state at the last commit, insertion order included.
    """
    import shutil
    import tempfile

    def scattered_positions(round_index: int, count: int) -> list:
        # deterministic pseudo-scatter (no RNG): Knuth-style multiplicative
        # stride so mutations land all over the key space every round
        return [
            (round_index * 2654435761 + offset * 97003) % elements
            for offset in range(count)
        ]

    state = {
        "table": {f"k{i:06d}": f"v000-{i:06d}" for i in range(elements)},
        "epoch": 0,
    }
    chunked = CowPageStore(
        page_size=page_size, chunk_threshold=256, chunk_elems=chunk_elems
    )
    whole = CowPageStore(page_size=page_size, chunk_threshold=None)
    mutated = max(1, int(elements * mutate_fraction))
    store_dir = tempfile.mkdtemp(prefix="bench-blobstore-")
    committed_snapshot = None
    try:
        durable = DurableCheckpointStore(
            store_dir, run_id="bench", chunk_threshold=256, chunk_elems=chunk_elems
        )
        chunked_first = whole_first = (0, 0)
        for round_index in range(captures):
            if round_index:
                state["epoch"] = round_index
                for position in scattered_positions(round_index, mutated):
                    state["table"][f"k{position:06d}"] = f"v{round_index:03d}-{position:06d}"
            chunked.capture("p", state, float(round_index))
            whole.capture("p", state, float(round_index))
            if round_index == 0:
                chunked_first = (chunked.serialized_bytes_total, chunked.hashed_bytes_total)
                whole_first = (whole.serialized_bytes_total, whole.hashed_bytes_total)
            if round_index and round_index % commit_every == 0:
                checkpoint = ProcessCheckpoint(
                    pid="p",
                    sequence=round_index,
                    time=float(round_index),
                    state=state,
                    vt=VectorTimestamp.from_mapping({"p": round_index}),
                    lamport=round_index,
                    rng_draws=0,
                    sent_count=0,
                    received_count=0,
                )
                durable.flush_line(
                    RecoveryLine(
                        checkpoints={"p": checkpoint},
                        rolled_back_steps={},
                        iterations=1,
                        domino_effect=False,
                        label=f"bench-{round_index}",
                    )
                )
                committed_snapshot = {"table": dict(state["table"]), "epoch": state["epoch"]}

        steady = captures - 1
        chunked_pickled = (chunked.serialized_bytes_total - chunked_first[0]) / steady
        chunked_hashed = (chunked.hashed_bytes_total - chunked_first[1]) / steady
        whole_pickled = (whole.serialized_bytes_total - whole_first[0]) / steady
        whole_hashed = (whole.hashed_bytes_total - whole_first[1]) / steady

        restored_chunked = chunked.restore(chunked.latest("p"))
        restored_whole = whole.restore(whole.latest("p"))
        restore_ok = (
            restored_chunked == state
            and restored_whole == state
            and list(restored_chunked["table"]) == list(state["table"])
        )
        _, resumed = DurableCheckpointStore.restore_line(store_dir, "bench")
        resumed_state = resumed["p"].state
        resume_ok = (
            resumed_state == committed_snapshot
            and list(resumed_state["table"]) == list(committed_snapshot["table"])
        )
        stats = durable.stats()
        return {
            "elements": elements,
            "captures": captures,
            "mutate_fraction": mutate_fraction,
            "chunked_pickled_bytes_per_capture": chunked_pickled,
            "whole_pickled_bytes_per_capture": whole_pickled,
            "pickled_reduction": whole_pickled / chunked_pickled,
            "chunked_hashed_bytes_per_capture": chunked_hashed,
            "whole_hashed_bytes_per_capture": whole_hashed,
            "hash_reduction": whole_hashed / chunked_hashed,
            "lines_committed": stats["lines_committed"],
            "chunks_written": stats["chunks_written"],
            "chunks_deduped": stats["chunks_deduped"],
            "chunks_reused": stats["chunks_reused"],
            "logical_bytes": stats["logical_bytes"],
            "bytes_on_disk": stats["bytes_on_disk"],
            "dedup_ratio": stats["logical_bytes"] / max(1, stats["bytes_on_disk"]),
            "restore_ok": restore_ok,
            "resume_ok": resume_ok,
        }
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)


def measure_durable_flush(
    elements: int = 60_000,
    commits: int = 10,
    mutate_fraction: float = 0.01,
    chunk_elems: int = 8,
    page_size: int = 1024,
) -> Dict[str, float]:
    """Commit-path cost of durable flushes: cached chunk sources vs
    re-chunking, and pipelined vs sync commit stall.

    The zero-re-pickle claim: a commit whose checkpoints were captured
    by the chunked COW store should flush from the capture-time pickled
    chunks (``CowPageStore.chunk_sources``), so the commit path pickles
    nothing and hashes only the chunks that actually changed since the
    last commit — on a ~1% scattered mutation profile, a small fraction
    of the state.  The oracle is the same store flushed with
    ``chunk_sources=None``, which re-pickles and re-hashes every chunk
    of every key per commit.  ``commit_bytes_reduction`` is the
    steady-state ratio of those per-commit costs (first commit excluded:
    both variants pay the full initial line identically).

    The pipelining claim: with ``flush_mode="pipelined"`` the hot path
    only snapshots and enqueues — blob IO and fsyncs run on the
    background writer — so the wall time a commit spends inside
    ``flush_line`` (``*_stall_s_per_commit``) must drop strictly below
    the sync mode's.  ``restore_ok``/``resume_ok`` are hard gates: the
    COW store must restore the live state exactly, and each durable
    store (after the pipeline barrier) must resume to exactly the last
    committed snapshot, insertion order included.
    """
    import shutil
    import tempfile
    import time as wall_clock

    mutated = max(1, int(elements * mutate_fraction))

    def scattered_positions(round_index: int, count: int) -> list:
        return [
            (round_index * 2654435761 + offset * 97003) % elements
            for offset in range(count)
        ]

    def run(mode: str, use_cache: bool) -> Dict[str, float]:
        state = {
            "table": {f"k{i:06d}": f"v000-{i:06d}" for i in range(elements)},
            "epoch": 0,
        }
        cow = CowPageStore(
            page_size=page_size, chunk_threshold=256, chunk_elems=chunk_elems
        )
        root = tempfile.mkdtemp(prefix=f"bench-durable-{mode}-")
        durable = None
        try:
            durable = DurableCheckpointStore(
                root,
                run_id="bench",
                chunk_threshold=256,
                chunk_elems=chunk_elems,
                flush_mode=mode,
            )
            stall_s = 0.0
            first_bytes = 0
            committed = None
            for round_index in range(commits):
                if round_index:
                    state["epoch"] = round_index
                    for position in scattered_positions(round_index, mutated):
                        state["table"][f"k{position:06d}"] = (
                            f"v{round_index:03d}-{position:06d}"
                        )
                cow.capture("p", state, float(round_index), sequence=round_index)
                sources = (
                    {"p": cow.chunk_sources("p", round_index)} if use_cache else None
                )
                line = RecoveryLine(
                    checkpoints={
                        "p": ProcessCheckpoint(
                            pid="p",
                            sequence=round_index,
                            time=float(round_index),
                            state=state,
                            vt=VectorTimestamp.from_mapping({"p": round_index}),
                            lamport=round_index,
                            rng_draws=0,
                            sent_count=0,
                            received_count=0,
                        )
                    },
                    rolled_back_steps={},
                    iterations=1,
                    domino_effect=False,
                    label=f"bench-{round_index}",
                )
                began = wall_clock.perf_counter()
                durable.flush_line(line, chunk_sources=sources)
                if round_index:
                    stall_s += wall_clock.perf_counter() - began
                else:
                    # both variants pay the full first line identically;
                    # steady-state metrics exclude it (stats() drains, so
                    # the pipelined queue is empty entering steady state)
                    stats = durable.stats()
                    first_bytes = (
                        stats["commit_pickled_bytes"] + stats["commit_hashed_bytes"]
                    )
                committed = {"table": dict(state["table"]), "epoch": state["epoch"]}
            stats = durable.stats()  # pipeline barrier: every flush landed
            restore_ok = cow.restore(cow.latest("p")) == state
            _, resumed = DurableCheckpointStore.restore_line(root, "bench")
            resumed_state = resumed["p"].state
            resume_ok = (
                resumed_state == committed
                and list(resumed_state["table"]) == list(committed["table"])
            )
            steady = max(1, commits - 1)
            return {
                "commit_bytes": (
                    stats["commit_pickled_bytes"]
                    + stats["commit_hashed_bytes"]
                    - first_bytes
                )
                / steady,
                "stall_s_per_commit": stall_s / steady,
                "chunks_cached": stats["chunks_cached"],
                "restore_ok": restore_ok,
                "resume_ok": resume_ok,
            }
        finally:
            if durable is not None:
                durable.close()
            shutil.rmtree(root, ignore_errors=True)

    cached = run("sync", True)
    rechunk = run("sync", False)
    pipelined = run("pipelined", True)
    return {
        "elements": elements,
        "commits": commits,
        "mutate_fraction": mutate_fraction,
        "cached_commit_bytes_per_commit": cached["commit_bytes"],
        "rechunk_commit_bytes_per_commit": rechunk["commit_bytes"],
        "commit_bytes_reduction": rechunk["commit_bytes"]
        / max(1.0, cached["commit_bytes"]),
        "chunks_cached": cached["chunks_cached"],
        "sync_stall_s_per_commit": cached["stall_s_per_commit"],
        "pipelined_stall_s_per_commit": pipelined["stall_s_per_commit"],
        "stall_ratio": pipelined["stall_s_per_commit"]
        / max(cached["stall_s_per_commit"], 1e-12),
        "restore_ok": cached["restore_ok"]
        and rechunk["restore_ok"]
        and pipelined["restore_ok"],
        "resume_ok": cached["resume_ok"]
        and rechunk["resume_ok"]
        and pipelined["resume_ok"],
    }


# ----------------------------------------------------------------------
# tiered Scroll: replay from a spilled log vs from memory
# ----------------------------------------------------------------------
class _ReplaySink(Process):
    """Minimal replayable consumer: counts and checksums delivered messages."""

    def on_start(self):
        self.state["received"] = 0
        self.state["checksum"] = 0

    @handler("X")
    def on_x(self, msg):
        self.state["received"] += 1
        self.state["checksum"] = (self.state["checksum"] * 31 + (msg.payload or 0)) % 1_000_003


def make_replay_entries(n: int, pids: int):
    """A deterministic all-RECEIVE log that replays cleanly through _ReplaySink."""
    entries = []
    for index in range(n):
        pid = f"p{index % pids}"
        message = {
            "msg_id": index + 1,
            "src": f"p{(index + 1) % pids}",
            "dst": pid,
            "kind": "X",
            "payload": index % 9973,
        }
        entries.append(
            ScrollEntry(
                pid=pid, kind=ActionKind.RECEIVE, time=index * 0.001, detail={"message": message}
            )
        )
    return entries


def measure_scroll_spill(
    n: int = 100_000, pids: int = 20, hot_fraction: float = 0.10, repeats: int = 3
) -> Dict[str, float]:
    """Whole-system replay driven from a spilled Scroll vs an in-memory one.

    This is the workload tiered storage exists for: the log has
    outgrown memory (only ``hot_fraction`` of it stays hot), and the
    replay driver pulls every process's history back through the
    segment index.  Reported gates: ``replay_slowdown`` (spilled replay
    wall-time over in-memory replay wall-time; acceptance ceiling 2x)
    and ``memory_reduction`` (resident entry-storage bytes, in-memory
    over tiered; acceptance floor 5x at a 10% hot window).
    """
    entries = make_replay_entries(n, pids)
    hot_window = max(1, int(n * hot_fraction))
    memory = Scroll(entries)
    tiered = Scroll(entries, hot_window=hot_window)
    factories = {f"p{i}": _ReplaySink for i in range(pids)}

    def replay(log) -> int:
        report = Replayer(log, factories).replay_all()
        return report.total_events()

    # correctness first: both logs must replay to identical states
    from_memory = Replayer(memory, factories).replay_all()
    from_tiered = Replayer(tiered, factories).replay_all()
    replay_equivalent = from_memory.ok == from_tiered.ok and all(
        from_memory.processes[pid].final_state == from_tiered.processes[pid].final_state
        for pid in from_memory.processes
    )

    memory_samples, tiered_samples = interleaved_ns_per_op(
        lambda: replay(memory), lambda: replay(tiered), repeats
    )
    resident_memory = memory.resident_bytes()
    resident_tiered = tiered.resident_bytes()  # steady state: cache warm after replays
    metrics = {
        "n_entries": n,
        "hot_window": hot_window,
        "spilled_entries": tiered.spill_watermark,
        "segments": tiered.storage_stats()["store"]["segments"],
        "replay_equivalent": replay_equivalent,
        "memory_replay_ns_per_event": statistics.median(memory_samples),
        "tiered_replay_ns_per_event": statistics.median(tiered_samples),
        "replay_slowdown": min(tiered_samples) / min(memory_samples),
        "resident_bytes_memory": resident_memory,
        "resident_bytes_tiered": resident_tiered,
        "memory_reduction": resident_memory / resident_tiered,
    }
    tiered.close()
    return metrics


# ----------------------------------------------------------------------
# multiprocessing transport: batched vs per-message pipe writes
# ----------------------------------------------------------------------
def measure_mp_batching(
    workers: int = 4, chunks: int = 360, words_per_chunk: int = 12, seed: int = 3
) -> Dict[str, float]:
    """Pipe writes and wall time for a heavy-traffic wordcount on real processes.

    Runs the burst-dispatching wordcount twice on the ``mp`` backend:
    once with the batched transport (workers flush at the watermark, the
    router writes one batch per destination per tick) and once degraded
    to one pickled pipe write per message — the pre-batching behaviour.
    Both runs must aggregate the full corpus to the exact expected
    counts; the guarded metric is ``pipe_write_reduction`` (acceptance
    floor 2x), with wall-clock reported alongside.
    """
    import time as wall_clock

    def run(batched: bool):
        options = MPBackendOptions(
            time_scale=0.01,
            flush_watermark=64 if batched else 1,
            batch_deliveries=batched,
        )
        backend = MPBackend(options)
        cluster = Cluster(ClusterConfig(seed=seed), backend=backend)
        apps.build(
            cluster,
            "wordcount_burst",
            workers=workers,
            chunks=chunks,
            words_per_chunk=words_per_chunk,
        )
        began = wall_clock.perf_counter()
        result = cluster.run(until=1000.0)
        wall = wall_clock.perf_counter() - began
        master = result.process_states.get("master", {})
        expected_counts = apps.app("wordcount_burst").exports["expected_counts"]
        complete = (
            master.get("aggregated") == chunks
            and master.get("counts") == expected_counts(chunks, words_per_chunk)
        )
        return wall, backend.transport_stats, complete

    batched_wall, batched_stats, batched_ok = run(True)
    unbatched_wall, unbatched_stats, unbatched_ok = run(False)
    return {
        "workers": workers,
        "chunks": chunks,
        "messages": batched_stats["messages_routed"],
        "pipe_writes_batched": batched_stats["pipe_writes"],
        "pipe_writes_unbatched": unbatched_stats["pipe_writes"],
        "pipe_write_reduction": unbatched_stats["pipe_writes"] / batched_stats["pipe_writes"],
        "max_batch": batched_stats["max_batch"],
        "wall_batched_s": batched_wall,
        "wall_unbatched_s": unbatched_wall,
        "wall_speedup": unbatched_wall / batched_wall,
        "results_complete": batched_ok and unbatched_ok,
    }


# ----------------------------------------------------------------------
# socket transport: batched frames vs per-message socket writes
# ----------------------------------------------------------------------
def measure_net_transport(
    workers: int = 4,
    chunks: int = 360,
    words_per_chunk: int = 12,
    shards: int = 2,
    seed: int = 3,
) -> Dict[str, float]:
    """Socket writes and pickle bytes for a heavy-traffic wordcount on ``net``.

    Runs the burst-dispatching wordcount twice on the socket backend:
    once with the batched transport (workers flush at the watermark, the
    shard routers coalesce per-destination writes) and once degraded to
    one framed socket write per message — the naive wire behaviour.
    Both runs must aggregate the full corpus to the exact expected
    counts.  The guarded headline is ``socket_write_reduction``
    (acceptance floor 5x); ``messages_pickled_batched`` must be zero —
    the delivery hot path rides the marshal fast frames, pickle only
    survives on control frames (probes/results/hello).
    """
    import time as wall_clock

    def run(batched: bool):
        options = NetBackendOptions(
            time_scale=0.01,
            flush_watermark=64 if batched else 1,
            batch_deliveries=batched,
            shards=shards,
        )
        backend = NetBackend(options)
        cluster = Cluster(ClusterConfig(seed=seed), backend=backend)
        apps.build(
            cluster,
            "wordcount_burst",
            workers=workers,
            chunks=chunks,
            words_per_chunk=words_per_chunk,
        )
        began = wall_clock.perf_counter()
        result = cluster.run(until=1000.0)
        wall = wall_clock.perf_counter() - began
        master = result.process_states.get("master", {})
        expected_counts = apps.app("wordcount_burst").exports["expected_counts"]
        complete = (
            master.get("aggregated") == chunks
            and master.get("counts") == expected_counts(chunks, words_per_chunk)
        )
        return wall, backend.transport_stats, complete

    batched_wall, batched_stats, batched_ok = run(True)
    unbatched_wall, unbatched_stats, unbatched_ok = run(False)
    return {
        "workers": workers,
        "chunks": chunks,
        "shards": shards,
        "messages": batched_stats["messages_routed"],
        "socket_writes_batched": batched_stats["socket_writes"],
        "socket_writes_unbatched": unbatched_stats["socket_writes"],
        "socket_write_reduction": unbatched_stats["socket_writes"]
        / max(1, batched_stats["socket_writes"]),
        "socket_bytes_batched": batched_stats["socket_bytes"],
        "messages_fast": batched_stats["messages_fast"],
        "messages_pickled_batched": batched_stats["messages_pickled"],
        "max_batch": batched_stats["max_batch"],
        "wall_batched_s": batched_wall,
        "wall_unbatched_s": unbatched_wall,
        "wall_speedup": unbatched_wall / batched_wall,
        "results_complete": batched_ok and unbatched_ok,
    }


# ----------------------------------------------------------------------
# shared-memory ring transport: zero-pickle frames vs the batched pipe
# ----------------------------------------------------------------------
def measure_shm_ring(
    workers: int = 4,
    chunks: int = 1200,
    words_per_chunk: int = 24,
    repeats: int = 3,
    seed: int = 3,
) -> Dict[str, float]:
    """Serialization bytes and wall time: shm rings vs the batched pipe.

    Runs the burst-dispatching wordcount fan-in on the ``mp`` backend
    with both transports.  The shm transport moves every data frame
    through per-worker shared-memory rings with a marshal fast path, so
    the hot path never touches ``pickle`` — the guarded headline is
    ``pickled_reduction`` (pickled bytes *per routed message*, pipe over
    shm; acceptance floor 2x, measured orders of magnitude above it).

    ``wall_speedup`` is the ratio of minima over ``repeats`` paired runs
    (minima: uncontended cost, robust to machine load).  On a
    single-core container wall tracks *total CPU across all processes*,
    and the transport's share of a faithful workload bounds the
    reachable ratio (~1.1x here; multi-core hosts, where the rings'
    zero-copy path overlaps with application work, see more).  It is
    therefore guarded as a no-regression backstop (green zone 0.85 =
    "never materially slower than the pipe") rather than as the
    headline.  Both runs must aggregate the full corpus exactly
    (``results_complete``), which is a hard gate.
    """
    import time as wall_clock

    def run(transport: str):
        options = MPBackendOptions(time_scale=0.01, transport=transport)
        backend = MPBackend(options)
        cluster = Cluster(ClusterConfig(seed=seed), backend=backend)
        apps.build(
            cluster,
            "wordcount_burst",
            workers=workers,
            chunks=chunks,
            words_per_chunk=words_per_chunk,
        )
        began = wall_clock.perf_counter()
        result = cluster.run(until=4000.0)
        wall = wall_clock.perf_counter() - began
        master = result.process_states.get("master", {})
        expected = apps.app("wordcount_burst").exports["expected_counts"]
        complete = (
            result.stopped_reason == "quiescent"
            and master.get("aggregated") == chunks
            and master.get("counts") == expected(chunks, words_per_chunk)
        )
        return wall, backend.transport_stats, complete

    pipe_walls, shm_walls = [], []
    complete = True
    pipe_stats = shm_stats = None
    for _ in range(repeats):
        wall, pipe_stats, ok = run("pipe")
        pipe_walls.append(wall)
        complete = complete and ok
        wall, shm_stats, ok = run("shm")
        shm_walls.append(wall)
        complete = complete and ok

    messages = max(1, pipe_stats["messages_routed"])
    pipe_bytes_per_message = pipe_stats["pickled_bytes"] / messages
    shm_bytes_per_message = shm_stats["pickled_bytes"] / max(1, shm_stats["messages_routed"])
    return {
        "workers": workers,
        "chunks": chunks,
        "messages": messages,
        "pickled_bytes_per_message_pipe": pipe_bytes_per_message,
        "pickled_bytes_per_message_shm": shm_bytes_per_message,
        # pickle only survives on the shm control plane (probes/results)
        "pickled_reduction": pipe_bytes_per_message / max(shm_bytes_per_message, 1e-9),
        "messages_fast": shm_stats["messages_fast"],
        "messages_pickled_shm": shm_stats["messages_pickled"],
        "ring_bytes": shm_stats["ring_bytes"],
        "nudges": shm_stats["nudges"],
        "wall_pipe_s": min(pipe_walls),
        "wall_shm_s": min(shm_walls),
        "wall_speedup": min(pipe_walls) / min(shm_walls),
        "results_complete": complete,
    }


# ----------------------------------------------------------------------
# profiles and the regression guard
# ----------------------------------------------------------------------
def run_profile(profile: str) -> Dict[str, Dict[str, float]]:
    """Measure every section at the sizes of ``profile`` ("full"|"quick")."""
    if profile == "quick":
        return {
            "scroll_per_pid_queries": measure_scroll(n=10_000, pids=20, repeats=3),
            "scheduler_drain_cancellations": measure_scheduler(
                n=10_000, targets=50, repeats=2, naive_sample=15
            ),
            "cow_capture_dirty_pages": measure_cow(keys=100, captures=20),
            "chunked_cow": measure_chunked_cow(elements=20_000, captures=6, commit_every=1),
            "durable_flush": measure_durable_flush(elements=10_000, commits=5),
            "scroll_spill_replay": measure_scroll_spill(n=20_000, pids=10, repeats=2),
            "mp_batching": measure_mp_batching(workers=2, chunks=120),
            "net_transport": measure_net_transport(workers=2, chunks=120),
            # repeats=4: the sub-second quick samples need min-of-4 pairs
            # for a stable wall ratio (min-of-2 flaps under machine load)
            "shm_ring": measure_shm_ring(workers=2, chunks=240, words_per_chunk=12, repeats=4),
        }
    return {
        "scroll_per_pid_queries": measure_scroll(),
        "scheduler_drain_cancellations": measure_scheduler(),
        "cow_capture_dirty_pages": measure_cow(),
        "chunked_cow": measure_chunked_cow(),
        "durable_flush": measure_durable_flush(),
        "scroll_spill_replay": measure_scroll_spill(),
        "mp_batching": measure_mp_batching(),
        "net_transport": measure_net_transport(),
        "shm_ring": measure_shm_ring(),
    }


#: (section, metric, direction, green_zone) — the regression guard.
#:
#: direction "higher": regression when current < baseline * 0.8;
#: direction "lower":  regression when current > baseline * 1.2.
#: The green zone (derived from each metric's acceptance criterion with
#: margin) overrides the relative check: values on its safe side never
#: fail, so enormous noisy ratios can't flap the guard.
GUARDED_METRICS: List[Tuple[str, str, str, float]] = [
    ("scroll_per_pid_queries", "speedup", "higher", 10.0),
    ("scheduler_drain_cancellations", "speedup", "higher", 100.0),
    ("cow_capture_dirty_pages", "hash_reduction", "higher", 10.0),
    # delta-chunked container captures: acceptance floor 10x on the full
    # profile; green zones at half so the small quick profile (fewer
    # elements -> coarser scatter math) can't flap CI
    ("chunked_cow", "pickled_reduction", "higher", 5.0),
    ("chunked_cow", "hash_reduction", "higher", 5.0),
    # content-addressed dedup across committed lines (acceptance floor 2x)
    ("chunked_cow", "dedup_ratio", "higher", 2.0),
    # zero-re-pickle commits: flushing from the COW chunk cache must cut
    # commit-path pickled+hashed bytes >=5x on ~1% inter-commit mutations
    ("durable_flush", "commit_bytes_reduction", "higher", 5.0),
    # the pipelined writer must keep commit stall strictly below sync;
    # green zone 0.95 leaves headroom for timing noise on loaded boxes
    ("durable_flush", "stall_ratio", "lower", 0.95),
    ("scroll_spill_replay", "memory_reduction", "higher", 5.0),
    ("scroll_spill_replay", "replay_slowdown", "lower", 1.6),
    ("mp_batching", "pipe_write_reduction", "higher", 2.0),
    # conservative wall floor: 2x measured on this box, green zone well
    # below it so scheduler noise can't flap CI
    ("mp_batching", "wall_speedup", "higher", 1.2),
    # socket batching: one framed sendall per destination batch must cut
    # socket writes >=5x vs per-message frames (the net acceptance floor)
    ("net_transport", "socket_write_reduction", "higher", 5.0),
    # zero pickle on the net delivery hot path — every batch/flush item
    # rides the marshal fast frames; direction "lower" with green zone 0
    # makes any nonzero count an immediate failure
    ("net_transport", "messages_pickled_batched", "lower", 0.0),
    # the shm acceptance floor (2x); measured ~2 orders of magnitude above
    ("shm_ring", "pickled_reduction", "higher", 2.0),
    # shm must never be materially slower than the pipe.  The perf claim
    # lives in pickled_reduction; wall_speedup is a no-regression
    # backstop because on single-core hosts its honest value sits near
    # 1.1 (see measure_shm_ring) over sub-second samples — a tight
    # near-1.0 wall guard would flap CI on scheduler noise alone.
    ("shm_ring", "wall_speedup", "higher", 0.85),
]


def check_against(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
    tolerance: float = 0.20,
) -> List[str]:
    """Compare guarded metrics; returns human-readable failure strings."""
    failures: List[str] = []
    for section, metric, direction, green_zone in GUARDED_METRICS:
        if section not in baseline or section not in current:
            failures.append(f"{section}: missing from {'baseline' if section not in baseline else 'current run'}")
            continue
        base = baseline[section].get(metric)
        now = current[section].get(metric)
        if base is None or now is None:
            failures.append(f"{section}.{metric}: missing value (baseline={base}, current={now})")
            continue
        if direction == "higher":
            if now >= green_zone:
                continue
            if now < base * (1.0 - tolerance):
                failures.append(
                    f"{section}.{metric}: {now:.2f} regressed >{tolerance:.0%} vs baseline {base:.2f}"
                )
        else:
            if now <= green_zone:
                continue
            if now > base * (1.0 + tolerance):
                failures.append(
                    f"{section}.{metric}: {now:.2f} regressed >{tolerance:.0%} vs baseline {base:.2f}"
                )
    # hard correctness gates ride along with the guard
    spill = current.get("scroll_spill_replay", {})
    if spill and not spill.get("replay_equivalent", True):
        failures.append("scroll_spill_replay: spilled replay is NOT equivalent to in-memory replay")
    cow = current.get("cow_capture_dirty_pages", {})
    if cow and not cow.get("restore_ok", True):
        failures.append("cow_capture_dirty_pages: restore mismatch")
    chunked = current.get("chunked_cow", {})
    if chunked and not chunked.get("restore_ok", True):
        failures.append("chunked_cow: chunked restore does not match the live state")
    if chunked and not chunked.get("resume_ok", True):
        failures.append("chunked_cow: durable resume does not match the last committed state")
    flush = current.get("durable_flush", {})
    if flush and not flush.get("restore_ok", True):
        failures.append("durable_flush: COW restore does not match the live state")
    if flush and not flush.get("resume_ok", True):
        failures.append("durable_flush: a durable store did not resume to the last committed snapshot")
    batching = current.get("mp_batching", {})
    if batching and not batching.get("results_complete", True):
        failures.append("mp_batching: a run failed to aggregate the full corpus")
    net = current.get("net_transport", {})
    if net and not net.get("results_complete", True):
        failures.append("net_transport: a run failed to aggregate the full corpus")
    if net and net.get("messages_pickled_batched", 0) != 0:
        failures.append("net_transport: pickle leaked onto the delivery hot path")
    ring = current.get("shm_ring", {})
    if ring and not ring.get("results_complete", True):
        failures.append("shm_ring: a run failed to aggregate the full corpus")
    return failures


def load_baseline(path: str) -> Dict[str, Dict]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _print_profile(profile: str, results: Dict[str, Dict[str, float]]) -> None:
    for name, metrics in results.items():
        line = ", ".join(
            f"{key}={value:.1f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in metrics.items()
        )
        print(f"[{profile}] {name}: {line}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="measure only the quick (CI smoke) profile")
    parser.add_argument("--out", default=DEFAULT_BASELINE, help="output path for profile JSON")
    parser.add_argument(
        "--check",
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="BASELINE",
        help="do not write results; fail if a guarded metric regresses >20%% "
        "vs BASELINE (default: the committed BENCH_hotpaths.json)",
    )
    args = parser.parse_args(argv)

    profiles = ["quick"] if args.quick else ["full", "quick"]
    results = {profile: run_profile(profile) for profile in profiles}
    for profile in profiles:
        _print_profile(profile, results[profile])

    if args.check is not None:
        baseline = load_baseline(args.check)
        failed = False
        for profile in profiles:
            if profile not in baseline:
                print(f"check[{profile}]: no such profile in {args.check}")
                failed = True
                continue
            failures = check_against(baseline[profile], results[profile])
            if failures:
                failed = True
                for failure in failures:
                    print(f"check[{profile}] FAIL: {failure}")
            else:
                print(f"check[{profile}]: all guarded metrics within 20% of baseline")
        return 1 if failed else 0

    # Merge into an existing baseline rather than overwrite it: a
    # `--quick` run must not silently drop the committed full profile.
    merged = {}
    if os.path.exists(args.out):
        try:
            merged = load_baseline(args.out)
        except (OSError, ValueError):
            merged = {}
    merged.update(results)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out} (profiles: {', '.join(sorted(merged))})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
