"""Experiment claim-2.1-blowup: state-space explosion with process count (Section 2.1).

The paper's motivation for a hybrid approach is that exhaustive model
checking of a distributed system "is often prohibitively expensive,
memory-wise, [for] a moderately complex system of more than 5-10
processes".  This benchmark sweeps the number of processes in a simple
broadcast protocol and records how many states BFS must visit: the growth
must be super-linear, and a fixed state budget must get exhausted
(truncated exploration) once the system is large enough.
"""

from __future__ import annotations

from repro.api import Process, handler
from repro.investigator.explorer import Explorer, SearchOrder
from repro.investigator.models import DistributedSystemModel


class Broadcaster(Process):
    """Every process broadcasts one HELLO and counts the greetings it receives."""

    def on_start(self):
        self.state["greetings"] = 0
        for peer in self.peers:
            self.send(peer, "HELLO", None)

    @handler("HELLO")
    def on_hello(self, msg):
        self.state["greetings"] += 1


def explore(process_count: int, max_states: int = 20_000):
    factories = {f"p{i}": Broadcaster for i in range(process_count)}
    adapter = DistributedSystemModel(factories)
    model = adapter.build_model()
    explorer = Explorer(
        model,
        SearchOrder.BFS,
        max_states=max_states,
        check_deadlocks=False,
        terminal_predicate=DistributedSystemModel.terminal_predicate,
    )
    return explorer.explore()


def test_blowup_three_processes(benchmark, report_rows):
    result = benchmark(explore, 3)
    report_rows.append(f"3 processes: {result.states_explored} states, truncated={result.truncated}")
    assert not result.truncated


def test_blowup_four_processes(benchmark, report_rows):
    result = benchmark(explore, 4)
    report_rows.append(f"4 processes: {result.states_explored} states, truncated={result.truncated}")


def test_blowup_growth_is_superlinear(report_rows):
    states = {}
    for count in (2, 3, 4):
        states[count] = explore(count).states_explored
    report_rows.append(f"states explored by process count: {states}")
    growth_23 = states[3] / max(states[2], 1)
    growth_34 = states[4] / max(states[3], 1)
    report_rows.append(f"growth 2->3: {growth_23:.1f}x, 3->4: {growth_34:.1f}x")
    assert states[2] < states[3] < states[4]
    assert growth_34 > 2.0, "adding a process should multiply the state space"


def test_blowup_budget_exhaustion_beyond_a_handful_of_processes(report_rows):
    """With a fixed budget, exploration is already truncated at 5 processes."""
    result = explore(5, max_states=20_000)
    report_rows.append(
        f"5 processes with a 20k-state budget: {result.states_explored} states, truncated={result.truncated}"
    )
    assert result.truncated
