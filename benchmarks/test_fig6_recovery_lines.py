"""Experiment fig6-recovery-line: safe recovery lines from communication-induced
checkpointing (Figure 6).

Reproduces the figure's three-process message exchange and then random
message graphs, checking the defining property: the computed recovery
line is always consistent, whereas the naive "latest checkpoint of every
process" cut need not be under uncoordinated checkpointing.
"""

from __future__ import annotations

from repro.dsim.clock import VectorClock  # facade-ok: recovery-line mechanics measured on synthetic checkpoints
from repro.dsim.process import ProcessCheckpoint  # facade-ok: recovery-line mechanics measured on synthetic checkpoints
from repro.dsim.rng import DeterministicRNG  # facade-ok: recovery-line mechanics measured on synthetic checkpoints
from repro.timemachine.checkpoint import CheckpointStore
from repro.timemachine.comm_induced import CommunicationInducedCheckpointing
from repro.timemachine.recovery_line import compute_recovery_line, is_consistent, unsafe_line
from repro.timemachine.time_machine import TimeMachine
from bench_workloads import build_ring_cluster


def _checkpoint(pid, sequence, time, vt):
    return ProcessCheckpoint(
        pid=pid, sequence=sequence, time=time, state={"seq": sequence},
        vt=vt, lamport=0, rng_draws=0, sent_count=0, received_count=0,
    )


def figure6_exchange():
    """The paper's drawing: A, B, C exchange messages; B fails after the last receive."""
    clocks = {pid: VectorClock(pid) for pid in ("A", "B", "C")}
    store = CheckpointStore()
    sequence = {pid: 0 for pid in clocks}

    def take(pid):
        sequence[pid] += 1
        store.add(_checkpoint(pid, sequence[pid], float(sum(sequence.values())), clocks[pid].snapshot()))

    def send(src, dst):
        ts = clocks[src].tick()
        take(dst)                    # checkpoint before receive (comm-induced)
        clocks[dst].merge(ts)

    for pid in clocks:
        take(pid)
    send("A", "B")
    send("B", "C")
    send("C", "B")
    send("A", "B")
    return store


def test_fig6_paper_exchange_has_safe_line(benchmark, report_rows):
    store = figure6_exchange()
    line = benchmark(compute_recovery_line, store)
    report_rows.append(
        "safe line: " + ", ".join(f"{pid}#{c.sequence}" for pid, c in sorted(line.checkpoints.items()))
    )
    report_rows.append(f"rollback steps: {line.rolled_back_steps}, domino: {line.domino_effect}")
    assert is_consistent(line.checkpoints)


def test_fig6_comm_induced_line_near_failure_point(report_rows):
    """With comm-induced checkpoints the safe line is at most one receive behind."""
    cluster = build_ring_cluster(nodes=3, rounds=6)
    time_machine = TimeMachine()
    time_machine.attach(cluster)
    cluster.run(max_events=500)
    line = compute_recovery_line(time_machine.store)
    naive = unsafe_line(time_machine.store)
    lag = {pid: naive[pid].sequence - line.checkpoints[pid].sequence for pid in line.checkpoints}
    report_rows.append(f"checkpoints behind the naive line per process: {lag}")
    assert is_consistent(line.checkpoints)
    assert all(delta <= 1 for delta in lag.values())


def test_fig6_random_graphs_always_yield_consistent_lines(benchmark, report_rows):
    """Random communication graphs with comm-induced checkpointing: line is always safe."""
    rng = DeterministicRNG(99)

    def random_history():
        pids = ["p0", "p1", "p2", "p3"]
        clocks = {pid: VectorClock(pid) for pid in pids}
        store = CheckpointStore()
        sequence = {pid: 0 for pid in pids}
        for pid in pids:
            sequence[pid] += 1
            store.add(_checkpoint(pid, sequence[pid], 0.0, clocks[pid].snapshot()))
        for step in range(40):
            src = rng.choice(pids)
            dst = rng.choice([pid for pid in pids if pid != src])
            ts = clocks[src].tick()
            sequence[dst] += 1
            store.add(_checkpoint(dst, sequence[dst], float(step + 1), clocks[dst].snapshot()))
            clocks[dst].merge(ts)
        return compute_recovery_line(store)

    line = benchmark(random_history)
    report_rows.append(f"random graph line iterations: {line.iterations}")
    assert is_consistent(line.checkpoints)
