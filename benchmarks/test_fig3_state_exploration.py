"""Experiment fig3-investigator: exhaustively finding violating execution paths (Figure 3).

Benchmarks the Investigator exploring the buggy bounded-counter system and
checks the qualitative shape: exhaustive search finds the violation and
returns a shortest trail, while a single conventional path may need the
exact interleaving.
"""

from __future__ import annotations

from repro.api import Process, handler, invariant
from repro.investigator.explorer import SearchOrder
from repro.investigator.investigator import Investigator, InvestigatorConfig


class BoundedCounter(Process):
    bound = 3

    def on_start(self):
        self.state["count"] = 0
        if self.pid.endswith("0"):
            self.send(self.peers[0], "TICK", None)

    @handler("TICK")
    def on_tick(self, msg):
        self.state["count"] += 1
        self.send(msg.src, "TICK", None)

    @invariant("count-within-bound")
    def count_within_bound(self):
        return self.state["count"] <= self.bound


FACTORIES = {"c0": BoundedCounter, "c1": BoundedCounter}


def test_fig3_exhaustive_exploration_finds_trails(benchmark, report_rows):
    investigator = Investigator(InvestigatorConfig(max_states=5000, max_depth=30))
    report = benchmark(investigator.investigate, FACTORIES)
    report_rows.append(
        f"states={report.states_explored} transitions={report.transitions} "
        f"trails={len(report.trails)}"
    )
    assert report.found_violation
    shortest = report.shortest_trail()
    report_rows.append(f"shortest violating trail: {shortest.length} steps")
    assert shortest.length >= BoundedCounter.bound


def test_fig3_single_path_is_cheaper_than_exhaustive(report_rows):
    investigator = Investigator(InvestigatorConfig(max_states=5000, max_depth=30))
    exhaustive = investigator.investigate(FACTORIES)
    single = investigator.replay_single_path(FACTORIES)
    report_rows.append(
        f"states explored: single-path={single.states_explored}, exhaustive={exhaustive.states_explored}"
    )
    assert single.states_explored <= exhaustive.states_explored


def test_fig3_trails_are_deduplicated_and_ordered(report_rows):
    investigator = Investigator(InvestigatorConfig(max_states=5000, max_depth=20))
    report = investigator.investigate(FACTORIES)
    lengths = [trail.length for trail in report.trails]
    report_rows.append(f"trail lengths: {lengths}")
    assert len(set((t.violated_invariant, t.steps[-1].state_fingerprint) for t in report.trails)) == len(
        report.trails
    )
