"""Experiment fig5-healer: user fix + dynamic update vs. restart (Figure 5).

Benchmarks healing the distributed bank with the two recovery strategies
the paper describes and checks the qualitative claim: resuming from a
checkpoint preserves completed work, restarting does not.
"""

from __future__ import annotations

from repro.api import Cluster, ClusterConfig, apps

_BANK = apps.app("bank").exports
BankBranch = _BANK["BankBranch"]
BankBranchFixed = _BANK["BankBranchFixed"]
from repro.healer.healer import Healer
from repro.healer.patch import generate_patch
from repro.healer.strategies import RecoveryStrategy
from repro.timemachine.time_machine import TimeMachine


def heal_bank(strategy: RecoveryStrategy):
    cluster = Cluster(ClusterConfig(seed=13, halt_on_violation=False))
    apps.build(cluster, "bank", branches=3)
    time_machine = TimeMachine()
    time_machine.attach(cluster)
    cluster.run(until=6.0, max_events=300)
    healer = Healer(cluster, time_machine)
    patch = generate_patch(BankBranch, BankBranchFixed, description="credit transfers in full")
    report = healer.heal(patch, strategy=strategy)
    cluster.resume()
    cluster.run(max_events=600)
    return report


def test_fig5_resume_from_checkpoint(benchmark, report_rows):
    report = benchmark(heal_bank, RecoveryStrategy.RESUME_FROM_CHECKPOINT)
    report_rows.append(
        f"resume: preserved={report.outcome.total_preserved_time:.1f} "
        f"lost={report.outcome.total_lost_time:.1f} succeeded={report.succeeded}"
    )
    assert report.succeeded
    assert report.outcome.total_preserved_time > 0


def test_fig5_restart_from_scratch(benchmark, report_rows):
    report = benchmark(heal_bank, RecoveryStrategy.RESTART_FROM_SCRATCH)
    report_rows.append(
        f"restart: preserved={report.outcome.total_preserved_time:.1f} "
        f"lost={report.outcome.total_lost_time:.1f} succeeded={report.succeeded}"
    )
    assert report.succeeded
    assert report.outcome.total_preserved_time == 0


def test_fig5_resume_preserves_more_work_than_restart(report_rows):
    resume = heal_bank(RecoveryStrategy.RESUME_FROM_CHECKPOINT)
    restart = heal_bank(RecoveryStrategy.RESTART_FROM_SCRATCH)
    report_rows.append(
        f"preserved sim-time: resume={resume.outcome.total_preserved_time:.1f}, "
        f"restart={restart.outcome.total_preserved_time:.1f}"
    )
    report_rows.append(
        f"lost sim-time: resume={resume.outcome.total_lost_time:.1f}, "
        f"restart={restart.outcome.total_lost_time:.1f}"
    )
    assert resume.outcome.total_preserved_time > restart.outcome.total_preserved_time
    assert resume.outcome.total_lost_time < restart.outcome.total_lost_time
