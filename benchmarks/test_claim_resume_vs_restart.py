"""Experiment claim-3.4-resume: resuming from a checkpoint reuses correct computation
(Section 3.4).

A long word-count run hits a fault late; the benchmark compares how many
already-aggregated chunks each recovery strategy preserves and how much
simulated work has to be redone.
"""

from __future__ import annotations

from repro.api import Cluster, ClusterConfig, apps

_WC = apps.app("wordcount").exports
WordCountMaster = _WC["WordCountMaster"]
WordCountWorker = _WC["WordCountWorker"]
from repro.healer.healer import Healer
from repro.healer.patch import generate_patch
from repro.healer.strategies import RecoveryStrategy
from repro.timemachine.time_machine import TimeMachine


def run_until_late_fault():
    """Run the word-count pipeline most of the way through, with checkpointing on."""
    cluster = Cluster(ClusterConfig(seed=11, halt_on_violation=False))
    apps.build(cluster, "wordcount", workers=3, chunks=12)
    time_machine = TimeMachine()
    time_machine.attach(cluster)
    cluster.run(until=10.0, max_events=3000)
    return cluster, time_machine


def recover(strategy: RecoveryStrategy):
    cluster, time_machine = run_until_late_fault()
    aggregated_before = cluster.process("master").state["aggregated"]
    patch = generate_patch(
        WordCountMaster, WordCountMaster, name="master-hotfix", target_pids=["master"]
    )
    healer = Healer(cluster, time_machine)
    report = healer.heal(patch, strategy=strategy)
    aggregated_after_recovery = cluster.process("master").state["aggregated"]
    return aggregated_before, aggregated_after_recovery, report


def test_resume_preserves_aggregated_chunks(benchmark, report_rows):
    before, after, report = benchmark(recover, RecoveryStrategy.RESUME_FROM_CHECKPOINT)
    report_rows.append(f"resume: {after}/{before} aggregated chunks survive recovery")
    assert report.succeeded
    assert after > 0
    assert after <= before


def test_restart_discards_aggregated_chunks(benchmark, report_rows):
    before, after, report = benchmark(recover, RecoveryStrategy.RESTART_FROM_SCRATCH)
    report_rows.append(f"restart: {after}/{before} aggregated chunks survive recovery")
    assert report.succeeded
    assert after == 0


def test_resume_beats_restart_on_preserved_work(report_rows):
    _, resume_after, _ = recover(RecoveryStrategy.RESUME_FROM_CHECKPOINT)
    _, restart_after, _ = recover(RecoveryStrategy.RESTART_FROM_SCRATCH)
    report_rows.append(
        f"chunks preserved: resume={resume_after}, restart={restart_after}"
    )
    assert resume_after > restart_after
