"""Ablation ablation-scroll-mode: liblog-style vs Flashback-style vs black-box recording.

Measures, on the KV-store workload, how many entries and how many bytes of
payload each interception granularity records, and whether the resulting
Scroll still supports full deterministic replay.
"""

from __future__ import annotations

import json

from bench_workloads import build_kv_cluster, kvstore_factories

from repro.scroll.interceptor import InterceptionMode, RecordingPolicy
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.replayer import Replayer


def record_with(mode: InterceptionMode):
    cluster = build_kv_cluster()
    recorder = ScrollRecorder(policy=RecordingPolicy(mode))
    cluster.add_hook(recorder)
    cluster.run(max_events=2000)
    return recorder.scroll


def scroll_bytes(scroll) -> int:
    return sum(len(json.dumps(entry.to_record(), default=str)) for entry in scroll)


def test_scroll_mode_library(benchmark, report_rows):
    scroll = benchmark(record_with, InterceptionMode.LIBRARY)
    report_rows.append(f"library: {len(scroll)} entries, {scroll_bytes(scroll)} bytes")
    assert Replayer(scroll, kvstore_factories()).replay_all().ok


def test_scroll_mode_syscall(benchmark, report_rows):
    scroll = benchmark(record_with, InterceptionMode.SYSCALL)
    report_rows.append(f"syscall: {len(scroll)} entries, {scroll_bytes(scroll)} bytes")
    assert Replayer(scroll, kvstore_factories()).replay_all().ok


def test_scroll_mode_blackbox(benchmark, report_rows):
    scroll = benchmark(record_with, InterceptionMode.BLACKBOX)
    report_rows.append(f"blackbox: {len(scroll)} entries, {scroll_bytes(scroll)} bytes")


def test_scroll_mode_cost_ordering(report_rows):
    costs = {
        mode.value: (len(scroll), scroll_bytes(scroll))
        for mode, scroll in (
            (mode, record_with(mode))
            for mode in (InterceptionMode.BLACKBOX, InterceptionMode.LIBRARY, InterceptionMode.SYSCALL)
        )
    }
    report_rows.append(f"(entries, bytes) per mode: {costs}")
    assert costs["blackbox"][0] <= costs["library"][0] <= costs["syscall"][0]
    assert costs["blackbox"][1] <= costs["library"][1] <= costs["syscall"][1]
