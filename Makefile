PYTHONPATH := src
export PYTHONPATH

.PHONY: verify tier1 tier1-core matrix parity mp-teardown net-smoke bench-smoke suite-smoke resume-smoke fuzz-smoke bench test-all

## The one-command gate: core tests, the fault matrix, backend parity
## (mp transports + the socket backend), mp teardown/leak regression,
## net teardown/leak regression, benchmark smoke, a suite-file run
## through the repro.api facade, the durable-store resume suite, and
## the fuzzing smoke gate — each exactly once (tier1-core deselects
## what the later steps own).
verify: tier1-core matrix parity mp-teardown net-smoke bench-smoke suite-smoke resume-smoke fuzz-smoke

## The plain default suite (what CI and `pytest -x -q` run): includes the
## matrix and the in-process bench smoke test.
tier1:
	python -m pytest -x -q

tier1-core:
	python -m pytest -x -q -m "not slow and not matrix and not parity and not durable" \
		--ignore=tests/integration/test_bench_smoke.py

matrix:
	python -m pytest -m matrix -q

## Every demo app on both substrates (simulator + real processes, the
## latter on both the pipe and the shared-memory transport).
parity:
	python -m pytest -m parity -q

## Leak-proof teardown of the mp backend (shm segments, sender threads,
## resource-tracker-quiet exit) on clean, worker-lost and interrupt paths.
mp-teardown:
	python -m pytest tests/unit/test_mp_teardown.py -m "" -q

## Small net-backend run plus teardown-leak regression: socket files
## and shard-router threads reclaimed on clean, worker-lost, stalled
## and interrupt paths.
net-smoke:
	python -m pytest tests/unit/test_net_teardown.py -m "" -q

bench-smoke:
	python benchmarks/run_bench.py --quick --check

## Run the committed multi-fault suite artefact end to end through the
## declarative facade (load_suite -> Experiment -> Outcome assertions).
suite-smoke:
	python -m repro.api suites/crash_during_partition.json

## Disk-backed checkpoint-store tests (blob integrity, crash windows,
## continuation parity; every store lives in a pytest tmp_path), the
## crash-resume-continue example on the facade, and the real-SIGKILL
## kill-and-continue smoke (child run killed mid-flight, resumed,
## continued, checked against an uninterrupted twin).
resume-smoke:
	python -m pytest -m durable -q
	python examples/resume_after_crash.py
	python scripts/resume_kill_continue.py

## Deterministic fuzzing gate: a pinned-seed budget must rediscover a
## known-bad schedule, shrink it to <= 3 faults, dedup by coverage key,
## and emit suite artefacts that replay immediately.
fuzz-smoke:
	python scripts/fuzz_smoke.py

## Regenerate the committed benchmark baseline (full + quick profiles).
bench:
	python benchmarks/run_bench.py

## Everything, including slow benchmarks (minutes).
test-all:
	python -m pytest -m "" -q
