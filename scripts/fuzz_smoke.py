"""Fuzzing smoke gate: fixed seed, tight budget, hard assertions.

Runs the coverage-guided fuzzer against the ``bank`` app with a pinned
seed and a 30-second ceiling and requires it to

1. rediscover at least one substantive failure (invariant violation or
   inconsistency — a known-bad schedule the generator can always reach
   at this seed),
2. shrink the first discovery down to at most 3 faults,
3. deduplicate by coverage key when the same corpus is fuzzed again, and
4. write minimized suite artefacts that immediately replay ok
   (green, or reproducing their recorded failure signature).

Everything is deterministic per seed, so a failure of this gate is a
regression in the fuzz subsystem, not noise.  Part of ``make verify``
(the ``fuzz-smoke`` target).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api.suite import run_suite_records
from repro.fuzz import Budget, Corpus, fuzz

SEED = 1
BUDGET = Budget(max_execs=40, max_seconds=30)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fuzz-smoke-") as tmp:
        corpus_dir = Path(tmp) / "corpus"
        suites_dir = Path(tmp) / "suites"
        report = fuzz(
            "bank",
            seed=SEED,
            budget=BUDGET,
            corpus_dir=corpus_dir,
            suites_dir=suites_dir,
            progress=lambda line: print(f"  {line}"),
        )

        print(
            f"\nfuzz-smoke: {report.execs} execs in {report.elapsed_s:.1f}s "
            f"({report.execs_per_sec:.1f}/s), "
            f"{report.new_coverage} coverage points, "
            f"{report.distinct_failures} distinct failure(s), "
            f"{len(report.minimized)} minimized"
        )

        failures = []
        if report.errors:
            failures.append(f"candidate errors: {report.errors}")
        if report.distinct_failures < 1:
            failures.append("fuzzer rediscovered no failure at the pinned seed")
        if not report.minimized:
            failures.append("no failure was shrunk")
        for minimized in report.minimized:
            if minimized.faults_after > 3:
                failures.append(
                    f"{minimized.scenario.name} only shrank to "
                    f"{minimized.faults_after} faults (> 3)"
                )
            if not minimized.record.get("ok"):
                failures.append(
                    f"artefact {minimized.suite_path} does not replay ok"
                )

        # artefacts replay through the ordinary suite machinery
        artefacts = sorted(suites_dir.glob("*.json")) if suites_dir.exists() else []
        if len(artefacts) != len(report.minimized):
            failures.append(
                f"{len(report.minimized)} minimized failures but "
                f"{len(artefacts)} artefacts on disk"
            )
        for artefact in artefacts:
            ok, records = run_suite_records(artefact)
            verdicts = {r["name"]: r["ok"] for r in records}
            print(f"  replay {artefact.name}: {verdicts}")
            if not ok:
                failures.append(f"artefact {artefact.name} failed replay")

        # the corpus dedups a re-run of the very same seed
        rerun = fuzz(
            "bank", seed=SEED, budget=Budget(max_execs=10), corpus_dir=corpus_dir
        )
        if rerun.new_coverage != 0 or rerun.dedup_hits != 10:
            failures.append(
                f"corpus dedup broke: rerun found {rerun.new_coverage} 'new' "
                f"coverage points, {rerun.dedup_hits} dedup hits (want 0/10)"
            )
        stats = Corpus(corpus_dir).stats()
        print(f"  corpus after rerun: {stats}")

    if failures:
        for failure in failures:
            print(f"FUZZ-SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print("fuzz-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
