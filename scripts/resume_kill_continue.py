#!/usr/bin/env python
"""Kill-and-continue smoke: SIGKILL a durable run mid-flight, then finish it.

The durable-store test suite simulates crashes by injecting faults into
blob writes; this script is the real thing.  It

1. runs an uninterrupted twin of the scenario in-process (its own store),
2. spawns a child process running the same scenario against the victim
   store; a runtime hook SIGKILLs the child the first time simulated
   time reaches the kill point — no atexit, no cleanup, exactly like a
   crashed driver,
3. verifies the child died by signal, resumes the victim run from its
   store (``Experiment.resume`` replays the persisted Scroll forward to
   the crash point), continues it to the scenario horizon, and
4. asserts the continued run landed on the uninterrupted twin's
   application state.

Wired into ``make resume-smoke``; exits non-zero on any mismatch.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import shutil

SCENARIO_NAME = "kv-kill-continue"
HORIZON = 8.0
KILL_AT = 5.0


def kv_scenario(store: str, flush_mode: str = "sync"):
    from repro.api import Scenario

    return Scenario(
        app="kvstore",
        name=SCENARIO_NAME,
        params={"replicas": 2, "clients": 1},
        seed=11,
        until=HORIZON,
        auto_commit_interval=2.0,
        checkpoint_store="disk",
        store_path=store,
        flush_mode=flush_mode,
    )


def run_victim(store: str, flush_mode: str = "sync") -> None:
    """Child: run the scenario, then die by SIGKILL mid-run.

    Mirrors ``run_scenario`` with one addition — a hook that SIGKILLs
    this process the first time a handler finishes at or past KILL_AT.
    FixD's hooks are installed first, so the auto-commits (and their
    Scroll flushes) before the kill point have already landed on disk.
    """
    from repro.api import apps as app_registry
    from repro.api.experiment import _fixd_config, _make_backend
    from repro.core.fixd import FixD
    from repro.dsim.cluster import Cluster, ClusterConfig
    from repro.dsim.hooks import RuntimeHook

    scenario = kv_scenario(store, flush_mode)
    cluster = Cluster(
        ClusterConfig(seed=scenario.seed, halt_on_violation=False),
        backend=_make_backend(scenario),
    )
    app_registry.build(cluster, scenario.app, **scenario.params)
    fixd = FixD(_fixd_config(scenario))
    fixd.attach(cluster)
    fixd.time_machine.durable_store.set_run_metadata(
        {"scenario": scenario.to_dict()}
    )

    durable = fixd.time_machine.durable_store

    class SigkillAt(RuntimeHook):
        def after_handler(self, pid, description, time):
            if time >= KILL_AT:
                # simulated time outruns wall time by orders of magnitude,
                # so in pipelined mode the background writer may not have
                # landed a manifest yet (a real deployment runs at wall
                # speed, where it keeps up).  Wait for one committed line
                # AND the scroll sidecar to be durable — both were
                # enqueued by the auto-commits before the kill point —
                # then kill; later flushes stay queued, so the SIGKILL
                # still lands mid-pipeline.
                import time as wall

                deadline = wall.monotonic() + 10.0
                while not list(durable.run_dir.glob("line-*.json")) or not (
                    durable.run_dir / "scroll.json"
                ).exists():
                    if wall.monotonic() > deadline:
                        break
                    wall.sleep(0.01)
                os.kill(os.getpid(), signal.SIGKILL)

    cluster.add_hook(SigkillAt())
    cluster.run(until=HORIZON, max_events=scenario.max_events)
    raise SystemExit(f"victim survived to the horizon without reaching t={KILL_AT}")


def run_cycle(flush_mode: str) -> int:
    """One full kill-resume-continue cycle in the given durable flush mode."""
    from repro.api import Experiment

    twin_store = tempfile.mkdtemp(prefix=f"kill-continue-twin-{flush_mode}-")
    victim_store = tempfile.mkdtemp(prefix=f"kill-continue-victim-{flush_mode}-")
    try:
        twin = Experiment([kv_scenario(twin_store, flush_mode)]).run()[0]

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        child = subprocess.run(
            [
                sys.executable,
                os.path.abspath(__file__),
                "--victim",
                victim_store,
                flush_mode,
            ],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        if child.returncode != -signal.SIGKILL:
            print(
                f"FAIL[{flush_mode}]: victim exited with {child.returncode}, "
                f"expected death by SIGKILL ({-signal.SIGKILL})",
                file=sys.stderr,
            )
            return 1
        print(f"[{flush_mode}] victim died by SIGKILL mid-run (rc={child.returncode})")

        resumed = Experiment.resume(SCENARIO_NAME, victim_store)
        if not resumed.replays or not all(
            replay.ok for replay in resumed.replays.values()
        ):
            print(
                f"FAIL[{flush_mode}]: replay-forward diverged: {resumed.replays}",
                file=sys.stderr,
            )
            return 1
        print(
            f"[{flush_mode}] resumed {resumed.run_id!r} at committed line "
            f"{resumed.line_index}; replayed "
            f"{sum(r.events_replayed for r in resumed.replays.values())} "
            "recorded events forward"
        )

        continued = resumed.continue_run(until=HORIZON)
        if continued.state_projection() != twin.state_projection():
            print(
                f"FAIL[{flush_mode}]: continued state != uninterrupted twin state",
                file=sys.stderr,
            )
            print(f"  twin      : {twin.state_projection()}", file=sys.stderr)
            print(f"  continued : {continued.state_projection()}", file=sys.stderr)
            return 1
        if not continued.consistent:
            print(
                f"FAIL[{flush_mode}]: continued run failed its consistency check",
                file=sys.stderr,
            )
            return 1
        print(
            f"[{flush_mode}] continued to t={continued.final_time:.1f}: state "
            "matches the uninterrupted twin"
        )
        return 0
    finally:
        shutil.rmtree(twin_store, ignore_errors=True)
        shutil.rmtree(victim_store, ignore_errors=True)


def main() -> int:
    # both durable flush modes take the same kill: a SIGKILL under the
    # pipelined writer is the real test of its FIFO crash-window ordering
    for flush_mode in ("sync", "pipelined"):
        code = run_cycle(flush_mode)
        if code:
            return code
    print("kill-and-continue smoke passed in both flush modes")
    return 0


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--victim":
        run_victim(sys.argv[2], sys.argv[3] if len(sys.argv) > 3 else "sync")
        raise SystemExit(1)  # unreachable unless the kill never fired
    raise SystemExit(main())
