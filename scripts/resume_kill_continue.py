#!/usr/bin/env python
"""Kill-and-continue smoke: SIGKILL a durable run mid-flight, then finish it.

The durable-store test suite simulates crashes by injecting faults into
blob writes; this script is the real thing.  It

1. runs an uninterrupted twin of the scenario in-process (its own store),
2. spawns a child process running the same scenario against the victim
   store; a runtime hook SIGKILLs the child the first time simulated
   time reaches the kill point — no atexit, no cleanup, exactly like a
   crashed driver,
3. verifies the child died by signal, resumes the victim run from its
   store (``Experiment.resume`` replays the persisted Scroll forward to
   the crash point), continues it to the scenario horizon, and
4. asserts the continued run landed on the uninterrupted twin's
   application state.

Wired into ``make resume-smoke``; exits non-zero on any mismatch.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import shutil

SCENARIO_NAME = "kv-kill-continue"
HORIZON = 8.0
KILL_AT = 5.0


def kv_scenario(store: str):
    from repro.api import Scenario

    return Scenario(
        app="kvstore",
        name=SCENARIO_NAME,
        params={"replicas": 2, "clients": 1},
        seed=11,
        until=HORIZON,
        auto_commit_interval=2.0,
        checkpoint_store="disk",
        store_path=store,
    )


def run_victim(store: str) -> None:
    """Child: run the scenario, then die by SIGKILL mid-run.

    Mirrors ``run_scenario`` with one addition — a hook that SIGKILLs
    this process the first time a handler finishes at or past KILL_AT.
    FixD's hooks are installed first, so the auto-commits (and their
    Scroll flushes) before the kill point have already landed on disk.
    """
    from repro.api import apps as app_registry
    from repro.api.experiment import _fixd_config, _make_backend
    from repro.core.fixd import FixD
    from repro.dsim.cluster import Cluster, ClusterConfig
    from repro.dsim.hooks import RuntimeHook

    scenario = kv_scenario(store)
    cluster = Cluster(
        ClusterConfig(seed=scenario.seed, halt_on_violation=False),
        backend=_make_backend(scenario),
    )
    app_registry.build(cluster, scenario.app, **scenario.params)
    fixd = FixD(_fixd_config(scenario))
    fixd.attach(cluster)
    fixd.time_machine.durable_store.set_run_metadata(
        {"scenario": scenario.to_dict()}
    )

    class SigkillAt(RuntimeHook):
        def after_handler(self, pid, description, time):
            if time >= KILL_AT:
                os.kill(os.getpid(), signal.SIGKILL)

    cluster.add_hook(SigkillAt())
    cluster.run(until=HORIZON, max_events=scenario.max_events)
    raise SystemExit(f"victim survived to the horizon without reaching t={KILL_AT}")


def main() -> int:
    from repro.api import Experiment

    twin_store = tempfile.mkdtemp(prefix="kill-continue-twin-")
    victim_store = tempfile.mkdtemp(prefix="kill-continue-victim-")
    try:
        twin = Experiment([kv_scenario(twin_store)]).run()[0]

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--victim", victim_store],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        if child.returncode != -signal.SIGKILL:
            print(
                f"FAIL: victim exited with {child.returncode}, "
                f"expected death by SIGKILL ({-signal.SIGKILL})",
                file=sys.stderr,
            )
            return 1
        print(f"victim died by SIGKILL mid-run (rc={child.returncode})")

        resumed = Experiment.resume(SCENARIO_NAME, victim_store)
        if not resumed.replays or not all(
            replay.ok for replay in resumed.replays.values()
        ):
            print(f"FAIL: replay-forward diverged: {resumed.replays}", file=sys.stderr)
            return 1
        print(
            f"resumed {resumed.run_id!r} at committed line {resumed.line_index}; "
            f"replayed {sum(r.events_replayed for r in resumed.replays.values())} "
            "recorded events forward"
        )

        continued = resumed.continue_run(until=HORIZON)
        if continued.state_projection() != twin.state_projection():
            print("FAIL: continued state != uninterrupted twin state", file=sys.stderr)
            print(f"  twin      : {twin.state_projection()}", file=sys.stderr)
            print(f"  continued : {continued.state_projection()}", file=sys.stderr)
            return 1
        if not continued.consistent:
            print("FAIL: continued run failed its consistency check", file=sys.stderr)
            return 1
        print(
            f"continued to t={continued.final_time:.1f}: state matches the "
            "uninterrupted twin — kill-and-continue smoke passed"
        )
        return 0
    finally:
        shutil.rmtree(twin_store, ignore_errors=True)
        shutil.rmtree(victim_store, ignore_errors=True)


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--victim":
        run_victim(sys.argv[2])
        raise SystemExit(1)  # unreachable unless the kill never fired
    raise SystemExit(main())
