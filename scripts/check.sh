#!/usr/bin/env bash
# One-command verification: API boundary guard + the Makefile gate
# pipeline (core tests, fault-scenario matrix, backend parity,
# benchmark smoke).
set -euo pipefail
cd "$(dirname "$0")/.."

# ----------------------------------------------------------------------
# API boundary guard: repro.dsim.mp_backend is a deprecated internal
# shim.  The sanctioned multiprocessing surface is the unified backend
# (`Cluster(..., backend="mp")` / repro.dsim.backend.MPBackend), so any
# import of the shim outside src/repro/dsim/ is an accidental boundary
# violation.  A line may opt out with a trailing `# legacy-shim-ok`
# marker (used only by the shim's own regression test).
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.dsim\.mp_backend|from[[:space:]]+repro\.dsim[[:space:]]+import[[:space:]].*mp_backend|import_module\([^)]*mp_backend' \
    src tests benchmarks examples 2>/dev/null \
    | grep -v '^src/repro/dsim/' \
    | grep -v 'legacy-shim-ok' || true)
if [[ -n "$violations" ]]; then
    echo "API boundary violation: repro.dsim.mp_backend imported outside src/repro/dsim/" >&2
    echo "Use Cluster(..., backend=\"mp\") or repro.dsim.backend.MPBackend instead:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: no mp_backend imports outside dsim/"

# ----------------------------------------------------------------------
# Transport boundary guard: repro.dsim.shm_ring is the mp backend's
# internal data plane.  The sanctioned surfaces are the transport knobs
# (MPBackendOptions(transport=...), FixDConfig.transport,
# Scenario.transport) — importing the ring machinery directly outside
# src/repro/dsim/ is a boundary violation.  A line may opt out with a
# trailing `# facade-ok: <reason>` marker, reserved for benchmarks and
# tests that measure or property-test the ring protocol itself.
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.dsim\.shm_ring|from[[:space:]]+repro\.dsim[[:space:]]+import[[:space:]][^#]*\bshm_ring\b|import_module\([^)]*shm_ring' \
    src tests benchmarks examples 2>/dev/null \
    | grep -v '^src/repro/dsim/' \
    | grep -v 'facade-ok' || true)
if [[ -n "$violations" ]]; then
    echo "Transport boundary violation: repro.dsim.shm_ring imported outside src/repro/dsim/" >&2
    echo "Select the transport via MPBackend(transport=...), FixDConfig.transport or Scenario.transport:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: no shm_ring imports outside dsim/"

# ----------------------------------------------------------------------
# Transport boundary guard: repro.dsim.net_transport is the net
# backend's internal wire plane (socket framing, the endpoint, the
# reassembler).  The sanctioned surfaces are the backend knobs
# (NetBackendOptions, Cluster(..., backend="net"), FixDConfig.backend,
# Scenario.backend) — importing the framing machinery directly outside
# src/repro/dsim/ is a boundary violation.  A line may opt out with a
# trailing `# facade-ok: <reason>` marker, reserved for benchmarks and
# tests that measure or property-test the frame codec itself.
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.dsim\.net_transport|from[[:space:]]+repro\.dsim[[:space:]]+import[[:space:]][^#]*\bnet_transport\b|import_module\([^)]*net_transport' \
    src tests benchmarks examples 2>/dev/null \
    | grep -v '^src/repro/dsim/' \
    | grep -v 'facade-ok' || true)
if [[ -n "$violations" ]]; then
    echo "Transport boundary violation: repro.dsim.net_transport imported outside src/repro/dsim/" >&2
    echo "Select the backend via Cluster(..., backend=\"net\"), NetBackendOptions, FixDConfig.backend or Scenario.backend:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: no net_transport imports outside dsim/"

# ----------------------------------------------------------------------
# Facade boundary guard: examples/ and benchmarks/ express workloads
# through the public facade (`repro.api`) — the execution substrate
# (repro.dsim.*) and the demo-app builders (repro.apps.*) are internal.
# Apps are addressed by registry name (repro.api.apps.build), process
# classes come from registry exports, and the programming model
# (Process/handler/...) is re-exported by repro.api.  A line may opt
# out with a trailing `# facade-ok: <reason>` marker — reserved for
# benchmarks that measure an internal mechanism itself (the scheduler
# hot path, transport batching knobs, synthetic recovery lines).
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.(dsim|apps)\b|from[[:space:]]+repro[[:space:]]+import[^#]*\b(dsim|apps)\b' \
    examples benchmarks 2>/dev/null \
    | grep -v 'facade-ok' || true)
if [[ -n "$violations" ]]; then
    echo "Facade boundary violation: examples/ and benchmarks/ must import repro.api," >&2
    echo "not repro.dsim.* or the repro.apps builders:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: examples/ and benchmarks/ import only the repro.api facade"

# ----------------------------------------------------------------------
# Durable-store boundary guard: repro.timemachine.blobstore is internal
# plumbing of the Time Machine.  The sanctioned surfaces are the
# timemachine package re-exports (BlobStore, DurableCheckpointStore),
# the config knobs (FixDConfig.checkpoint_store, Scenario.checkpoint_store)
# and Experiment.resume — importing the blobstore module directly
# outside src/repro/timemachine/ is a boundary violation.  A line may
# opt out with a trailing `# facade-ok: <reason>` marker, reserved for
# tests that exercise the store's crash windows themselves.
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.timemachine\.blobstore|from[[:space:]]+repro\.timemachine[[:space:]]+import[[:space:]][^#]*\bblobstore\b|import_module\([^)]*blobstore' \
    src tests benchmarks examples 2>/dev/null \
    | grep -v '^src/repro/timemachine/' \
    | grep -v 'facade-ok' || true)
if [[ -n "$violations" ]]; then
    echo "Durable-store boundary violation: repro.timemachine.blobstore imported outside src/repro/timemachine/" >&2
    echo "Use the repro.timemachine re-exports, the checkpoint_store config knobs, or Experiment.resume:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: no blobstore imports outside timemachine/"

# ----------------------------------------------------------------------
# Scroll-persistence boundary guard: repro.timemachine.scroll_persistence
# is Time Machine internals (segment blobs, the scroll.json sidecar, the
# pending-event snapshot).  The sanctioned surfaces are the
# DurableCheckpointStore methods (flush_scroll, rebuild_scroll,
# load_scroll_sidecar), FixDConfig.scroll_flush_entries and
# Experiment.resume / ResumedRun.continue_run — importing the module
# directly outside src/repro/timemachine/ is a boundary violation.  A
# line may opt out with a trailing `# facade-ok: <reason>` marker,
# reserved for tests that exercise the sidecar's crash windows.
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.timemachine\.scroll_persistence|from[[:space:]]+repro\.timemachine[[:space:]]+import[[:space:]][^#]*\bscroll_persistence\b|import_module\([^)]*scroll_persistence' \
    src tests benchmarks examples scripts 2>/dev/null \
    | grep -v '^src/repro/timemachine/' \
    | grep -v 'facade-ok' || true)
if [[ -n "$violations" ]]; then
    echo "Scroll-persistence boundary violation: repro.timemachine.scroll_persistence imported outside src/repro/timemachine/" >&2
    echo "Use DurableCheckpointStore.flush_scroll/rebuild_scroll, FixDConfig.scroll_flush_entries or Experiment.resume:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: no scroll_persistence imports outside timemachine/"

# ----------------------------------------------------------------------
# Flush-pipeline boundary guard: repro.timemachine.flush_pipeline is the
# durable store's background-writer internals.  The sanctioned surfaces
# are the config knobs (FixDConfig.flush_mode / flush_queue_bytes,
# Scenario.flush_mode / flush_queue_bytes) and the timemachine package
# re-exports (FlushPipeline, DEFAULT_FLUSH_QUEUE_BYTES) — importing the
# module directly outside src/repro/timemachine/ is a boundary
# violation.  A line may opt out with a trailing `# facade-ok: <reason>`
# marker, reserved for tests that exercise the pipeline itself.
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.timemachine\.flush_pipeline|from[[:space:]]+repro\.timemachine[[:space:]]+import[[:space:]][^#]*\bflush_pipeline\b|import_module\([^)]*flush_pipeline' \
    src tests benchmarks examples scripts 2>/dev/null \
    | grep -v '^src/repro/timemachine/' \
    | grep -v 'facade-ok' || true)
if [[ -n "$violations" ]]; then
    echo "Flush-pipeline boundary violation: repro.timemachine.flush_pipeline imported outside src/repro/timemachine/" >&2
    echo "Use the flush_mode/flush_queue_bytes config knobs or the repro.timemachine re-exports:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: no flush_pipeline imports outside timemachine/"

# ----------------------------------------------------------------------
# Fuzzing boundary guard: the submodules of repro.fuzz (generate,
# coverage, corpus, shrink, driver) are subsystem internals.  The
# sanctioned surfaces are the repro.fuzz package re-exports (fuzz,
# Budget, Corpus, generate_scenario, shrink_scenario, coverage_key, ...),
# Experiment.fuzz and the `python -m repro.fuzz` CLI — importing the
# submodules directly outside src/repro/fuzz/ is a boundary violation.
# A line may opt out with a trailing `# facade-ok: <reason>` marker,
# reserved for tests that exercise an internal mechanism itself.
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.fuzz\.(generate|coverage|corpus|shrink|driver)\b|import_module\([^)]*repro\.fuzz\.' \
    src tests benchmarks examples scripts 2>/dev/null \
    | grep -v '^src/repro/fuzz/' \
    | grep -v 'facade-ok' || true)
if [[ -n "$violations" ]]; then
    echo "Fuzzing boundary violation: repro.fuzz internals imported outside src/repro/fuzz/" >&2
    echo "Use the repro.fuzz package re-exports, Experiment.fuzz or python -m repro.fuzz:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: no repro.fuzz internals imported outside fuzz/"

if ! command -v make >/dev/null 2>&1; then
    echo "scripts/check.sh requires make; run the Makefile 'verify' steps manually:" >&2
    grep -A2 '^verify:' Makefile >&2
    exit 1
fi
exec make verify
