#!/usr/bin/env bash
# One-command verification. Delegates to `make verify` so the gate
# pipeline (core tests, fault-scenario matrix, benchmark smoke) has a
# single source of truth in the Makefile.
set -euo pipefail
cd "$(dirname "$0")/.."
if ! command -v make >/dev/null 2>&1; then
    echo "scripts/check.sh requires make; run the Makefile 'verify' steps manually:" >&2
    grep -A2 '^verify:' Makefile >&2
    exit 1
fi
exec make verify
