#!/usr/bin/env bash
# One-command verification: API boundary guard + the Makefile gate
# pipeline (core tests, fault-scenario matrix, backend parity,
# benchmark smoke).
set -euo pipefail
cd "$(dirname "$0")/.."

# ----------------------------------------------------------------------
# API boundary guard: repro.dsim.mp_backend is a deprecated internal
# shim.  The sanctioned multiprocessing surface is the unified backend
# (`Cluster(..., backend="mp")` / repro.dsim.backend.MPBackend), so any
# import of the shim outside src/repro/dsim/ is an accidental boundary
# violation.  A line may opt out with a trailing `# legacy-shim-ok`
# marker (used only by the shim's own regression test).
# ----------------------------------------------------------------------
violations=$(grep -rn --include='*.py' -E \
    '(from|import)[[:space:]]+repro\.dsim\.mp_backend|from[[:space:]]+repro\.dsim[[:space:]]+import[[:space:]].*mp_backend|import_module\([^)]*mp_backend' \
    src tests benchmarks examples 2>/dev/null \
    | grep -v '^src/repro/dsim/' \
    | grep -v 'legacy-shim-ok' || true)
if [[ -n "$violations" ]]; then
    echo "API boundary violation: repro.dsim.mp_backend imported outside src/repro/dsim/" >&2
    echo "Use Cluster(..., backend=\"mp\") or repro.dsim.backend.MPBackend instead:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "boundary guard: no mp_backend imports outside dsim/"

if ! command -v make >/dev/null 2>&1; then
    echo "scripts/check.sh requires make; run the Makefile 'verify' steps manually:" >&2
    grep -A2 '^verify:' Makefile >&2
    exit 1
fi
exec make verify
