"""Property tests for the fuzz generator's determinism contract.

The whole fuzzing subsystem leans on one promise: ``generate_scenario
(app, seed)`` is a pure function of its arguments — byte-identical
canonical JSON in *any* process.  These tests enforce it the hard way
(a worker process regenerates the scenarios and the parent compares
bytes), plus the structural properties every generated artefact must
hold: JSON round-trips, valid non-empty schedules, on-grid times, and
shrink candidates that always construct.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Tuple

from repro.api import FaultSchedule, Scenario
from repro.fuzz import generate_scenario, generate_schedule, vocabulary_for
from repro.fuzz.generate import TIME_GRID  # facade-ok: asserts the sampling grid itself

APPS = ("token_ring", "kvstore", "bank")
SEEDS = range(20)


def _generate_json(app: str, seeds) -> Dict[Tuple[str, int], str]:
    """Module-level (hence picklable) worker: seed -> canonical JSON."""
    return {(app, seed): generate_scenario(app, seed).to_json() for seed in seeds}


class TestCrossProcessDeterminism:
    def test_same_seed_same_bytes_across_processes(self):
        local = {}
        for app in APPS:
            local.update(_generate_json(app, SEEDS))
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_generate_json, app, list(SEEDS)) for app in APPS]
            remote = {}
            for future in futures:
                remote.update(future.result())
        assert local == remote

    def test_distinct_seeds_explore(self):
        schedules = {generate_scenario("token_ring", seed).faults.label for seed in range(40)}
        # the sampler must actually move through the fault vocabulary
        assert len(schedules) >= 8


class TestGeneratedArtefactShape:
    def test_round_trips_byte_identically(self):
        for app in APPS:
            for seed in SEEDS:
                scenario = generate_scenario(app, seed)
                clone = Scenario.from_json(scenario.to_json())
                assert clone == scenario
                assert clone.to_json() == scenario.to_json()

    def test_schedules_non_empty_and_on_grid(self):
        for app in APPS:
            vocabulary = vocabulary_for(app)
            for seed in SEEDS:
                schedule = generate_schedule(vocabulary, seed)
                assert len(schedule) >= 1
                for spec in schedule.faults:
                    for attr in ("at", "recover_at", "start", "end", "after", "extra_delay"):
                        value = getattr(spec, attr, None)
                        if value is not None:
                            assert value == round(value / TIME_GRID) * TIME_GRID

    def test_faults_speak_the_vocabulary(self):
        vocabulary = vocabulary_for("kvstore")
        pids = set(vocabulary.pids)
        kinds = set(vocabulary.message_kinds)
        for seed in range(30):
            for spec in generate_schedule(vocabulary, seed).faults:
                if hasattr(spec, "pid"):
                    assert spec.pid in pids
                if getattr(spec, "match_kind", None) is not None:
                    assert spec.match_kind in kinds
                if hasattr(spec, "groups"):
                    assert set(spec.groups[0]) | set(spec.groups[1]) <= pids

    def test_shrink_candidates_always_construct(self):
        vocabulary = vocabulary_for("bank")
        for seed in range(30):
            for spec in generate_schedule(vocabulary, seed).faults:
                for candidate in spec.shrink_candidates():
                    # a candidate must be a valid spec of the same kind
                    # and must survive scheduling and serialization
                    assert candidate.kind == spec.kind
                    schedule = FaultSchedule.of(candidate)
                    payload = json.dumps(
                        Scenario(
                            app="bank", name="cand", faults=schedule
                        ).to_dict(),
                        sort_keys=True,
                    )
                    assert json.loads(payload)
