"""Equivalence properties for the hot-path overhaul.

The indexed Scroll and the lazy-deletion Scheduler are pure
optimizations: for ANY input they must produce results identical to the
seed implementations, which live on as oracles in
``benchmarks/hotpath_baselines.py``.  Hypothesis drives both through
random logs (including out-of-time-order appends, which disable the
bisect fast path) and random schedules with random cancellations.
"""

from __future__ import annotations

import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from hotpath_baselines import NaiveScheduler, NaiveScrollQueries  # noqa: E402

from repro.dsim.clock import VectorTimestamp
from repro.dsim.scheduler import EventKind, Scheduler
from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.scroll import Scroll

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
pids = st.sampled_from(["a", "b", "c", "d"])
kinds = st.sampled_from(list(ActionKind))
times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def scroll_entries(draw):
    pid = draw(pids)
    kind = draw(kinds)
    time = draw(times)
    detail = {}
    if kind in (ActionKind.SEND, ActionKind.RECEIVE):
        if draw(st.booleans()):
            detail = {"message": {"msg_id": draw(st.integers(0, 50)), "src": pid, "dst": "a", "kind": "X"}}
    elif kind is ActionKind.RANDOM:
        detail = {"method": draw(st.sampled_from(["random", "randint"])), "value": draw(st.integers(0, 9))}
    elif kind is ActionKind.CLOCK_READ:
        if draw(st.booleans()):
            detail = {"value": draw(times)}
    elif kind is ActionKind.TIMER:
        detail = {"name": draw(st.sampled_from(["t0", "t1"]))}
    vt = None
    if draw(st.booleans()):
        vt = VectorTimestamp.from_mapping(draw(st.dictionaries(pids, st.integers(0, 10), max_size=4)))
    return ScrollEntry(pid=pid, kind=kind, time=time, detail=detail, vt=vt)


entry_lists = st.lists(scroll_entries(), max_size=60)


# ----------------------------------------------------------------------
# Scroll: indexed queries == linear-scan queries
# ----------------------------------------------------------------------
class TestScrollEquivalence:
    @given(entries=entry_lists, start=times, end=times)
    @settings(max_examples=60, deadline=None)
    def test_all_queries_match_linear_reference(self, entries, start, end):
        indexed = Scroll(entries)
        naive = NaiveScrollQueries(entries)

        assert list(indexed.entries) == list(entries)
        assert indexed.pids() == naive.pids()
        assert indexed.counts_by_kind() == naive.counts_by_kind()
        assert indexed.counts_by_process() == naive.counts_by_process()
        assert indexed.nondeterministic() == naive.nondeterministic()
        assert indexed.between(start, end) == naive.between(start, end)
        assert indexed.last_entry() == naive.last_entry()

        for pid in ("a", "b", "c", "d", "missing"):
            assert indexed.entries_for(pid) == naive.entries_for(pid)
            assert indexed.received_messages(pid) == naive.received_messages(pid)
            assert indexed.sent_messages(pid) == naive.sent_messages(pid)
            assert indexed.random_outcomes(pid) == naive.random_outcomes(pid)
            assert indexed.clock_reads(pid) == naive.clock_reads(pid)
            assert indexed.timer_firings(pid) == naive.timer_firings(pid)
            assert indexed.last_entry(pid) == naive.last_entry(pid)

        for kind_pair in ((ActionKind.SEND,), (ActionKind.SEND, ActionKind.RECEIVE),
                          (ActionKind.TIMER, ActionKind.RANDOM, ActionKind.VIOLATION)):
            assert indexed.of_kind(*kind_pair) == naive.of_kind(*kind_pair)

    @given(runs=st.lists(entry_lists, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_streaming_merge_matches_concat_and_sort(self, runs):
        merged = Scroll.merge([Scroll(run) for run in runs])
        reference = NaiveScrollQueries.merge(runs)
        assert list(merged) == reference

    @given(entries=entry_lists)
    @settings(max_examples=30, deadline=None)
    def test_append_after_queries_keeps_indexes_fresh(self, entries):
        indexed = Scroll()
        naive_entries = []
        for entry in entries:
            indexed.append(entry)
            naive_entries.append(entry)
            naive = NaiveScrollQueries(naive_entries)
            assert indexed.entries_for(entry.pid) == naive.entries_for(entry.pid)
            assert len(indexed) == len(naive_entries)


# ----------------------------------------------------------------------
# Scheduler: lazy deletion == seed scheduler, op for op
# ----------------------------------------------------------------------
ops = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.floats(0.0, 10.0, allow_nan=False), st.sampled_from(list(EventKind)),
                  st.sampled_from(["a", "b", "c"])),
        st.tuples(st.just("cancel_target"), st.sampled_from(["a", "b", "c", "missing"]),
                  st.one_of(st.none(), st.sampled_from(list(EventKind)))),
        st.tuples(st.just("cancel_index"), st.integers(0, 200)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("peek")),
    ),
    max_size=80,
)


class TestSchedulerEquivalence:
    @given(operations=ops)
    @settings(max_examples=80, deadline=None)
    def test_identical_execution_order_under_random_cancellations(self, operations):
        fast, slow = Scheduler(), NaiveScheduler()
        fast_events, slow_events = [], []

        for op in operations:
            name = op[0]
            if name == "schedule":
                _, delay, kind, target = op
                fast_events.append(fast.schedule(delay, kind, target))
                slow_events.append(slow.schedule(delay, kind, target))
            elif name == "cancel_target":
                _, target, kind = op
                assert fast.cancel_for_target(target, kind) == slow.cancel_for_target(target, kind)
            elif name == "cancel_index":
                _, index = op
                if fast_events:
                    fast.cancel(fast_events[index % len(fast_events)])
                    slow.cancel(slow_events[index % len(slow_events)])
            elif name == "pop":
                fast_popped, slow_popped = fast.pop_next(), slow.pop_next()
                assert _signature(fast_popped) == _signature(slow_popped)
            elif name == "peek":
                assert fast.peek_time() == slow.peek_time()
            assert fast.pending_events == slow.pending_events
            assert fast.now == slow.now

        assert [_signature(e) for e in fast.drain()] == [_signature(e) for e in slow.drain()]
        assert fast.executed_events == slow.executed_events

    @given(operations=ops, until=st.floats(0.0, 12.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_drain_until_matches(self, operations, until):
        fast, slow = Scheduler(), NaiveScheduler()
        for op in operations:
            if op[0] == "schedule":
                _, delay, kind, target = op
                fast.schedule(delay, kind, target)
                slow.schedule(delay, kind, target)
            elif op[0] == "cancel_target":
                _, target, kind = op
                fast.cancel_for_target(target, kind)
                slow.cancel_for_target(target, kind)
        assert [_signature(e) for e in fast.drain(until=until)] == [
            _signature(e) for e in slow.drain(until=until)
        ]
        assert fast.pending_events == slow.pending_events


def _signature(event):
    if event is None:
        return None
    return (event.time, event.seq, event.kind, event.target)
