"""Property tests for the shared-memory ring transport.

Three layers, each driven by seeded ``random.Random`` programs in the
style of the other property suites:

1. **Ring byte stream** — random variable-size frame sequences pushed
   through a small :class:`~repro.dsim.shm_ring.SpscRing` (forcing
   wraparound and ring-full backpressure) with a concurrent consumer,
   against a ``multiprocessing.Pipe`` oracle carrying the same frames:
   delivery must be byte-identical and in order.

2. **Item codec** — random ``flush``/``batch`` items (messages with
   nested builtin payloads, vector timestamps, speculation taints, and
   occasionally unpicklable-by-marshal payloads that must fall back to
   the pickled frame) round-tripped through
   ``encode_item``/``decode_item`` against a pickle oracle: the decoded
   item must equal what a pickle round trip of the same item produces.

3. **Endpoint sequences** — full :class:`~repro.dsim.shm_ring.ShmEndpoint`
   pairs over real pipes and a deliberately tiny ring, including
   oversize frames that chunk through the ring, against a
   :class:`~repro.dsim.shm_ring.PipeEndpoint` oracle: the data items
   arrive equal and in identical order.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import random
import threading

import pytest

from repro.dsim import shm_ring  # facade-ok: the ring protocol itself is under test
from repro.dsim.clock import VectorTimestamp
from repro.dsim.message import Message
from repro.dsim.shm_ring import (  # facade-ok: the ring protocol itself is under test
    PipeEndpoint,
    ShmEndpoint,
    SpscRing,
    TransportError,
    decode_item,
    encode_item,
    new_stats,
)

_HEADER = 128  # ring data offset (cursor block)


def make_ring(capacity: int) -> SpscRing:
    """An in-process ring over a plain buffer (no shared memory needed)."""
    return SpscRing(memoryview(bytearray(_HEADER + capacity)), capacity)


def paired_rings(capacity: int):
    """Producer-side and consumer-side views of the same ring buffer."""
    buf = memoryview(bytearray(_HEADER + capacity))
    return SpscRing(buf, capacity), SpscRing(buf, capacity)


# ----------------------------------------------------------------------
# 1. ring byte stream vs pipe oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_ring_delivers_byte_identical_frames_in_order(seed: int):
    rng = random.Random(seed)
    capacity = 4096  # small: plenty of wraparound and backpressure
    frames = [
        rng.randbytes(rng.choice([0, 1, 3, rng.randrange(900), rng.randrange(2000)]))
        for _ in range(400)
    ]
    producer_ring, consumer_ring = paired_rings(capacity)

    received: list = []

    def consume() -> None:
        while len(received) < len(frames):
            consumer_ring.read(lambda view: received.append(bytes(view)) or True)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    for frame in frames:
        # blocks when the ring is full: the consumer thread frees space
        assert producer_ring.write(frame, timeout=10.0)
    consumer.join(timeout=10.0)
    assert not consumer.is_alive(), "consumer did not drain every frame"

    # the pipe oracle: same frames, same API shape
    parent_conn, child_conn = mp.Pipe(duplex=False)
    oracle: list = []
    for frame in frames:
        child_conn.send_bytes(frame)
        oracle.append(parent_conn.recv_bytes())
    parent_conn.close()
    child_conn.close()

    assert received == oracle == frames


def test_ring_rejects_frames_beyond_capacity():
    ring = make_ring(1024)
    with pytest.raises(TransportError):
        ring.try_write(b"x" * 2048)


def test_ring_full_write_times_out_without_consumer():
    ring = make_ring(256)
    assert ring.write(b"a" * 200, timeout=0.05)
    assert not ring.write(b"b" * 200, timeout=0.05), "no consumer: must time out"


# ----------------------------------------------------------------------
# 2. item codec vs pickle oracle
# ----------------------------------------------------------------------
class _Opaque:
    """Picklable but not marshallable: forces the pickled-frame fallback."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return type(other) is _Opaque and other.value == self.value


def random_value(rng: random.Random, depth: int = 0):
    choices = ["int", "str", "bytes", "float", "none", "bool"]
    if depth < 3:
        choices += ["list", "tuple", "dict", "set"]
    kind = rng.choice(choices)
    if kind == "int":
        return rng.randrange(-(10 ** 12), 10 ** 12)
    if kind == "str":
        return "".join(rng.choice("abcdefgh αβγ") for _ in range(rng.randrange(0, 12)))
    if kind == "bytes":
        return rng.randbytes(rng.randrange(0, 16))
    if kind == "float":
        return rng.uniform(-1e6, 1e6)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "list":
        return [random_value(rng, depth + 1) for _ in range(rng.randrange(0, 5))]
    if kind == "tuple":
        return tuple(random_value(rng, depth + 1) for _ in range(rng.randrange(0, 5)))
    if kind == "set":
        return {rng.randrange(100) for _ in range(rng.randrange(0, 4))}
    return {
        rng.choice(["k1", "k2", "k3", 7, ("t", 1)]): random_value(rng, depth + 1)
        for _ in range(rng.randrange(0, 5))
    }


def random_vt(rng: random.Random):
    if rng.random() < 0.1:
        return None
    pids = rng.sample(["p0", "p1", "p2", "worker0", "master"], k=rng.randrange(0, 4))
    return VectorTimestamp(tuple(sorted((pid, rng.randrange(1, 500)) for pid in pids)))


def random_message(rng: random.Random) -> Message:
    payload = random_value(rng)
    if rng.random() < 0.1:
        payload = _Opaque(rng.randrange(1000))  # unmarshallable: pickle fallback
    return Message(
        src=rng.choice(["p0", "p1", "master"]),
        dst=rng.choice(["p0", "p1", "worker0"]),
        kind=rng.choice(["PUT", "COUNT", "TOKEN", "X"]),
        payload=payload,
        msg_id=rng.randrange(1, 10 ** 12),
        send_time=rng.uniform(0, 1000),
        vt=random_vt(rng) or VectorTimestamp(),
        lamport=rng.randrange(0, 10 ** 6),
        speculations=(
            frozenset(rng.sample(["s1", "s2", "s3"], k=rng.randrange(0, 3)))
            if rng.random() < 0.2
            else frozenset()
        ),
        duplicate_of=rng.randrange(1, 1000) if rng.random() < 0.2 else None,
    )


def random_flush_entry(rng: random.Random):
    tag = rng.choice(
        ["sent", "brecv", "recv", "handled", "timer", "violation", "event", "dead", "counters"]
    )
    at = rng.uniform(0, 1000)
    if tag == "sent":
        return ("sent", random_message(rng))
    if tag == "brecv":
        return ("brecv", rng.randrange(1, 10 ** 9), at)
    if tag == "recv":
        return ("recv", rng.randrange(1, 10 ** 9), at, random_vt(rng))
    if tag == "handled":
        return ("handled", rng.choice(["on_start", "deliver X", "timer t"]), at)
    if tag == "timer":
        return ("timer", rng.choice(["tick", "retry"]), at, random_vt(rng))
    if tag == "violation":
        return ("violation", "inv-name", "detail " * rng.randrange(3), at, random_vt(rng))
    if tag == "event":
        return ("event", rng.choice(["crash", "recover", "corrupt"]), "", at, random_vt(rng))
    if tag == "dead":
        return ("dead", rng.randrange(1, 10 ** 9))
    return ("counters", rng.randrange(0, 10 ** 6), rng.randrange(0, 10 ** 6))


def random_item(rng: random.Random):
    if rng.random() < 0.5:
        log = [random_flush_entry(rng) for _ in range(rng.randrange(0, 12))]
        return ("flush", rng.choice(["p0", "worker1"]), log)
    batch = [
        (rng.randrange(1, 10 ** 9), random_message(rng))
        for _ in range(rng.randrange(0, 8))
    ]
    return ("batch", batch)


@pytest.mark.parametrize("seed", [3, 11, 42, 2026])
def test_item_codec_matches_pickle_oracle(seed: int):
    rng = random.Random(seed)
    for _ in range(60):
        item = random_item(rng)
        oracle = pickle.loads(pickle.dumps(item, pickle.HIGHEST_PROTOCOL))
        stats = new_stats()
        frame = encode_item(item, stats)
        assert frame is not None
        decoded = decode_item(memoryview(bytes(frame)))
        assert decoded[0] == oracle[0]
        if decoded[0] == "flush":
            assert decoded[1] == oracle[1]
            assert list(decoded[2]) == list(oracle[2])
        else:
            assert list(decoded[1]) == list(oracle[1])


def test_order_insensitive_control_items_are_not_ring_frames():
    stats = new_stats()
    for item in [("probe", 3), ("stop",), ("probe_ack", "p0", 3, {}), ("result", "p0", {})]:
        assert encode_item(item, stats) is None


def test_crash_and_recover_ride_the_ring_in_data_order():
    """Crash/recover must not leapfrog (or be leapfrogged by) batches."""
    stats = new_stats()
    for item in [("crash",), ("recover",)]:
        frame = encode_item(item, stats)
        assert frame is not None
        assert decode_item(memoryview(bytes(frame))) == item


def test_unmarshallable_payload_falls_back_to_pickle_frame():
    message = Message(src="a", dst="b", kind="X", payload=_Opaque(7))
    stats = new_stats()
    frame = encode_item(("batch", [(1, message)]), stats)
    assert stats["messages_pickled"] == 1
    assert stats["pickled_bytes"] > 0
    decoded = decode_item(memoryview(bytes(frame)))
    assert decoded == ("batch", [(1, message)])


# ----------------------------------------------------------------------
# 3. endpoint sequences (chunked oversize included) vs pipe endpoints
# ----------------------------------------------------------------------
def _endpoint_pair(ring_bytes: int):
    down_prod, down_cons = paired_rings(ring_bytes)
    up_prod, up_cons = paired_rings(ring_bytes)
    left_conn, right_conn = mp.Pipe(duplex=True)
    left = ShmEndpoint(left_conn, send_ring=down_prod, recv_ring=up_cons)
    right = ShmEndpoint(right_conn, send_ring=up_prod, recv_ring=down_cons)
    return left, right


@pytest.mark.parametrize("seed", [5, 17])
def test_endpoint_sequences_match_pipe_endpoint_oracle(seed: int):
    rng = random.Random(seed)
    items = []
    for _ in range(120):
        item = random_item(rng)
        if rng.random() < 0.08:
            # oversize: far beyond the tiny ring's chunk threshold
            item = ("batch", [(99, Message(src="a", dst="b", kind="BLOB",
                                           payload=rng.randbytes(20_000)))])
        items.append(item)

    left, right = _endpoint_pair(ring_bytes=8192)
    received: list = []

    def consume() -> None:
        while len(received) < len(items):
            right.poll(0.01)
            received.extend(right.drain())

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    for item in items:
        left.send(item)
    consumer.join(timeout=30.0)
    assert not consumer.is_alive(), "endpoint consumer did not finish"
    left.close()
    right.close()

    # pipe oracle: identical items through the pipe transport
    oracle_left_conn, oracle_right_conn = mp.Pipe(duplex=True)
    oracle_left = PipeEndpoint(oracle_left_conn)
    oracle_right = PipeEndpoint(oracle_right_conn)
    oracle: list = []
    for item in items:
        oracle_left.send(item)
        while len(oracle) < len(items) and oracle_right.poll(0):
            oracle.extend(oracle_right.drain())
    while len(oracle) < len(items):
        oracle.extend(oracle_right.drain())
    oracle_left.close()
    oracle_right.close()

    assert len(received) == len(oracle) == len(items)
    for got, expected in zip(received, oracle):
        assert got == expected


def test_oversize_frames_chunk_through_a_tiny_ring():
    left, right = _endpoint_pair(ring_bytes=4096)
    big = ("batch", [(1, Message(src="a", dst="b", kind="BLOB", payload=b"z" * 50_000))])

    received: list = []

    def consume() -> None:
        while not received:
            right.poll(0.01)
            received.extend(right.drain())

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    left.send(big)  # 50 KB through a 4 KB ring: backpressured chunking
    consumer.join(timeout=30.0)
    assert not consumer.is_alive()
    assert left.stats["oversize_frames"] == 1
    assert received[0] == big
    left.close()
    right.close()


def test_shared_memory_ring_pair_round_trip_and_unlink():
    """A real SharedMemory ring pair delivers frames and unlinks cleanly."""
    import os

    pair = shm_ring.RingPair(ring_bytes=65536)
    down, up, close_child = pair.child_handle().attach()
    try:
        writer = pair.down_ring
        assert writer.write(b"hello ring", timeout=1.0)
        got: list = []
        down.read(lambda view: got.append(bytes(view)) or True)
        assert got == [b"hello ring"]
    finally:
        close_child()
        names = list(pair.segment_names)
        pair.close()
    for name in names:
        assert not os.path.exists(f"/dev/shm/{name}"), f"segment {name} leaked"
