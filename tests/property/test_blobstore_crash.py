"""Property: writer crashes never corrupt the durable store.

A writer killed anywhere inside ``flush_line`` — including mid-``tmp+rename``
with a truncated tmp file on disk — must leave the store in a state where

* ``validate_integrity`` (plus its always-on tmp sweep) reports a clean store,
* GC still works, and
* resume restores exactly the last *committed* recovery line, never a
  partial one.

These tests simulate the kill by injecting a fault into the Nth blob write of
a flush (hypothesis picks N), leaving behind the same debris a real SIGKILL
would: a truncated ``*.tmp`` in the shard directory.  Marked ``durable``
(tmp dirs, disk I/O); run via ``make resume-smoke``.
"""

from __future__ import annotations

import copy
import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dsim.clock import VectorTimestamp
from repro.dsim.process import ProcessCheckpoint
from repro.timemachine import BlobStore, DurableCheckpointStore

# Every test runs in both flush modes; the fixture only patches class
# methods (no per-example state), so its once-per-function scope is safe
# to use under hypothesis.
pytestmark = [pytest.mark.durable, pytest.mark.usefixtures("durable_flush_mode")]
_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)


class WriterKilled(Exception):
    """Stands in for the SIGKILL in these simulations."""


class CrashingBlobStore(BlobStore):
    """A BlobStore whose writer dies on the Nth *new* blob write.

    The crash happens after the tmp file is (partially) written but before
    ``os.replace`` — the worst window — so the debris a real kill leaves
    (a truncated ``*.tmp`` in the shard dir) is left behind here too.
    """

    def __init__(self, root, crash_after_writes: int) -> None:
        super().__init__(root)
        self._writes_left = crash_after_writes

    def put(self, data):
        name = self.address(data)
        if not self._path(name).exists():
            if self._writes_left == 0:
                shard = self._path(name).parent
                shard.mkdir(parents=True, exist_ok=True)
                with open(shard / f"{name}.{os.getpid()}.killed.tmp", "wb") as fh:
                    fh.write(data[: max(1, len(data) // 2)])  # torn write
                raise WriterKilled(name)
            self._writes_left -= 1
        return super().put(data)


def make_line(label: str, sequence: int, state: dict) -> "RecoveryLine":
    from repro.timemachine import RecoveryLine

    checkpoint = ProcessCheckpoint(
        pid="p0",
        sequence=sequence,
        time=float(sequence),
        state=copy.deepcopy(state),
        vt=VectorTimestamp.from_mapping({"p0": sequence}),
        lamport=sequence,
        rng_draws=sequence,
        sent_count=sequence,
        received_count=0,
        extra={},
    )
    return RecoveryLine(
        checkpoints={"p0": checkpoint},
        rolled_back_steps={},
        iterations=1,
        domino_effect=False,
        label=label,
    )


def make_state(generation: int, size: int) -> dict:
    return {
        "table": {f"k{i:04d}": f"gen{generation}-{i}" for i in range(size)},
        "epoch": generation,
    }


@settings(max_examples=20, **_SETTINGS)
@given(
    committed_lines=st.integers(1, 3),
    size=st.integers(60, 200),
    crash_after_writes=st.integers(0, 12),
)
def test_crash_mid_flush_preserves_last_committed_line(
    committed_lines, size, crash_after_writes
):
    root = tempfile.mkdtemp(prefix="crashstore-")
    try:
        durable = DurableCheckpointStore(
            root, run_id="victim", chunk_threshold=16, chunk_elems=4
        )
        last_committed = None
        for generation in range(1, committed_lines + 1):
            last_committed = make_state(generation, size)
            durable.flush_line(make_line(f"gen{generation}", generation, last_committed))

        # the writer dies partway through flushing the NEXT line
        durable.blobs = CrashingBlobStore(root, crash_after_writes)
        doomed = make_state(committed_lines + 1, size)
        with pytest.raises(WriterKilled):
            durable.flush_line(make_line("doomed", committed_lines + 1, doomed))

        # recovery: sweep debris, verify, GC — all on a fresh store object,
        # as a resuming process would
        recovered = BlobStore(root)
        report = recovered.validate_integrity()
        assert report.tmp_orphans >= 1  # the torn write was found and swept
        assert report.ok  # no addressed blob was corrupted
        assert recovered.validate_integrity().tmp_orphans == 0

        survivor = DurableCheckpointStore(root, run_id="victim")
        survivor.gc()

        manifest, checkpoints = DurableCheckpointStore.restore_line(root, "victim")
        assert manifest["label"] == f"gen{committed_lines}"
        assert checkpoints["p0"].state == last_committed
        assert checkpoints["p0"].state != doomed  # never the partial line
        assert list(checkpoints["p0"].state["table"]) == list(last_committed["table"])
    finally:
        shutil.rmtree(root, ignore_errors=True)


@settings(max_examples=15, **_SETTINGS)
@given(crash_after_writes=st.integers(0, 8), size=st.integers(60, 150))
def test_crash_on_very_first_flush_leaves_nothing_committed(crash_after_writes, size):
    from repro.errors import CheckpointError

    root = tempfile.mkdtemp(prefix="crashstore-")
    try:
        durable = DurableCheckpointStore(
            root, run_id="newborn", chunk_threshold=16, chunk_elems=4
        )
        durable.blobs = CrashingBlobStore(root, crash_after_writes)
        with pytest.raises(WriterKilled):
            durable.flush_line(make_line("doomed", 1, make_state(1, size)))

        assert BlobStore(root).validate_integrity().ok
        with pytest.raises(CheckpointError):
            DurableCheckpointStore.restore_line(root, "newborn")
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_facade_resume_after_crashed_flush(tmp_path):
    """End to end through the repro.api facade: a run whose *next* flush was
    killed mid-write still resumes from its last committed recovery line."""
    from repro.api import Experiment, Scenario

    store = str(tmp_path / "store")
    scenario = Scenario(
        app="kvstore",
        name="crash-facade",
        params={"replicas": 2, "clients": 1},
        until=6.0,
        auto_commit_interval=2.0,
        checkpoint_store="disk",
        store_path=store,
    )
    outcome = Experiment([scenario]).run()[0]
    assert outcome.store is not None
    assert outcome.store["lines_committed"] >= 2

    committed_manifest, committed = DurableCheckpointStore.restore_line(
        store, outcome.run_id
    )

    # simulate a writer killed mid-flush AFTER the run: torn tmp debris
    # (a separate run id — the dying writer is its own run in the store)
    durable = DurableCheckpointStore(store, run_id="killer")
    durable.blobs = CrashingBlobStore(store, 0)
    doomed_state = {"table": {f"k{i:04d}": i for i in range(300)}}
    with pytest.raises(WriterKilled):
        durable.flush_line(make_line("doomed", 99, doomed_state))

    resumed = Experiment.resume("crash-facade", store)
    assert resumed.manifest["label"] == committed_manifest["label"]
    assert sorted(resumed.states()) == sorted(committed)
    # the debris did not disturb the persisted Scroll: the replay-forward
    # pass past the committed line consumed the recorded history cleanly
    assert resumed.replays
    assert all(replay.ok for replay in resumed.replays.values())
    assert BlobStore(store).validate_integrity().ok
    # and resume is deterministic: a second resume of the same store lands
    # on exactly the same replayed-forward states
    assert Experiment.resume("crash-facade", store).states() == resumed.states()


def make_entries(first_seq: int, count: int, base_time: float):
    from repro.scroll.entry import ActionKind, ScrollEntry

    return [
        ScrollEntry(
            pid="p0",
            kind=ActionKind.RANDOM,
            time=base_time + index * 0.25,
            detail={"method": "random", "value": (first_seq + index) / 997.0},
            seq=first_seq + index,
        )
        for index in range(count)
    ]


@settings(max_examples=15, **_SETTINGS)
@given(
    flushed_windows=st.integers(1, 3),
    window=st.integers(3, 12),
    crash_after_writes=st.integers(0, 1),
)
def test_crash_mid_scroll_flush_never_leaves_torn_suffix(
    flushed_windows, window, crash_after_writes
):
    """A writer killed inside ``flush_scroll`` — before or between the
    segment/pending blob writes — must leave the previous sidecar as the
    newest readable one: rebuild returns exactly the previously flushed
    prefix, never a torn suffix, and blob integrity still validates."""
    from repro.scroll.scroll import Scroll

    root = tempfile.mkdtemp(prefix="scrollcrash-")
    try:
        durable = DurableCheckpointStore(root, run_id="victim")
        scroll = Scroll()
        for generation in range(flushed_windows):
            for entry in make_entries(
                len(scroll) + 1, window, base_time=float(generation)
            ):
                scroll.append(entry)
            durable.flush_scroll(
                scroll,
                pending={"deliveries": [], "timers": [(1.0, "p0", "tick", None)]},
                now=float(generation + 1),
            )
        flushed_position = len(scroll)

        # the next flush dies on a blob write (segment or pending snapshot)
        crashing = CrashingBlobStore(root, crash_after_writes)
        durable.blobs = crashing
        durable.scroll_persistence._blobs = crashing
        for entry in make_entries(len(scroll) + 1, window, base_time=99.0):
            scroll.append(entry)
        with pytest.raises(WriterKilled):
            durable.flush_scroll(
                scroll,
                pending={"deliveries": [], "timers": [(99.0, "p0", "boom", None)]},
                now=99.0,
            )

        # a resuming process sees only the pre-crash flushed prefix
        assert BlobStore(root).validate_integrity().ok
        rebuilt, sidecar, pending = DurableCheckpointStore.rebuild_scroll(
            root, "victim"
        )
        assert len(rebuilt) == flushed_position
        assert int(sidecar["position"]) == flushed_position
        assert [entry.seq for entry in rebuilt.entries_between(0, len(rebuilt))] == list(
            range(1, flushed_position + 1)
        )
        assert pending is not None and pending["timers"][0][2] == "tick"
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_corrupt_scroll_segment_is_detected_on_rebuild(tmp_path):
    """Flipping bytes inside a referenced segment blob must surface as
    BlobIntegrityError on rebuild, never as silently replayed garbage."""
    from repro.errors import BlobIntegrityError
    from repro.scroll.scroll import Scroll

    root = str(tmp_path / "store")
    durable = DurableCheckpointStore(root, run_id="victim")
    scroll = Scroll()
    for entry in make_entries(1, 8, base_time=0.0):
        scroll.append(entry)
    durable.flush_scroll(scroll, pending=None, now=1.0)
    sidecar = DurableCheckpointStore.load_scroll_sidecar(root, "victim")
    (segment,) = sidecar["segments"]
    blob_path = os.path.join(
        root, "blobs", segment["blob"][:2], f"{segment['blob']}.blob"
    )
    with open(blob_path, "r+b") as fh:
        fh.write(b"\x00garbage\x00")
    with pytest.raises(BlobIntegrityError):
        DurableCheckpointStore.rebuild_scroll(root, "victim")
