"""Spilled-replay equivalence: a tiered Scroll must be indistinguishable.

The spill-to-disk Scroll is a pure storage change: for ANY sequence of
appends, spills (driven by the hot window), queries and truncations
(rollback), every query contract must return results identical to a
fully in-memory Scroll fed the same entries — the PR-1 implementation
acting as oracle.  Hypothesis drives random programs over both and
compares everything, including the JSON serialization byte for byte.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.dsim.clock import VectorTimestamp
from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.replayer import Replayer
from repro.scroll.scroll import Scroll

from tests.conftest import RandomWorker, make_cluster

pids = st.sampled_from(["a", "b", "c", "d"])
kinds = st.sampled_from(list(ActionKind))
times = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def scroll_entries(draw):
    pid = draw(pids)
    kind = draw(kinds)
    time = draw(times)
    detail = {}
    if kind in (ActionKind.SEND, ActionKind.RECEIVE):
        if draw(st.booleans()):
            detail = {
                "message": {"msg_id": draw(st.integers(0, 50)), "src": pid, "dst": "a", "kind": "X"}
            }
    elif kind is ActionKind.RANDOM:
        detail = {"method": draw(st.sampled_from(["random", "randint"])), "value": draw(st.integers(0, 9))}
    elif kind is ActionKind.CLOCK_READ:
        if draw(st.booleans()):
            detail = {"value": draw(times)}
    elif kind is ActionKind.TIMER:
        detail = {"name": draw(st.sampled_from(["t0", "t1"]))}
    vt = None
    if draw(st.booleans()):
        vt = VectorTimestamp.from_mapping(draw(st.dictionaries(pids, st.integers(0, 10), max_size=4)))
    return ScrollEntry(pid=pid, kind=kind, time=time, detail=detail, vt=vt)


#: A program step: append one entry, or truncate to a fraction of the log.
steps = st.one_of(
    scroll_entries().map(lambda entry: ("append", entry)),
    st.floats(min_value=0.0, max_value=1.0).map(lambda fraction: ("truncate", fraction)),
)


def assert_equivalent(tiered: Scroll, oracle: Scroll) -> None:
    """Every query contract, compared between the two tiers and the oracle."""
    assert len(tiered) == len(oracle)
    assert list(tiered) == list(oracle)
    assert tiered.entries == oracle.entries
    assert tiered.pids() == oracle.pids()
    assert tiered.counts_by_kind() == oracle.counts_by_kind()
    assert tiered.counts_by_process() == oracle.counts_by_process()
    assert tiered.nondeterministic() == oracle.nondeterministic()
    assert tiered.last_entry() == oracle.last_entry()
    for pid in oracle.pids():
        assert tiered.entries_for(pid) == oracle.entries_for(pid)
        assert list(tiered.iter_entries_for(pid, batch=3)) == oracle.entries_for(pid)
        assert tiered.received_messages(pid) == oracle.received_messages(pid)
        assert tiered.sent_messages(pid) == oracle.sent_messages(pid)
        assert tiered.random_outcomes(pid) == oracle.random_outcomes(pid)
        assert tiered.clock_reads(pid) == oracle.clock_reads(pid)
        assert tiered.timer_firings(pid) == oracle.timer_firings(pid)
        assert tiered.last_entry(pid) == oracle.last_entry(pid)
    assert tiered.of_kind(ActionKind.SEND, ActionKind.RANDOM) == oracle.of_kind(
        ActionKind.SEND, ActionKind.RANDOM
    )
    assert tiered.violations() == oracle.violations()
    if len(oracle):
        mid = oracle[len(oracle) // 2].time
        assert tiered.between(0.0, mid) == oracle.between(0.0, mid)
        assert tiered.between(mid, 200.0) == oracle.between(mid, 200.0)
        assert tiered[len(oracle) // 2] == oracle[len(oracle) // 2]
        assert tiered[-1] == oracle[-1]
        assert tiered[1 : len(oracle) : 2] == oracle[1 : len(oracle) : 2]
    assert tiered.slice_for(["a", "c"]).to_records() == oracle.slice_for(["a", "c"]).to_records()
    # byte-identical serialization
    dumps = lambda scroll: json.dumps(scroll.to_records(), sort_keys=True, default=str)
    assert dumps(tiered) == dumps(oracle)


@settings(max_examples=60, deadline=None)
@given(program=st.lists(steps, max_size=80), hot_window=st.integers(1, 6))
def test_random_append_spill_query_truncate_equivalence(tmp_path_factory, program, hot_window):
    directory = tmp_path_factory.mktemp("spill")
    tiered = Scroll(hot_window=hot_window, storage_dir=directory)
    oracle = Scroll()
    for op, value in program:
        if op == "append":
            tiered.append(value)
            oracle.append(value)
        else:
            cut = int(len(oracle) * value)
            assert tiered.truncate(cut) == oracle_truncate(oracle, cut)
            assert len(tiered) == len(oracle)
    assert_equivalent(tiered, oracle)
    tiered.close()


def oracle_truncate(oracle: Scroll, cut: int) -> int:
    """Truncate the in-memory oracle by rebuilding (the trivially correct way)."""
    kept = list(oracle)[:cut]
    removed = len(oracle) - len(kept)
    oracle.__init__(kept)
    return removed


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 40), hot_window=st.integers(1, 5))
def test_recorded_run_replays_identically_from_spilled_log(tmp_path_factory, seed, hot_window):
    """Record a real run, re-store it tiered, and replay from both tiers."""
    factories = {"r0": RandomWorker, "r1": RandomWorker}
    cluster = make_cluster(factories, seed=seed)
    from repro.scroll.recorder import ScrollRecorder

    recorder = ScrollRecorder()
    cluster.add_hook(recorder)
    result = cluster.run(max_events=500)

    memory = recorder.scroll
    tiered = Scroll(
        memory, hot_window=hot_window, storage_dir=tmp_path_factory.mktemp("replay")
    )
    assert tiered.spill_watermark > 0 or len(memory) <= hot_window

    replay_memory = Replayer(memory, factories).replay_all()
    replay_tiered = Replayer(tiered, factories).replay_all()
    assert replay_tiered.ok == replay_memory.ok
    assert set(replay_tiered.processes) == set(replay_memory.processes)
    def send_keys(replays):
        # msg_id is a fresh global counter per replay; compare what the
        # divergence checker compares.
        return [(s["dst"], s["kind"], s.get("payload")) for s in replays]

    for pid, from_memory in replay_memory.processes.items():
        from_tiered = replay_tiered.processes[pid]
        assert from_tiered.final_state == from_memory.final_state == result.process_states[pid]
        assert send_keys(from_tiered.replayed_sends) == send_keys(from_memory.replayed_sends)
        assert from_tiered.events_replayed == from_memory.events_replayed
    tiered.close()
