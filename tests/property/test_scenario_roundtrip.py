"""Property tests for the facade's two serialization promises.

1. **Canonical round trip** — any scenario built from the declarative
   vocabulary survives ``to_json`` / ``from_json`` *byte-identically*
   (the artefact you attach to a bug report is exactly the artefact a
   re-serialization produces).
2. **Replayable artefacts** — running the *same serialized scenario*
   twice on the simulator backend produces identical
   :meth:`Outcome.projection` records: the JSON text alone pins the run.

Both properties are exercised over randomly generated scenarios and
fault schedules (seeded ``random.Random`` programs, in the style of the
other property suites in this directory).
"""

from __future__ import annotations

import random

import pytest

from repro.api import (
    Corrupt,
    Crash,
    Delay,
    Drop,
    Duplicate,
    FaultSchedule,
    Partition,
    Scenario,
    run_scenario,
)

PIDS = ["node0", "node1", "node2", "replica0", "replica1", "worker0", "branch1"]
KINDS = ["TOKEN", "REPLICATE", "TRANSFER", "COUNT", "ELECTION", None]
APPS = ["kvstore", "bank", "token_ring", "leader_election", "two_phase_commit", "wordcount"]


def random_spec(rng: random.Random):
    choice = rng.randrange(6)
    if choice == 0:
        at = round(rng.uniform(0.5, 10.0), 3)
        recover = rng.choice([None, round(at + rng.uniform(0.5, 5.0), 3)])
        return Crash(
            pid=rng.choice(PIDS),
            at=at,
            recover_at=recover,
            recover_from_checkpoint=rng.random() < 0.5,
        )
    if choice == 1:
        return Drop(
            match_kind=rng.choice(KINDS),
            match_src=rng.choice(PIDS + [None]),
            count=rng.choice([None, 1, 2, 5]),
            after=round(rng.uniform(0.0, 3.0), 3),
        )
    if choice == 2:
        return Duplicate(match_kind=rng.choice(KINDS), count=rng.choice([1, 3]))
    if choice == 3:
        return Delay(
            match_kind=rng.choice(KINDS),
            count=rng.choice([None, 1, 2]),
            extra_delay=round(rng.uniform(0.1, 5.0), 3),
        )
    if choice == 4:
        members = rng.sample(PIDS, k=4)
        start = round(rng.uniform(0.0, 5.0), 3)
        return Partition(
            groups=(tuple(members[:2]), tuple(members[2:])),
            start=start,
            end=round(start + rng.uniform(0.5, 5.0), 3),
        )
    ops = []
    for _ in range(rng.randrange(1, 4)):
        op = rng.choice(["set", "add", "append"])
        path = tuple(rng.sample(["counter", "store", "flags", "log"], k=rng.randrange(1, 3)))
        value = rng.choice([0, -5, 17, "corrupt", True])
        if op == "add":
            value = rng.randrange(-10, 10)
        ops.append((op, path, value))
    return Corrupt(
        pid=rng.choice(PIDS),
        at=round(rng.uniform(0.5, 8.0), 3),
        ops=tuple(ops),
        description=rng.choice(["bitflip", "rogue write", "state corruption"]),
    )


def random_schedule(rng: random.Random) -> FaultSchedule:
    return FaultSchedule.of(*(random_spec(rng) for _ in range(rng.randrange(0, 4))))


def random_scenario(rng: random.Random) -> Scenario:
    backend = "sim" if rng.random() < 0.8 else "mp"
    return Scenario(
        app=rng.choice(APPS),
        name=f"prop-{rng.randrange(10**9)}",
        params=rng.choice([{}, {"replicas": 2}, {"nodes": 3, "max_rounds": 4}]),
        backend=backend,
        seed=rng.randrange(1000),
        until=round(rng.uniform(10.0, 500.0), 3) if backend == "mp" or rng.random() < 0.3 else None,
        max_events=rng.choice([None, 1000, 4000]),
        faults=random_schedule(rng),
        check=rng.choice(["default", "conservation", "single-token"]),
        expect_violation=rng.random() < 0.3,
        recovering=tuple(rng.sample(PIDS, k=rng.randrange(0, 3))),
        hot_window=rng.choice([None, 16, 48]),
        investigate=rng.random() < 0.2,
        max_faults_handled=rng.randrange(1, 8),
        auto_commit_interval=rng.choice([None, 2.0, 5.5]),
        time_scale=rng.choice([0.01, 0.05]),
    )


@pytest.mark.parametrize("seed", range(20))
def test_random_scenarios_round_trip_byte_identical(seed):
    rng = random.Random(seed)
    for _ in range(15):
        scenario = random_scenario(rng)
        text = scenario.to_json()
        rebuilt = Scenario.from_json(text)
        assert rebuilt == scenario
        assert rebuilt.to_json().encode("utf-8") == text.encode("utf-8")
        # and a second hop stays fixed (serialization is a projection)
        assert Scenario.from_json(rebuilt.to_json()) == rebuilt


@pytest.mark.parametrize("seed", range(10))
def test_random_schedules_round_trip_through_dicts(seed):
    rng = random.Random(1000 + seed)
    for _ in range(20):
        schedule = random_schedule(rng)
        assert FaultSchedule.from_dicts(schedule.to_dicts()) == schedule


#: Deterministic-rerun scenarios: small, fast, covering benign faults,
#: provoked violations with rollback, multi-fault schedules, tiered
#: Scroll and the auto-commit path.
RERUN_SCENARIOS = [
    Scenario(
        app="token_ring",
        name="rerun-ring-drop",
        params={"nodes": 3, "max_rounds": 4},
        faults=FaultSchedule.of(Drop(match_kind="TOKEN")),
    ),
    Scenario(
        app="kvstore",
        name="rerun-kv-crash-partition",
        params={"replicas": 2, "clients": 1},
        seed=7,
        hot_window=48,
        faults=FaultSchedule.of(
            Partition(groups=(("replica0", "client0"), ("replica1",)), start=2.0, end=6.0),
            Crash(pid="replica1", at=3.0, recover_at=8.0),
        ),
        recovering=("replica1",),
    ),
    Scenario(
        app="wordcount",
        name="rerun-wc-duplicate-violation",
        params={"workers": 2, "chunks": 8},
        faults=FaultSchedule.of(Duplicate(match_kind="COUNTED")),
        expect_violation=True,
        hot_window=16,
        auto_commit_interval=2.0,
    ),
    Scenario(
        app="bank",
        name="rerun-bank-corruption",
        params={"branches": 3, "fixed": True},
        check="local",
        seed=13,
        faults=FaultSchedule.of(
            Corrupt(pid="branch1", at=3.5, ops=(("set", ("in_flight_debits",), -5),))
        ),
        expect_violation=True,
    ),
]


@pytest.mark.parametrize("scenario", RERUN_SCENARIOS, ids=lambda s: s.name)
def test_serialized_scenario_reruns_identically(scenario):
    """Two runs of one serialized scenario agree on the full projection."""
    text = scenario.to_json()
    first = run_scenario(Scenario.from_json(text))
    second = run_scenario(Scenario.from_json(text))
    assert first.projection() == second.projection()
    # and the run satisfied the expectations the artefact declares
    assert first.passed, first.failures
