"""Property: the delta-chunked COW store is observationally identical to the
whole-value oracle.

A ``CowPageStore`` with chunking enabled must restore every checkpoint of a
random mutate/capture program byte-identically to a ``chunk_threshold=None``
store (the pre-chunking capture path) fed the same program — including dict
insertion order, which is part of state identity under deterministic replay.
"""

from __future__ import annotations

import copy
import pickle

from hypothesis import given, settings, strategies as st

from repro.timemachine.cow import CowPageStore

# Scalar element pools: small enough to collide across steps (exercising
# chunk reuse), typed to cover the trusted-scalar comparisons.
element_values = st.one_of(
    st.integers(-50, 50),
    st.text(alphabet="abcdef", max_size=6),
    st.sampled_from([0.0, -0.0, 1.5, None, True, False]),
)

dict_keys = st.text(alphabet="klmnop", min_size=1, max_size=5)

# One mutation step against a state of the fixed shape below.
mutations = st.one_of(
    st.tuples(st.just("list_set"), st.integers(0, 10_000), element_values),
    st.tuples(st.just("list_append"), st.just(0), element_values),
    st.tuples(st.just("list_pop"), st.just(0), st.none()),
    st.tuples(st.just("dict_set"), dict_keys, element_values),
    st.tuples(st.just("dict_del"), dict_keys, st.none()),
    st.tuples(st.just("set_add"), st.just(0), element_values),
    st.tuples(st.just("set_discard"), st.just(0), element_values),
    st.tuples(st.just("scalar"), st.just(0), element_values),
)


def initial_state(n: int) -> dict:
    return {
        "items": [f"item-{i:03d}" for i in range(n)],
        "table": {f"k{i:03d}": i for i in range(n)},
        "members": {f"m{i:03d}" for i in range(n)},
        "epoch": 0,
    }


def apply_mutation(state: dict, mutation) -> None:
    op, arg, value = mutation
    if op == "list_set" and state["items"]:
        state["items"][arg % len(state["items"])] = value
    elif op == "list_append":
        state["items"].append(value)
    elif op == "list_pop" and state["items"]:
        state["items"].pop()
    elif op == "dict_set":
        state["table"][arg] = value
    elif op == "dict_del":
        state["table"].pop(arg, None)
    elif op == "set_add":
        state["members"].add(value)
    elif op == "set_discard" and state["members"]:
        state["members"].discard(next(iter(state["members"])))
    elif op == "scalar":
        state["epoch"] = value


def canonical(value):
    """Replace sets by sorted tuples so the pickle byte-compare ignores set
    iteration order (insertion-history-dependent, not part of state identity)
    while still catching 0.0/-0.0 and bool/int drift everywhere else.

    Strings are rebuilt as fresh objects: pickle memoizes repeated *objects*,
    and whether two equal strings are one interned object or two is an
    accident of how the program constructed them (the chunked store splits
    aliased elements across separately-pickled chunks), not state identity.
    """
    if isinstance(value, dict):
        return {canonical(k): canonical(v) for k, v in value.items()}
    if isinstance(value, list):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(((repr(v), canonical(v)) for v in value)))
    if isinstance(value, str):
        return str(value.encode("utf-8"), "utf-8")
    return value


def run_program(store: CowPageStore, size: int, program) -> list:
    """Apply the program, capturing after every step; return restored states."""
    state = initial_state(size)
    checkpoints = [store.capture("p", state, 0.0)]
    for step, mutation in enumerate(program, start=1):
        apply_mutation(state, mutation)
        checkpoints.append(store.capture("p", state, float(step)))
    return [store.restore(checkpoint) for checkpoint in checkpoints]


@settings(max_examples=40, deadline=None)
@given(
    size=st.integers(0, 40),
    program=st.lists(mutations, max_size=12),
)
def test_chunked_restores_match_whole_value_oracle(size, program):
    chunked = CowPageStore(page_size=128, chunk_threshold=8, chunk_elems=4)
    oracle = CowPageStore(page_size=128, chunk_threshold=None)
    got = run_program(chunked, size, program)
    expected = run_program(oracle, size, program)
    assert len(got) == len(expected)
    for restored, reference in zip(got, expected):
        assert restored == reference
        # dict insertion order is part of state identity under replay
        assert list(restored["table"]) == list(reference["table"])
        # byte-identical, not merely equal (catches 0.0/-0.0, bool/int drift)
        assert pickle.dumps(
            canonical(restored), protocol=pickle.HIGHEST_PROTOCOL
        ) == pickle.dumps(canonical(reference), protocol=pickle.HIGHEST_PROTOCOL)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(0, 40),
    program=st.lists(mutations, max_size=10),
)
def test_capture_does_not_alias_live_state(size, program):
    """Restored snapshots are frozen: later mutations never leak into them."""
    store = CowPageStore(page_size=128, chunk_threshold=8, chunk_elems=4)
    state = initial_state(size)
    store.capture("p", state, 0.0)
    frozen = copy.deepcopy(state)
    checkpoint_before = store.capture("p", state, 1.0)
    for mutation in program:
        apply_mutation(state, mutation)
    store.capture("p", state, 2.0)
    assert store.restore(checkpoint_before) == frozen


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(8, 40),
    program=st.lists(mutations, min_size=1, max_size=10),
)
def test_gc_to_newest_checkpoint_keeps_it_restorable(size, program):
    store = CowPageStore(page_size=128, chunk_threshold=8, chunk_elems=4)
    state = initial_state(size)
    store.capture("p", state, 0.0)
    last = None
    for step, mutation in enumerate(program, start=1):
        apply_mutation(state, mutation)
        last = store.capture("p", state, float(step))
    store.drop_before("p", last.sequence)
    restored = store.restore(last)
    assert restored == state
    assert list(restored["table"]) == list(state["table"])
