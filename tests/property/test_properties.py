"""Property-based tests (hypothesis) on the core data structures and invariants.

These cover the algebraic properties the rest of the system leans on:
vector-clock ordering, RNG rewind fidelity, COW checkpoint round-trips,
recovery-line consistency, Scroll serialization and state fingerprinting.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.dsim.clock import VectorClock, VectorTimestamp
from repro.dsim.process import ProcessCheckpoint
from repro.dsim.rng import DeterministicRNG, derive_seed
from repro.investigator.state import ModelState, fingerprint
from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.scroll import Scroll
from repro.timemachine.checkpoint import CheckpointStore
from repro.timemachine.cow import CowPageStore
from repro.timemachine.recovery_line import compute_recovery_line, is_consistent

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
pids = st.sampled_from(["a", "b", "c", "d"])
vt_maps = st.dictionaries(pids, st.integers(min_value=0, max_value=20), max_size=4)
json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-1000, 1000) | st.text(max_size=8),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=5), children, max_size=3),
    max_leaves=10,
)
state_dicts = st.dictionaries(st.text(min_size=1, max_size=6), json_values, max_size=5)


# ----------------------------------------------------------------------
# Vector timestamps
# ----------------------------------------------------------------------
class TestVectorTimestampProperties:
    @given(vt_maps, vt_maps)
    def test_partial_order_antisymmetry(self, a_map, b_map):
        a, b = VectorTimestamp.from_mapping(a_map), VectorTimestamp.from_mapping(b_map)
        if a < b:
            assert not (b < a)

    @given(vt_maps, vt_maps, vt_maps)
    def test_partial_order_transitivity(self, a_map, b_map, c_map):
        a = VectorTimestamp.from_mapping(a_map)
        b = VectorTimestamp.from_mapping(b_map)
        c = VectorTimestamp.from_mapping(c_map)
        if a <= b and b <= c:
            assert a <= c

    @given(vt_maps, vt_maps)
    def test_merge_is_upper_bound(self, a_map, b_map):
        a, b = VectorTimestamp.from_mapping(a_map), VectorTimestamp.from_mapping(b_map)
        merged = a.merge(b)
        assert a <= merged and b <= merged

    @given(vt_maps)
    def test_merge_idempotent(self, a_map):
        a = VectorTimestamp.from_mapping(a_map)
        assert a.merge(a) == a

    @given(st.lists(st.sampled_from(["tick", "recv"]), max_size=20))
    def test_local_clock_is_strictly_increasing(self, operations):
        clock = VectorClock("a")
        other = VectorClock("b")
        previous = clock.snapshot()
        for op in operations:
            if op == "tick":
                current = clock.tick()
            else:
                current = clock.merge(other.tick())
            assert previous < current
            previous = current


# ----------------------------------------------------------------------
# RNG rewind fidelity
# ----------------------------------------------------------------------
class TestRNGProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.lists(st.sampled_from(["random", "randint", "choice", "expovariate"]), max_size=30),
        st.integers(min_value=0, max_value=30),
    )
    def test_restore_to_any_cursor_reproduces_suffix(self, seed, methods, cut):
        def draw(rng, method):
            if method == "random":
                return rng.random()
            if method == "randint":
                return rng.randint(0, 1000)
            if method == "choice":
                return rng.choice(["x", "y", "z"])
            return rng.expovariate(2.0)

        rng = DeterministicRNG(seed)
        values = [draw(rng, method) for method in methods]
        cut = min(cut, len(methods))
        rng.restore(cut)
        replayed = [draw(rng, method) for method in methods[cut:]]
        assert replayed == values[cut:]

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=10), st.text(max_size=10))
    def test_derive_seed_deterministic_and_label_sensitive(self, seed, a, b):
        assert derive_seed(seed, a) == derive_seed(seed, a)
        if a != b:
            assert derive_seed(seed, a) != derive_seed(seed, b)

    @given(st.integers(min_value=0, max_value=2**31), st.integers(0, 50), st.integers(0, 50))
    def test_randint_respects_bounds(self, seed, low, span):
        rng = DeterministicRNG(seed)
        high = low + span
        for _ in range(20):
            value = rng.randint(low, high)
            assert low <= value <= high


# ----------------------------------------------------------------------
# Copy-on-write checkpoints
# ----------------------------------------------------------------------
class TestCowProperties:
    @settings(max_examples=50)
    @given(st.lists(state_dicts, min_size=1, max_size=6))
    def test_every_checkpoint_restores_exactly(self, states):
        store = CowPageStore(page_size=64)
        checkpoints = [store.capture("p", state, float(index)) for index, state in enumerate(states)]
        for checkpoint, state in zip(checkpoints, states):
            assert store.restore(checkpoint) == state

    @settings(max_examples=50)
    @given(st.lists(state_dicts, min_size=1, max_size=6))
    def test_stored_bytes_never_exceed_logical_bytes(self, states):
        store = CowPageStore(page_size=64)
        for index, state in enumerate(states):
            store.capture("p", state, float(index))
        assert store.stored_bytes() <= store.logical_bytes()
        assert 0.0 <= store.savings_ratio() <= 1.0


# ----------------------------------------------------------------------
# Recovery lines
# ----------------------------------------------------------------------
def _checkpoint(pid: str, sequence: int, vt: dict) -> ProcessCheckpoint:
    return ProcessCheckpoint(
        pid=pid,
        sequence=sequence,
        time=float(sequence),
        state={"seq": sequence},
        vt=VectorTimestamp.from_mapping(vt),
        lamport=0,
        rng_draws=0,
        sent_count=0,
        received_count=0,
    )


class TestRecoveryLineProperties:
    @settings(max_examples=60)
    @given(st.lists(st.tuples(pids, pids), max_size=15))
    def test_computed_line_is_always_consistent(self, sends):
        """Simulate a message history with vector clocks and per-event checkpoints.

        Whatever the communication pattern, the recovery line computed from the
        per-process checkpoint histories must satisfy the consistency condition.
        """
        processes = ["a", "b", "c", "d"]
        clocks = {pid: VectorClock(pid) for pid in processes}
        store = CheckpointStore()
        sequence = {pid: 0 for pid in processes}

        def take_checkpoint(pid):
            sequence[pid] += 1
            store.add(_checkpoint(pid, sequence[pid], clocks[pid].snapshot().as_dict()))

        for pid in processes:
            take_checkpoint(pid)
        for src, dst in sends:
            if src == dst:
                continue
            ts = clocks[src].tick()
            clocks[dst].merge(ts)
            take_checkpoint(dst)

        line = compute_recovery_line(store)
        assert is_consistent(line.checkpoints)
        assert set(line.checkpoints) == set(processes)


# ----------------------------------------------------------------------
# Scroll serialization
# ----------------------------------------------------------------------
class TestScrollProperties:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(pids, st.sampled_from(list(ActionKind)), st.floats(0, 100), state_dicts),
            max_size=15,
        )
    )
    def test_scroll_round_trip_preserves_entries(self, raw_entries):
        scroll = Scroll()
        for pid, kind, time, detail in raw_entries:
            scroll.record(pid, kind, time, detail)
        rebuilt = Scroll.from_records(scroll.to_records())
        assert len(rebuilt) == len(scroll)
        for original, copy in zip(scroll, rebuilt):
            assert original.pid == copy.pid
            assert original.kind == copy.kind
            assert original.detail == copy.detail

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(pids, st.sampled_from([ActionKind.SEND, ActionKind.RECEIVE, ActionKind.RANDOM])),
            max_size=20,
        )
    )
    def test_filters_partition_the_scroll(self, raw_entries):
        scroll = Scroll()
        for pid, kind in raw_entries:
            scroll.record(pid, kind, 0.0, {})
        by_process = sum(len(scroll.entries_for(pid)) for pid in scroll.pids())
        assert by_process == len(scroll)
        by_kind = sum(scroll.counts_by_kind().values())
        assert by_kind == len(scroll)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprintProperties:
    @settings(max_examples=80)
    @given(state_dicts)
    def test_fingerprint_is_deterministic(self, state):
        assert fingerprint(state) == fingerprint(dict(state))

    @settings(max_examples=80)
    @given(state_dicts)
    def test_model_state_round_trip(self, state):
        model_state = ModelState.from_dict(state)
        assert set(model_state.as_dict()) == set(state)
        assert model_state.fingerprint() == ModelState.from_dict(dict(state)).fingerprint()

    @settings(max_examples=80)
    @given(state_dicts, st.text(min_size=1, max_size=5), st.integers(-100, 100))
    def test_with_values_changes_fingerprint_when_value_new(self, state, key, value):
        model_state = ModelState.from_dict(state)
        updated = model_state.with_values(**{key: value})
        if model_state.get(key) != updated.get(key):
            assert model_state.fingerprint() != updated.fingerprint()
