"""Property tests for the socket frame codec and transport.

The net transport reuses the shm item codec verbatim and only adds
length-prefixed stream framing on top, so its oracle is the same one the
ring suite uses: pickle round trips of random ``flush``/``batch`` items
(generators imported from ``test_shm_ring``).  Three layers:

1. **Framing** — random item sequences encoded with ``encode_wire`` into
   one byte stream, then fed to a :class:`FrameReassembler` at arbitrary
   split boundaries (including one byte at a time): every item must come
   out equal and in order regardless of how the stream fragments — the
   wraparound-free analogue of the ring's cursor arithmetic.

2. **Oversize chunking** — frames beyond ``max_frame_bytes`` must split
   into bounded chunks on the wire and reassemble to the original item,
   with the ``oversize_frames`` counter accounting for them.

3. **Endpoint pairs** — full :class:`SocketEndpoint` pairs over a real
   ``socketpair`` against a :class:`~repro.dsim.shm_ring.PipeEndpoint`
   oracle: identical items, identical order, and the same serialization
   accounting contract (``messages_fast`` counts, zero ``pickled_bytes``
   for marshallable traffic, zero ``nudges`` by construction).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import random
import socket
import threading

import pytest

from repro.dsim.message import Message
from repro.dsim.net_transport import (  # facade-ok: the framing protocol itself is under test
    DEFAULT_MAX_FRAME_BYTES,
    FrameReassembler,
    SocketEndpoint,
    TransportError,
    encode_wire,
    new_socket_stats,
)
from repro.dsim.shm_ring import PipeEndpoint  # facade-ok: the pipe oracle

from test_shm_ring import random_item, random_message


def _oracle(item):
    return pickle.loads(pickle.dumps(item, pickle.HIGHEST_PROTOCOL))


def _random_splits(rng: random.Random, data: bytes):
    """Cut ``data`` into random fragments, occasionally one byte at a time."""
    out = []
    offset = 0
    while offset < len(data):
        if rng.random() < 0.15:
            size = 1
        else:
            size = rng.randrange(1, max(2, min(len(data) - offset, 700)))
        out.append(data[offset:offset + size])
        offset += size
    return out


# ----------------------------------------------------------------------
# 1. stream framing vs arbitrary fragmentation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [2, 13, 77, 2026])
def test_reassembler_survives_arbitrary_split_boundaries(seed: int):
    rng = random.Random(seed)
    items = [random_item(rng) for _ in range(60)]
    stats = new_socket_stats()
    stream = b"".join(encode_wire(item, stats) for item in items)

    reassembler = FrameReassembler()
    received = []
    for fragment in _random_splits(rng, stream):
        received.extend(reassembler.feed(fragment))
    assert reassembler.pending_bytes == 0, "stream fully consumed"

    assert len(received) == len(items)
    for got, item in zip(received, items):
        expected = _oracle(item)
        assert got[0] == expected[0]
        if got[0] == "flush":
            assert got[1] == expected[1]
            assert list(got[2]) == list(expected[2])
        else:
            assert list(got[1]) == list(expected[1])


def test_reassembler_single_byte_feed():
    """The degenerate fragmentation: every byte arrives alone."""
    stats = new_socket_stats()
    items = [("batch", [(1, Message(src="a", dst="b", kind="X", payload=i))])
             for i in range(5)]
    stream = b"".join(encode_wire(item, stats) for item in items)
    reassembler = FrameReassembler()
    received = []
    for i in range(len(stream)):
        received.extend(reassembler.feed(stream[i:i + 1]))
    assert received == [_oracle(item) for item in items]


def test_reassembler_rejects_zero_length_frames():
    with pytest.raises(TransportError):
        FrameReassembler().feed(b"\x00\x00\x00\x00")


# ----------------------------------------------------------------------
# 2. oversize frames chunk and reassemble
# ----------------------------------------------------------------------
@pytest.mark.parametrize("payload_bytes", [5_000, 50_000])
def test_oversize_frames_chunk_and_reassemble(payload_bytes: int):
    stats = new_socket_stats()
    item = ("batch", [(7, Message(src="a", dst="b", kind="BLOB",
                                  payload=b"z" * payload_bytes))])
    wire = encode_wire(item, stats, max_frame_bytes=2048)
    assert stats["oversize_frames"] == 1
    # every chunk on the wire is itself bounded: prefix + frame <= prefix + max
    reassembler = FrameReassembler()
    received = reassembler.feed(wire)
    assert received == [_oracle(item)]


def test_small_frames_are_not_chunked():
    stats = new_socket_stats()
    item = ("batch", [(1, Message(src="a", dst="b", kind="X", payload="hi"))])
    encode_wire(item, stats, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES)
    assert stats["oversize_frames"] == 0


@pytest.mark.parametrize("seed", [9, 31])
def test_chunked_stream_survives_fragmentation(seed: int):
    """Chunked oversize frames interleaved with small ones, fragmented."""
    rng = random.Random(seed)
    stats = new_socket_stats()
    items = []
    for _ in range(30):
        if rng.random() < 0.2:
            items.append(("batch", [(99, Message(src="a", dst="b", kind="BLOB",
                                                 payload=rng.randbytes(10_000)))]))
        else:
            items.append(random_item(rng))
    stream = b"".join(encode_wire(item, stats, max_frame_bytes=2048) for item in items)
    reassembler = FrameReassembler()
    received = []
    for fragment in _random_splits(rng, stream):
        received.extend(reassembler.feed(fragment))
    assert len(received) == len(items)
    for got, item in zip(received, items):
        expected = _oracle(item)
        if got[0] == "flush":
            assert (got[0], got[1], list(got[2])) == (expected[0], expected[1], list(expected[2]))
        else:
            assert (got[0], list(got[1])) == (expected[0], list(expected[1]))


# ----------------------------------------------------------------------
# 3. socket endpoint pairs vs the pipe oracle
# ----------------------------------------------------------------------
def _socket_endpoint_pair(max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
    left_sock, right_sock = socket.socketpair()
    left = SocketEndpoint(left_sock, max_frame_bytes=max_frame_bytes)
    right = SocketEndpoint(right_sock, max_frame_bytes=max_frame_bytes)
    return left, right


@pytest.mark.parametrize("seed", [5, 17])
def test_socket_endpoint_matches_pipe_endpoint_oracle(seed: int):
    rng = random.Random(seed)
    items = []
    for _ in range(120):
        item = random_item(rng)
        if rng.random() < 0.08:
            item = ("batch", [(99, Message(src="a", dst="b", kind="BLOB",
                                           payload=rng.randbytes(20_000)))])
        items.append(item)

    left, right = _socket_endpoint_pair(max_frame_bytes=4096)
    received: list = []

    def consume() -> None:
        while len(received) < len(items):
            right.poll(0.01)
            received.extend(right.drain())

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    for item in items:
        left.send(item)
    consumer.join(timeout=30.0)
    assert not consumer.is_alive(), "socket consumer did not finish"
    left.close()
    right.close()

    oracle_left_conn, oracle_right_conn = mp.Pipe(duplex=True)
    oracle_left = PipeEndpoint(oracle_left_conn)
    oracle_right = PipeEndpoint(oracle_right_conn)
    oracle: list = []
    for item in items:
        oracle_left.send(item)
        while len(oracle) < len(items) and oracle_right.poll(0):
            oracle.extend(oracle_right.drain())
    while len(oracle) < len(items):
        oracle.extend(oracle_right.drain())
    oracle_left.close()
    oracle_right.close()

    assert len(received) == len(oracle) == len(items)
    for got, expected in zip(received, oracle):
        assert got == expected


def test_socket_endpoint_accounting_contract():
    """Marshallable traffic never touches pickle; nudges stay zero."""
    left, right = _socket_endpoint_pair()
    items = [
        ("batch", [(i, random_message(random.Random(i))) for i in range(3)]),
        ("flush", "p0", [("handled", "on_start", 0.0)]),
    ]
    # strip pickle-fallback payloads the generator may have produced
    items[0] = ("batch", [(i, Message(src="a", dst="b", kind="X", payload=i))
                          for i in range(3)])
    for item in items:
        left.send(item)
    received = []
    while len(received) < len(items):
        right.poll(0.05)
        received.extend(right.drain())
    assert left.stats["pickled_bytes"] == 0
    assert left.stats["messages_pickled"] == 0
    assert left.stats["messages_fast"] == 3
    assert left.stats["nudges"] == 0
    assert left.stats["socket_writes"] == len(items)
    left.close()
    right.close()


def test_socket_endpoint_eof_raises_after_buffered_items():
    """PipeEndpoint semantics: deliver what arrived, raise EOF on the next drain."""
    left, right = _socket_endpoint_pair()
    item = ("flush", "p0", [("handled", "x", 1.0)])
    left.send(item)
    left.close()
    received = []
    while not received:
        right.poll(0.05)
        received.extend(right.drain())
    assert received[0][0] == "flush"
    with pytest.raises(EOFError):
        while True:
            right.poll(0.05)
            right.drain()
    right.close()
