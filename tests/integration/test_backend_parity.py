"""Backend parity: every demo app computes the same result on every substrate.

The Backend refactor promises one cluster API over multiple substrates —
the deterministic simulator, real OS processes behind a pluggable
transport (batched pipe writes, or zero-pickle shared-memory rings), and
real OS processes over sharded socket routers.  These tests run each of
the demo applications *fault-free* on
:class:`~repro.dsim.backend.SimBackend` and each real-process substrate
(:class:`~repro.dsim.backend.MPBackend` on **both** transports,
:class:`~repro.dsim.net_backend.NetBackend` on sockets) and assert the
application-level final states are identical.

"Application-level" is per app: the multiprocessing substrate services
timers with wall-clock granularity, so sub-millisecond interleavings of
*concurrent* events can differ between runs — protocol outcomes must
not.  Each app therefore declares a projection of its final states that
captures what the protocol guarantees deterministically (complete
aggregates, commit decisions, elected leaders, conserved totals), and
parity means equal projections.  For apps whose entire state is
causally ordered (wordcount, kvstore with one client, the token ring,
2PC) the projection is the full per-process state.

Selected with ``-m parity``; excluded from the fast tier because every
scenario boots real worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

import pytest

from repro.apps.bank import INITIAL_BALANCE, build_bank_cluster
from repro.apps.kvstore import build_kvstore_cluster
from repro.apps.leader_election import build_election_ring
from repro.apps.token_ring import build_token_ring
from repro.apps.two_phase_commit import build_2pc_cluster
from repro.apps.wordcount import (
    build_wordcount_burst_cluster,
    build_wordcount_cluster,
    expected_counts,
)
from repro.dsim.backend import MPBackend, MPBackendOptions, SimBackend
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.net_backend import NetBackend, NetBackendOptions

States = Dict[str, Dict[str, Any]]


def _full_state(states: States) -> States:
    return states


def _bank_projection(states: States) -> Dict[str, Any]:
    """What the bank protocol guarantees at quiescence, independent of
    per-arrival randomness: global conservation and per-branch totals."""
    return {
        "total_balance": sum(sum(s["accounts"].values()) for s in states.values()),
        "in_flight": sum(s["in_flight_debits"] for s in states.values()),
        "issued": sum(s["issued"] for s in states.values()),
        "applied": sum(s["applied"] for s in states.values()),
        "expected_supply": sum(
            len(s["accounts"]) * INITIAL_BALANCE for s in states.values()
        ),
    }


def _election_projection(states: States) -> Dict[str, Any]:
    """Leadership is deterministic; forwarding counts depend on kickoff
    interleaving (a node that hears an election first never kicks off)."""
    return {
        pid: {"leader": s["leader"], "is_leader": s["is_leader"]}
        for pid, s in states.items()
    }


@dataclass
class ParityCase:
    app: str
    build: Callable[[Cluster], None]
    project: Callable[[States], Any] = _full_state
    seed: int = 7
    until: float = 200.0
    check: Callable[[States], None] = field(default=lambda states: None)


def _wordcount_check(states: States) -> None:
    assert states["master"]["aggregated"] == 6
    assert states["master"]["counts"] == expected_counts(6, 20)


def _wordcount_burst_check(states: States) -> None:
    assert states["master"]["aggregated"] == 24
    assert states["master"]["counts"] == expected_counts(24, 12)


def _2pc_check(states: States) -> None:
    assert states["coordinator"]["completed"] == 2
    assert all(
        s["committed"] == [0, 1] and s["aborted"] == []
        for pid, s in states.items()
        if pid.startswith("participant")
    )


CASES = [
    ParityCase(
        "wordcount",
        lambda c: build_wordcount_cluster(c, workers=2, chunks=6),
        check=_wordcount_check,
    ),
    ParityCase(
        "wordcount_burst",
        lambda c: build_wordcount_burst_cluster(c, workers=3, chunks=24, words_per_chunk=12),
        check=_wordcount_burst_check,
    ),
    ParityCase(
        "kvstore",
        lambda c: build_kvstore_cluster(c, replicas=2, clients=1),
        until=400.0,
    ),
    ParityCase(
        "bank",
        lambda c: build_bank_cluster(c, branches=3, fixed=True),
        project=_bank_projection,
    ),
    ParityCase(
        "token_ring",
        lambda c: build_token_ring(c, nodes=3, max_rounds=4),
    ),
    ParityCase(
        "leader_election",
        lambda c: build_election_ring(c, nodes=4),
        project=_election_projection,
    ),
    ParityCase(
        "two_phase_commit",
        lambda c: build_2pc_cluster(c, participants=3, transactions=2),
        check=_2pc_check,
    ),
]


def _run(case: ParityCase, backend) -> States:
    cluster = Cluster(ClusterConfig(seed=case.seed), backend=backend)
    case.build(cluster)
    result = cluster.run(until=case.until)
    assert result.ok, f"{case.app}: unhandled violations on {cluster.backend.name}"
    assert result.stopped_reason == "quiescent", (
        f"{case.app} on {cluster.backend.name} stopped for "
        f"{result.stopped_reason!r}, expected quiescence"
    )
    return result.process_states


def _real_backend(substrate: str):
    """Build the real-process backend a parity substrate id names."""
    if substrate == "net":
        return NetBackend(NetBackendOptions(time_scale=0.01))
    return MPBackend(MPBackendOptions(time_scale=0.01, transport=substrate))


@pytest.mark.parity
@pytest.mark.parametrize("substrate", ["pipe", "shm", "net"])
@pytest.mark.parametrize("case", CASES, ids=lambda case: case.app)
def test_fault_free_parity(case: ParityCase, substrate: str):
    sim_states = _run(case, SimBackend())
    real_states = _run(case, _real_backend(substrate))
    assert set(sim_states) == set(real_states)
    case.check(sim_states)
    case.check(real_states)
    assert case.project(sim_states) == case.project(real_states), (
        f"{case.app}: application-level final states diverge between backends "
        f"(substrate={substrate})"
    )


@pytest.mark.parity
def test_parity_covers_all_demo_apps():
    """The parity suite must cover every demo application."""
    apps = {case.app for case in CASES}
    assert {
        "wordcount",
        "kvstore",
        "bank",
        "token_ring",
        "leader_election",
        "two_phase_commit",
    } <= apps


@pytest.mark.parity
def test_mp_batching_preserves_results():
    """Batched and unbatched transports must compute identical states."""
    def run(batched: bool) -> States:
        options = MPBackendOptions(
            time_scale=0.01,
            flush_watermark=64 if batched else 1,
            batch_deliveries=batched,
        )
        cluster = Cluster(ClusterConfig(seed=11), backend=MPBackend(options))
        build_wordcount_burst_cluster(cluster, workers=3, chunks=30, words_per_chunk=10)
        result = cluster.run(until=200.0)
        assert result.ok
        return result.process_states

    assert run(True) == run(False)


@pytest.mark.parity
def test_shm_transport_preserves_results():
    """The shm rings and the batched pipe must compute identical states."""
    def run(transport: str) -> States:
        options = MPBackendOptions(time_scale=0.01, transport=transport)
        cluster = Cluster(ClusterConfig(seed=11), backend=MPBackend(options))
        build_wordcount_burst_cluster(cluster, workers=3, chunks=30, words_per_chunk=10)
        result = cluster.run(until=200.0)
        assert result.ok
        return result.process_states

    assert run("shm") == run("pipe")


@pytest.mark.parity
def test_shm_transport_exposes_pipe_observability():
    """Both transports surface identical recording-depth counters.

    The rng-draw / clock-read counters batched into the flush payload
    (MP recording depth) must come out equal however the flushes travel.
    """
    def counters(transport: str):
        options = MPBackendOptions(time_scale=0.01, transport=transport)
        backend = MPBackend(options)
        cluster = Cluster(ClusterConfig(seed=5), backend=backend)
        build_bank_cluster(cluster, branches=3, fixed=True)
        result = cluster.run(until=120.0)
        assert result.stopped_reason == "quiescent"
        stats = backend.transport_stats
        return stats["rng_draws"], stats["clock_reads"]

    pipe_counts = counters("pipe")
    shm_counts = counters("shm")
    assert pipe_counts == shm_counts
    assert pipe_counts[0] > 0, "the bank workload draws randomness"


@pytest.mark.parity
def test_net_batching_preserves_results():
    """Batched and per-message socket writes must compute identical states.

    This is the correctness half of the ``measure_net_transport``
    benchmark claim: batching changes only the syscall count, never the
    protocol outcome.
    """
    def run(batched: bool) -> States:
        options = NetBackendOptions(
            time_scale=0.01,
            flush_watermark=64 if batched else 1,
            batch_deliveries=batched,
        )
        cluster = Cluster(ClusterConfig(seed=11), backend=NetBackend(options))
        build_wordcount_burst_cluster(cluster, workers=3, chunks=30, words_per_chunk=10)
        result = cluster.run(until=200.0)
        assert result.ok
        return result.process_states

    assert run(True) == run(False)


@pytest.mark.parity
def test_net_sharding_preserves_results():
    """Placement is a transport detail: 1 shard and 4 shards agree."""
    def run(shards: int) -> States:
        options = NetBackendOptions(time_scale=0.01, shards=shards)
        cluster = Cluster(ClusterConfig(seed=11), backend=NetBackend(options))
        build_wordcount_burst_cluster(cluster, workers=3, chunks=30, words_per_chunk=10)
        result = cluster.run(until=200.0)
        assert result.ok
        return result.process_states

    assert run(1) == run(4)
