"""Every committed suite artefact replays green-or-expected-violation.

``suites/`` is the repo's regression corpus: hand-written schedules plus
fuzzer-minimized discoveries.  Each file must keep doing its job forever
— either pass its declared expectations outright, or reproduce *exactly*
the failure signature recorded in its ``expected`` block.  The fuzz
driver writes artefacts through the same ``save_suite``/``scenario_record``
machinery this test replays them with, so a drifting signature (an
engine change that alters how a minimized schedule fails) turns red here
first.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import Scenario
from repro.api.suite import load_expected_signatures, load_suite, run_suite_records

SUITES_DIR = Path(__file__).resolve().parents[2] / "suites"
SUITE_FILES = sorted(SUITES_DIR.glob("*.json"))


def test_corpus_is_grown():
    """The committed corpus holds at least 4 fuzzer-minimized artefacts."""
    fuzzed = [path for path in SUITE_FILES if path.name.startswith("fuzz_")]
    assert len(fuzzed) >= 4
    # spanning more than one target app
    apps = {load_suite(path)[0].app for path in fuzzed}
    assert len(apps) >= 3


@pytest.mark.parametrize("suite_path", SUITE_FILES, ids=lambda p: p.stem)
def test_suite_replays_ok(suite_path: Path):
    ok, records = run_suite_records(suite_path)
    assert ok, [r["summary"] for r in records if not r["ok"]]
    expected = load_expected_signatures(suite_path)
    for record in records:
        if record["name"] in expected:
            # the artefact's whole point: that exact failure, byte for byte
            assert record["failure_signature"] == expected[record["name"]]
            assert record["reproduced_expected"]
        else:
            assert record["passed"]


def test_cli_json_matches_driver_records(capsys):
    """``python -m repro.api --json`` emits the records the fuzz driver
    consumes — same shape, same verdicts, machine-parseable."""
    from repro.api.__main__ import main

    fuzzed = [path for path in SUITE_FILES if path.name.startswith("fuzz_")]
    target = fuzzed[0]
    assert main([str(target), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    (suite,) = payload["suites"]
    assert suite["suite"] == str(target)
    direct_ok, direct_records = run_suite_records(target)
    assert direct_ok
    # wall time is the only legitimately nondeterministic field
    def strip(records):
        return [{k: v for k, v in r.items() if k != "wall_time_s"} for r in records]

    assert strip(suite["scenarios"]) == strip(direct_records)
    for record in suite["scenarios"]:
        assert {"name", "app", "ok", "failure_signature", "wall_time_s"} <= set(record)


@pytest.mark.parametrize("suite_path", SUITE_FILES, ids=lambda p: p.stem)
def test_suite_artefacts_round_trip(suite_path: Path):
    """Suite files are canonical: load -> serialize -> load is identity,
    and minimized fuzz artefacts keep small schedules (<= 3 faults)."""
    scenarios = load_suite(suite_path)
    for scenario in scenarios:
        assert Scenario.from_json(scenario.to_json()) == scenario
        if suite_path.name.startswith("fuzz_"):
            assert len(scenario.faults) <= 3
    # expected signatures, when present, are valid canonical JSON
    for signature in load_expected_signatures(suite_path).values():
        payload = json.loads(signature)
        assert json.dumps(payload, sort_keys=True, separators=(",", ":")) == signature
