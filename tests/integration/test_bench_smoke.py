"""Benchmark smoke check, part of the default (tier-1) test run.

Runs the *quick* benchmark profile in-process and feeds it through the
same ``--check`` regression guard the CLI exposes, against the committed
``BENCH_hotpaths.json``.  A guarded ratio regressing more than 20% (or
a correctness gate — spilled-replay equivalence, COW restore — breaking)
fails the default run, so perf regressions can't land silently between
full benchmark sweeps.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from run_bench import (  # noqa: E402
    DEFAULT_BASELINE,
    GUARDED_METRICS,
    check_against,
    load_baseline,
    run_profile,
)


@pytest.fixture(scope="module")
def quick_results():
    return run_profile("quick")


def test_quick_profile_within_20pct_of_committed_baseline(quick_results):
    baseline = load_baseline(DEFAULT_BASELINE)
    assert "quick" in baseline, "BENCH_hotpaths.json must carry a quick profile"
    failures = check_against(baseline["quick"], quick_results)
    assert not failures, "\n".join(failures)


def test_quick_profile_meets_absolute_acceptance_gates(quick_results):
    """Floors from the issues' acceptance criteria, with noise headroom.

    ``memory_reduction`` is deterministic byte accounting, so it gets
    the real 5x gate; ``replay_slowdown`` is a wall-clock ratio, so the
    smoke only rejects gross breakage (3x) — the strict 2x acceptance
    gate runs at full size in the slow-marked
    ``benchmarks/test_perf_hotpaths.py``.
    """
    spill = quick_results["scroll_spill_replay"]
    assert spill["replay_equivalent"]
    assert spill["replay_slowdown"] <= 3.0
    assert spill["memory_reduction"] >= 5.0
    assert quick_results["scroll_per_pid_queries"]["speedup"] >= 5.0
    assert quick_results["cow_capture_dirty_pages"]["restore_ok"]


def test_check_against_flags_regressions():
    """The guard itself must fire: regressions and broken gates are failures."""
    baseline: dict = {}
    for section, metric, direction, _zone in GUARDED_METRICS:
        baseline.setdefault(section, {})[metric] = 100.0 if direction == "higher" else 1.0
    regressed = {
        "scroll_per_pid_queries": {"speedup": 10.0},          # >20% below 100, under green zone
        "scheduler_drain_cancellations": {"speedup": 50.0},   # under green zone 100
        "cow_capture_dirty_pages": {"hash_reduction": 5.0, "restore_ok": False},
        "scroll_spill_replay": {
            "memory_reduction": 2.0,
            "replay_slowdown": 3.0,                            # above green zone and +20%
            "replay_equivalent": False,
        },
    }
    failures = check_against(baseline, regressed)
    assert len(failures) >= 6
    healthy: dict = {}
    for section, metric, direction, _zone in GUARDED_METRICS:
        healthy.setdefault(section, {})[metric] = 10_000.0 if direction == "higher" else 1.2
    # count metrics are absolute, not ratios: healthy means exactly zero
    healthy["net_transport"]["messages_pickled_batched"] = 0.0
    assert check_against(baseline, healthy) == []
