"""Integration tests: one executable scenario per figure of the paper.

Each test reproduces, end to end on the simulator, the behaviour the
corresponding figure illustrates (see DESIGN.md's per-experiment index).
The matching benchmarks in ``benchmarks/`` quantify the same mechanisms.
"""

from __future__ import annotations

import pytest

from repro.apps.bank import BankBranch, BankBranchFixed, build_bank_cluster, total_balance_invariant
from repro.apps.kvstore import KVClient, KVReplica, KVReplicaStale
from repro.apps.token_ring import TokenRingNodeBuggy, build_token_ring, single_token_invariant
from repro.core.fixd import FixD, FixDConfig
from repro.core.registry import FIXD_CLAIMED_SERVICES, ServiceKind, default_matrix
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.healer.patch import generate_patch
from repro.healer.strategies import RecoveryStrategy
from repro.investigator.explorer import SearchOrder
from repro.investigator.investigator import Investigator, InvestigatorConfig
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.replayer import Replayer
from repro.timemachine.recovery_line import compute_recovery_line, is_consistent, unsafe_line
from repro.timemachine.time_machine import TimeMachine

from tests.conftest import BoundedCounterBuggy, BoundedCounterFixed, make_cluster


class RewritingClient(KVClient):
    operations = [("put", "k", 1), ("put", "k", 2), ("get", "k", None), ("put", "k", 3)]


def kvstore_factories():
    return {
        "replica0": KVReplica,
        "replica1": KVReplicaStale,
        "client0": RewritingClient,
    }


class TestFigure1Scroll:
    """Figure 1: processes record their nondeterministic actions on the Scroll."""

    def test_scroll_captures_nondeterministic_actions_of_every_process(self):
        cluster = make_cluster(kvstore_factories(), seed=21, halt_on_violation=False)
        recorder = ScrollRecorder()
        cluster.add_hook(recorder)
        cluster.run(max_events=500)
        scroll = recorder.scroll
        assert set(scroll.pids()) == set(cluster.pids)
        counts = scroll.counts_by_kind()
        assert counts["send"] == counts["receive"]      # reliable network
        assert len(scroll.nondeterministic()) > 0
        # The Scroll is sufficient for offline replay of every process.
        report = Replayer(scroll, kvstore_factories()).replay_all()
        assert report.ok


class TestFigure2TimeMachine:
    """Figure 2: roll the whole system back to an earlier consistent point."""

    def test_rollback_returns_system_to_consistent_earlier_state(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2, halt_on_violation=False
        )
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run(max_events=30)
        counts_before = {pid: cluster.process(pid).state["count"] for pid in cluster.pids}
        result = time_machine.rollback_to_consistent_state()
        counts_after = {pid: cluster.process(pid).state["count"] for pid in cluster.pids}
        assert set(result.restored_pids) == set(cluster.pids)
        assert all(counts_after[pid] <= counts_before[pid] for pid in cluster.pids)
        assert is_consistent(result.recovery_line.checkpoints)


class TestFigure3Investigator:
    """Figure 3: exhaustively find execution paths that lead to invariant violations."""

    def test_exploration_returns_violating_trails(self):
        report = Investigator(InvestigatorConfig(max_states=3000, max_depth=40)).investigate(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy},
        )
        assert report.found_violation
        trail = report.shortest_trail()
        assert trail.length >= 1
        assert any("deliver" in action for action in trail.actions)


class TestFigure4FaultResponse:
    """Figure 4: detect, notify peers, collect checkpoints + models, investigate locally."""

    def test_fixd_pipeline_assembles_consistent_checkpoint_and_investigates(self):
        cluster = make_cluster(kvstore_factories(), seed=21)
        fixd = FixD(FixDConfig(investigator=InvestigatorConfig(max_states=2000, max_depth=50)))
        fixd.attach(cluster)
        cluster.run(max_events=1000)
        report = fixd.last_report
        assert report is not None
        assert report.fault.pid == "replica1"            # the stale backup detects the fault
        assert report.protocol_run.consistent
        assert set(report.protocol_run.global_checkpoint.pids()) == set(cluster.pids)
        assert report.investigation is not None
        assert report.investigation.found_violation


class TestFigure5Healer:
    """Figure 5: the programmer's fix is applied by dynamic update and the run resumes."""

    def test_patch_applied_in_place_and_run_completes(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2
        )
        fixd = FixD()
        fixd.attach(cluster)
        fixd.register_patch(
            generate_patch(BoundedCounterBuggy, BoundedCounterFixed, description="respect the bound")
        )
        result = cluster.run(max_events=300)
        assert result.stopped_reason == "quiescent"
        assert fixd.last_report.healed
        assert all(
            type(cluster.process(pid)).__name__ == "BoundedCounterFixed" for pid in cluster.pids
        )
        assert all(state["count"] <= 3 for state in result.process_states.values())

    def test_restart_strategy_loses_completed_work(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2
        )
        fixd = FixD(FixDConfig(heal_strategy=RecoveryStrategy.RESTART_FROM_SCRATCH))
        fixd.attach(cluster)
        fixd.register_patch(generate_patch(BoundedCounterBuggy, BoundedCounterFixed))
        cluster.run(max_events=300)
        heal = fixd.last_report.heal
        assert heal.succeeded
        assert heal.outcome.total_preserved_time == 0.0


class TestFigure6RecoveryLines:
    """Figure 6: communication-induced checkpointing yields safe recovery lines."""

    def test_safe_line_is_consistent_even_when_naive_line_is_not(self):
        cluster = Cluster(ClusterConfig(seed=5, halt_on_violation=False))
        build_token_ring(cluster, nodes=3, node_class=TokenRingNodeBuggy, max_rounds=6)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run(until=12.0, max_events=400)
        safe = compute_recovery_line(time_machine.store)
        assert is_consistent(safe.checkpoints)
        naive = unsafe_line(time_machine.store)
        # The safe line never postdates the naive line and is always consistent.
        for pid, checkpoint in safe.checkpoints.items():
            assert checkpoint.time <= naive[pid].time

    def test_speculation_abort_rolls_back_absorbed_processes(self):
        cluster = Cluster(ClusterConfig(seed=5, halt_on_violation=False))
        build_token_ring(cluster, nodes=3, max_rounds=6)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.start()
        speculation = time_machine.speculations.begin("node0", "token returns promptly")
        cluster.run(until=8.0, max_events=200)
        assert len(speculation.members) > 1              # absorption happened
        entries_before = {pid: cluster.process(pid).state["entries"] for pid in cluster.pids}
        time_machine.speculations.abort(speculation.spec_id)
        for pid in speculation.members:
            assert cluster.process(pid).state["entries"] <= entries_before[pid]


class TestFigure7ModelD:
    """Figure 7: ModelD = front-end DSL + back-end engine with custom search orders."""

    def test_every_search_order_finds_the_seeded_bug(self):
        from repro.investigator.frontend import ModelBuilder
        from repro.investigator.modeld import ModelD, ModelDConfig

        builder = ModelBuilder("race")
        builder.variables(x=0, y=0)
        builder.add_action("inc-x", lambda s: s.with_values(x=s["x"] + 1), guard=lambda s: s["x"] < 3)
        builder.add_action("inc-y", lambda s: s.with_values(y=s["y"] + 1), guard=lambda s: s["y"] < 3)
        builder.invariant("not-both-maxed", lambda s: not (s["x"] == 3 and s["y"] == 3))
        checker = ModelD.from_builder(builder, ModelDConfig(max_states=500))
        for order in (SearchOrder.BFS, SearchOrder.DFS, SearchOrder.RANDOM):
            assert not checker.check(order).ok, f"{order} missed the violation"

    def test_single_path_mode_misses_interleaving_bug(self):
        """The conventional single execution path does not reach the racy state."""
        from repro.investigator.frontend import ModelBuilder
        from repro.investigator.modeld import ModelD

        builder = ModelBuilder("race")
        builder.variables(x=0, y=0)
        builder.add_action("inc-x", lambda s: s.with_values(x=s["x"] + 1), guard=lambda s: s["x"] < 3)
        builder.add_action("inc-y", lambda s: s.with_values(y=s["y"] + 1), guard=lambda s: s["y"] < 3 and s["x"] == 3)
        builder.invariant("y-stays-zero", lambda s: s["y"] < 3)
        checker = ModelD.from_builder(builder)
        # single path follows the first enabled action each time: inc-x then inc-y...
        single = checker.run_single_path(schedule=lambda state, enabled: enabled[0] if state["x"] < 3 else None)
        exhaustive = checker.check(SearchOrder.BFS)
        assert single.ok
        assert not exhaustive.ok


class TestFigure8Matrix:
    """Figure 8: the capability matrix, with FixD's row derived from the implementation."""

    def test_fixd_row_covers_every_service_column(self):
        matrix = default_matrix()
        fixd_row = matrix.get("FixD")
        assert fixd_row.services == FIXD_CLAIMED_SERVICES
        for service in ServiceKind:
            assert fixd_row.provides(service)

    def test_no_single_technique_covers_everything(self):
        matrix = default_matrix()
        for row in matrix.techniques():
            assert row.services != FIXD_CLAIMED_SERVICES
