"""Integration: ``Experiment.resume`` continues crashed runs from disk.

The simulator is deterministic, so a run that "crashes" (stops early) and an
uninterrupted twin of the same scenario commit byte-identical recovery lines
up to the crash point.  Resume of the crashed store restores the last
committed line, replays the persisted Scroll window forward to the crash
point, and ``continue_run`` finishes the run — landing on the same
application state the uninterrupted twin reached (checked through the facade
and at the content-address level: same committed state chunks to the same
blob names, whichever store wrote them).

Marked ``durable`` (disk stores under tmp_path); run via ``make resume-smoke``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import Experiment, Scenario
from repro.errors import CheckpointError, ScenarioError
from repro.timemachine import DurableCheckpointStore

pytestmark = pytest.mark.durable


@pytest.fixture(params=["sync", "pipelined"])
def flush_mode(request):
    """Key integration tests run against both durable flush modes."""
    return request.param


def kv_scenario(
    name: str,
    store: str,
    until: float,
    flush_mode: str = "sync",
    faults=None,
) -> Scenario:
    return Scenario(
        app="kvstore",
        name=name,
        params={"replicas": 2, "clients": 1},
        seed=11,
        until=until,
        auto_commit_interval=2.0,
        checkpoint_store="disk",
        store_path=store,
        flush_mode=flush_mode,
        **({"faults": faults} if faults is not None else {}),
    )


def manifest_paths(store: str, run_id: str):
    run_dir = os.path.join(store, "runs", run_id)
    return sorted(
        os.path.join(run_dir, entry)
        for entry in os.listdir(run_dir)
        if entry.startswith("line-") and entry.endswith(".json")
    )


def _blob_names(store: str) -> set:
    blob_root = os.path.join(store, "blobs")
    names = set()
    for shard in os.listdir(blob_root):
        for entry in os.listdir(os.path.join(blob_root, shard)):
            if entry.endswith(".blob"):
                names.add(entry[: -len(".blob")])
    return names


class TestResume:
    def test_resume_restores_last_committed_line(self, store_path, flush_mode):
        outcome = Experiment(
            [kv_scenario("kv-run", store_path, until=6.0, flush_mode=flush_mode)]
        ).run()[0]
        assert outcome.store is not None
        assert outcome.store["lines_committed"] >= 2
        assert outcome.store["bytes_on_disk"] > 0
        # state chunks dedup against logical bytes; scroll segments and the
        # pending snapshot are the only other writers into the blob tree
        assert (
            outcome.store["bytes_on_disk"]
            <= outcome.store["logical_bytes"] + outcome.store["scroll_bytes"]
        )
        # every line commit flushed the Scroll window alongside the manifest
        assert outcome.store["scroll_flushes"] >= outcome.store["lines_committed"]
        # each execution gets its own uniquely-suffixed durable run id
        assert outcome.run_id.startswith("kv-run-")

        # resume accepts the scenario name and resolves it to that run
        resumed = Experiment.resume("kv-run", store_path)
        assert resumed.run_id == outcome.run_id
        assert resumed.scenario.app == "kvstore"
        assert resumed.line_index == outcome.store["lines_committed"]
        assert sorted(resumed.states()) == sorted(resumed.checkpoints)
        # the persisted Scroll was rebuilt and replayed forward cleanly:
        # the live cluster sits at the crash point, past the committed line
        assert resumed.scroll is not None and resumed.sidecar is not None
        assert resumed.replays
        assert all(replay.ok for replay in resumed.replays.values())
        # manifest schema v2 stamps the line's Scroll position; the sidecar
        # covers at least that far (the committed window is replayable)
        committed_position = resumed.manifest.get("scroll_position")
        assert isinstance(committed_position, int)
        assert int(resumed.sidecar["position"]) >= committed_position

    def test_crashed_run_resumes_to_uninterrupted_twin_line(self, tmp_path, flush_mode):
        """Parity: stop a run early ("crash"), resume, and continue to the
        twin's horizon — the continuation must land on the uninterrupted
        twin's application state."""
        full_store = str(tmp_path / "full")
        crashed_store = str(tmp_path / "crashed")
        full = Experiment(
            [kv_scenario("twin", full_store, until=6.0, flush_mode=flush_mode)]
        ).run()[0]
        crashed = Experiment(
            [kv_scenario("twin", crashed_store, until=4.0, flush_mode=flush_mode)]
        ).run()[0]

        resumed = Experiment.resume("twin", crashed_store)
        assert resumed.run_id == crashed.run_id
        crashed_lines = manifest_paths(crashed_store, crashed.run_id)
        full_lines = manifest_paths(full_store, full.run_id)
        assert len(full_lines) >= len(crashed_lines) >= 1

        # determinism + pure content addressing: the uninterrupted twin's
        # manifest at the crashed run's last line references the exact same
        # blob names for every state chunk
        with open(crashed_lines[-1]) as fh:
            crashed_manifest = json.load(fh)
        with open(full_lines[len(crashed_lines) - 1]) as fh:
            twin_manifest = json.load(fh)
        assert crashed_manifest["checkpoints"].keys() == twin_manifest["checkpoints"].keys()
        for pid in crashed_manifest["checkpoints"]:
            crashed_entry = crashed_manifest["checkpoints"][pid]
            twin_entry = twin_manifest["checkpoints"][pid]
            assert crashed_entry["state"] == twin_entry["state"]
            assert crashed_entry["vt"] == twin_entry["vt"]
            assert crashed_entry["rng_draws"] == twin_entry["rng_draws"]

        # replay-forward consumed the recorded post-line history cleanly
        assert resumed.replays
        assert all(replay.ok for replay in resumed.replays.values())

        # continuation parity: finishing the crashed run reaches the same
        # application state as the uninterrupted twin, and keeps appending
        # durable lines to the same run
        lines_before = len(manifest_paths(crashed_store, crashed.run_id))
        continued = resumed.continue_run(until=6.0)
        assert continued.state_projection() == full.state_projection()
        assert continued.consistent
        assert len(manifest_paths(crashed_store, crashed.run_id)) >= lines_before

        # a handle only continues once; resume again for another attempt
        with pytest.raises(ScenarioError):
            resumed.continue_run(until=6.0)

    def test_sync_and_pipelined_modes_commit_identical_manifests(self, tmp_path):
        """The pipelined writer is pure plumbing: the same scenario committed
        in both modes produces equal line manifests (modulo the unique run
        id) and the exact same content-addressed blob set."""
        from repro.dsim.message import reset_message_ids
        from repro.scroll.entry import reset_entry_seq

        stores = {}
        for mode in ("sync", "pipelined"):
            # message ids and scroll seqs are process-global counters; both
            # runs must start from the same values for blob-level equality
            reset_message_ids(1)
            reset_entry_seq(1)
            store = str(tmp_path / mode)
            outcome = Experiment(
                [kv_scenario("mode-twin", store, until=6.0, flush_mode=mode)]
            ).run()[0]
            stores[mode] = (store, outcome)
        sync_store, sync_outcome = stores["sync"]
        pipe_store, pipe_outcome = stores["pipelined"]
        sync_lines = manifest_paths(sync_store, sync_outcome.run_id)
        pipe_lines = manifest_paths(pipe_store, pipe_outcome.run_id)
        assert len(sync_lines) == len(pipe_lines) >= 2
        for sync_path, pipe_path in zip(sync_lines, pipe_lines):
            with open(sync_path) as fh:
                sync_manifest = json.load(fh)
            with open(pipe_path) as fh:
                pipe_manifest = json.load(fh)
            sync_manifest.pop("run_id")
            pipe_manifest.pop("run_id")
            assert sync_manifest == pipe_manifest
        assert _blob_names(sync_store) == _blob_names(pipe_store)
        # and the pipelined run re-pickled nothing on the commit path
        assert pipe_outcome.store["commit_pickled_bytes"] == 0

    def test_continuation_rearms_count_limited_message_faults(
        self, tmp_path, flush_mode
    ):
        """Regression: per-rule message-fault hit counts ride the pending
        snapshot and are restored on continuation.  Before that, the
        rebuilt engine re-armed an already-exhausted count-limited drop,
        so the continuation dropped one extra REPLICATE and its final
        state diverged from the uninterrupted twin's."""
        from repro.api.faults import Drop, FaultSchedule

        schedule = FaultSchedule.of(Drop(match_kind="REPLICATE", count=1, after=0.5))
        full_store = str(tmp_path / "full")
        crashed_store = str(tmp_path / "crashed")
        full = Experiment(
            [
                kv_scenario(
                    "fault-twin", full_store, until=8.0,
                    flush_mode=flush_mode, faults=schedule,
                )
            ]
        ).run()[0]
        assert sum(full.fault_hits.values()) == 1  # budget consumed early
        Experiment(
            [
                kv_scenario(
                    "fault-twin", crashed_store, until=4.0,
                    flush_mode=flush_mode, faults=schedule,
                )
            ]
        ).run()

        resumed = Experiment.resume("fault-twin", crashed_store)
        continued = resumed.continue_run(until=8.0)
        # the drop fired before the crash; the continuation must not re-fire
        assert sum(continued.fault_hits.values()) == 1
        assert continued.state_projection() == full.state_projection()

    def test_mp_recorded_run_resumes_on_the_simulator(self, store_path):
        """Regression: resume used to rebuild the *recorded* backend, so an
        mp-recorded run spawned an MPBackend whose restore path died with a
        SimulationError in ``clear_in_flight``.  Resume must always rebuild
        on the simulator and note the original backend on the handle."""
        outcome = Experiment([kv_scenario("mp-rec", store_path, until=4.0)]).run()[0]
        run_json = os.path.join(store_path, "runs", outcome.run_id, "run.json")
        with open(run_json) as fh:
            metadata = json.load(fh)
        # rewrite the recorded scenario as an mp run would have written it
        metadata["scenario"]["backend"] = "mp"
        metadata["scenario"]["transport"] = "shm"
        with open(run_json, "w") as fh:
            json.dump(metadata, fh)

        resumed = Experiment.resume("mp-rec", store_path)
        assert resumed.original_backend == "mp"
        assert resumed.scenario.backend == "sim"
        assert resumed.scenario.transport == "pipe"
        assert sorted(resumed.states()) == sorted(resumed.checkpoints)
        assert type(resumed.cluster.backend).__name__ == "SimBackend"

    def test_repeated_runs_dedupe_in_a_shared_store(self, store_path):
        """Two identical runs under different run_ids share one blob set."""
        first = Experiment(
            [kv_scenario("first", store_path, until=4.0)]
        ).run()[0]
        second = Experiment(
            [kv_scenario("second", store_path, until=4.0)]
        ).run()[0]
        assert second.store["bytes_on_disk"] == first.store["bytes_on_disk"] or (
            second.store["chunks_deduped"] > 0
        )
        # the second run wrote (almost) nothing new: its lines dedupe against
        # the first run's blobs
        assert second.store["chunks_written"] < first.store["chunks_written"]

    def test_repeated_executions_of_one_name_get_distinct_runs(self, store_path):
        """Re-running a same-named scenario must not overwrite the earlier
        run's manifests; resume-by-name picks the most recent execution."""
        first = Experiment([kv_scenario("again", store_path, until=4.0)]).run()[0]
        second = Experiment([kv_scenario("again", store_path, until=4.0)]).run()[0]
        assert first.run_id != second.run_id
        assert set(DurableCheckpointStore.run_ids(store_path)) == {
            first.run_id,
            second.run_id,
        }
        # both runs kept their own complete manifest sequences
        for outcome in (first, second):
            lines = manifest_paths(store_path, outcome.run_id)
            assert len(lines) == outcome.store["lines_committed"]
            metadata = DurableCheckpointStore.run_metadata(store_path, outcome.run_id)
            assert metadata["scenario"]["name"] == "again"
        resumed = Experiment.resume("again", store_path)
        assert resumed.run_id == second.run_id
        # the exact run id still targets the older execution
        assert Experiment.resume(first.run_id, store_path).run_id == first.run_id

    def test_scenario_name_with_path_separator_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(app="kvstore", name="../evil")

    def test_resume_unknown_run_raises(self, store_path):
        Experiment([kv_scenario("present", store_path, until=4.0)]).run()
        with pytest.raises(CheckpointError):
            Experiment.resume("absent", store_path)

    def test_resume_without_committed_lines_raises(self, store_path):
        # until=1.0 ends before the first auto-commit at 2.0: metadata exists,
        # but no recovery line was ever committed
        Experiment([kv_scenario("too-short", store_path, until=1.0)]).run()
        with pytest.raises(CheckpointError):
            Experiment.resume("too-short", store_path)

    def test_disk_store_without_path_is_rejected(self):
        with pytest.raises(Exception):
            Scenario(
                app="kvstore",
                name="nopath",
                checkpoint_store="disk",
            )

    def test_memory_store_reports_no_store_stats(self):
        outcome = Experiment(
            [
                Scenario(
                    app="kvstore",
                    name="mem",
                    params={"replicas": 2, "clients": 1},
                    until=3.0,
                )
            ]
        ).run()[0]
        assert outcome.store is None
