"""Integration: ``Experiment.resume`` restores crashed runs from disk.

The simulator is deterministic, so a run that "crashes" (stops early) and an
uninterrupted twin of the same scenario commit byte-identical recovery lines
up to the crash point.  Resume of the crashed store must reproduce exactly
what the uninterrupted run committed at that line — checked both through the
facade (restored process states) and at the content-address level (the same
committed state chunks to the same blob names, whichever store wrote them).

Marked ``durable`` (disk stores under tmp_path); run via ``make resume-smoke``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import Experiment, Scenario
from repro.errors import CheckpointError, ScenarioError
from repro.timemachine import DurableCheckpointStore

pytestmark = pytest.mark.durable


def kv_scenario(name: str, store: str, until: float) -> Scenario:
    return Scenario(
        app="kvstore",
        name=name,
        params={"replicas": 2, "clients": 1},
        seed=11,
        until=until,
        auto_commit_interval=2.0,
        checkpoint_store="disk",
        store_path=store,
    )


def manifest_paths(store: str, run_id: str):
    run_dir = os.path.join(store, "runs", run_id)
    return sorted(
        os.path.join(run_dir, entry)
        for entry in os.listdir(run_dir)
        if entry.startswith("line-") and entry.endswith(".json")
    )


class TestResume:
    def test_resume_restores_last_committed_line(self, store_path):
        outcome = Experiment([kv_scenario("kv-run", store_path, until=6.0)]).run()[0]
        assert outcome.store is not None
        assert outcome.store["lines_committed"] >= 2
        assert outcome.store["bytes_on_disk"] > 0
        assert outcome.store["bytes_on_disk"] <= outcome.store["logical_bytes"]
        # each execution gets its own uniquely-suffixed durable run id
        assert outcome.run_id.startswith("kv-run-")

        # resume accepts the scenario name and resolves it to that run
        resumed = Experiment.resume("kv-run", store_path)
        assert resumed.run_id == outcome.run_id
        assert resumed.scenario.app == "kvstore"
        assert resumed.line_index == outcome.store["lines_committed"]
        assert sorted(resumed.states()) == sorted(resumed.checkpoints)
        for pid, checkpoint in resumed.checkpoints.items():
            assert resumed.states()[pid] == dict(checkpoint.state)
            # the rebuilt cluster really carries the restored state
            assert dict(resumed.cluster.process(pid).state) == dict(checkpoint.state)

    def test_crashed_run_resumes_to_uninterrupted_twin_line(self, tmp_path):
        """Parity: stop a run early ("crash") and compare its resume against
        the same line of an uninterrupted twin in a separate store."""
        full_store = str(tmp_path / "full")
        crashed_store = str(tmp_path / "crashed")
        full = Experiment([kv_scenario("twin", full_store, until=6.0)]).run()[0]
        crashed = Experiment([kv_scenario("twin", crashed_store, until=4.0)]).run()[0]

        resumed = Experiment.resume("twin", crashed_store)
        assert resumed.run_id == crashed.run_id
        crashed_lines = manifest_paths(crashed_store, crashed.run_id)
        full_lines = manifest_paths(full_store, full.run_id)
        assert len(full_lines) >= len(crashed_lines) >= 1

        # determinism + pure content addressing: the uninterrupted twin's
        # manifest at the crashed run's last line references the exact same
        # blob names for every state chunk
        with open(crashed_lines[-1]) as fh:
            crashed_manifest = json.load(fh)
        with open(full_lines[len(crashed_lines) - 1]) as fh:
            twin_manifest = json.load(fh)
        assert crashed_manifest["checkpoints"].keys() == twin_manifest["checkpoints"].keys()
        for pid in crashed_manifest["checkpoints"]:
            crashed_entry = crashed_manifest["checkpoints"][pid]
            twin_entry = twin_manifest["checkpoints"][pid]
            assert crashed_entry["state"] == twin_entry["state"]
            assert crashed_entry["vt"] == twin_entry["vt"]
            assert crashed_entry["rng_draws"] == twin_entry["rng_draws"]

        # and the facade restore agrees with reading the twin's store directly
        _, twin_checkpoints = DurableCheckpointStore.restore_line(
            crashed_store, crashed.run_id
        )
        assert resumed.states() == {
            pid: dict(cp.state) for pid, cp in twin_checkpoints.items()
        }

    def test_repeated_runs_dedupe_in_a_shared_store(self, store_path):
        """Two identical runs under different run_ids share one blob set."""
        first = Experiment(
            [kv_scenario("first", store_path, until=4.0)]
        ).run()[0]
        second = Experiment(
            [kv_scenario("second", store_path, until=4.0)]
        ).run()[0]
        assert second.store["bytes_on_disk"] == first.store["bytes_on_disk"] or (
            second.store["chunks_deduped"] > 0
        )
        # the second run wrote (almost) nothing new: its lines dedupe against
        # the first run's blobs
        assert second.store["chunks_written"] < first.store["chunks_written"]

    def test_repeated_executions_of_one_name_get_distinct_runs(self, store_path):
        """Re-running a same-named scenario must not overwrite the earlier
        run's manifests; resume-by-name picks the most recent execution."""
        first = Experiment([kv_scenario("again", store_path, until=4.0)]).run()[0]
        second = Experiment([kv_scenario("again", store_path, until=4.0)]).run()[0]
        assert first.run_id != second.run_id
        assert set(DurableCheckpointStore.run_ids(store_path)) == {
            first.run_id,
            second.run_id,
        }
        # both runs kept their own complete manifest sequences
        for outcome in (first, second):
            lines = manifest_paths(store_path, outcome.run_id)
            assert len(lines) == outcome.store["lines_committed"]
            metadata = DurableCheckpointStore.run_metadata(store_path, outcome.run_id)
            assert metadata["scenario"]["name"] == "again"
        resumed = Experiment.resume("again", store_path)
        assert resumed.run_id == second.run_id
        # the exact run id still targets the older execution
        assert Experiment.resume(first.run_id, store_path).run_id == first.run_id

    def test_scenario_name_with_path_separator_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario(app="kvstore", name="../evil")

    def test_resume_unknown_run_raises(self, store_path):
        Experiment([kv_scenario("present", store_path, until=4.0)]).run()
        with pytest.raises(CheckpointError):
            Experiment.resume("absent", store_path)

    def test_resume_without_committed_lines_raises(self, store_path):
        # until=1.0 ends before the first auto-commit at 2.0: metadata exists,
        # but no recovery line was ever committed
        Experiment([kv_scenario("too-short", store_path, until=1.0)]).run()
        with pytest.raises(CheckpointError):
            Experiment.resume("too-short", store_path)

    def test_disk_store_without_path_is_rejected(self):
        with pytest.raises(Exception):
            Scenario(
                app="kvstore",
                name="nopath",
                checkpoint_store="disk",
            )

    def test_memory_store_reports_no_store_stats(self):
        outcome = Experiment(
            [
                Scenario(
                    app="kvstore",
                    name="mem",
                    params={"replicas": 2, "clients": 1},
                    until=3.0,
                )
            ]
        ).run()[0]
        assert outcome.store is None
