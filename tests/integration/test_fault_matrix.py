"""The fault-scenario matrix: six demo apps × six injected fault types.

Every scenario runs a real application cluster with FixD attached (the
Scroll recording into a *tiered* spill-to-disk log, communication-induced
checkpointing, fault detection + rollback) while the failure plan injects
one fault class, and asserts the three FixD promises:

1. **detection** — the run noticed the fault: crash/drop/duplicate
   entries land on the Scroll, delay rules register hits on the fault
   engine, and provoked invariant violations reach the detector;
2. **reporting** — an artefact a developer could act on exists: a
   :class:`BugReport` when an invariant fired, and the run-level
   :func:`incident_report` always;
3. **recovery/consistency** — the system ends in a consistent state:
   app-specific global invariants hold over the final states, crashed
   processes with scheduled recoveries are back, and FixD handled (rolled
   back) every provoked violation.

Scenario design notes: *benign* faults are ones the application protocol
tolerates (a lagging backup, a lost token, an aborted transaction), so
the global invariant must hold at the end of the run outright.
*Violating* faults provoke a real invariant violation (double-applied
transfer acknowledgement, double-counted chunk) that FixD must detect,
report and roll back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import pytest

from repro.apps.bank import INITIAL_BALANCE, build_bank_cluster, total_balance_invariant
from repro.apps.kvstore import build_kvstore_cluster, replica_consistency_invariant
from repro.apps.leader_election import at_most_one_leader_invariant, build_election_ring
from repro.apps.token_ring import (
    build_token_ring,
    mutual_exclusion_invariant,
    single_token_invariant,
)
from repro.apps.two_phase_commit import atomicity_invariant, build_2pc_cluster
from repro.apps.wordcount import build_wordcount_cluster
from repro.core.fixd import FixD, FixDConfig
from repro.core.report import incident_report
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.failure import (
    CrashFault,
    FailurePlan,
    MessageFault,
    PartitionFault,
    StateCorruptionFault,
)
from repro.scroll.entry import ActionKind
from repro.scroll.interceptor import RecordingPolicy

#: Small hot window so every scenario also exercises the tiered Scroll.
MATRIX_RECORDING = RecordingPolicy(hot_window=48)


def _states(cluster: Cluster) -> Dict[str, Dict[str, Any]]:
    return {pid: dict(cluster.process(pid).state) for pid in cluster.pids}


def wordcount_consistent(states: Dict[str, Dict[str, Any]]) -> bool:
    master = states["master"]
    return (
        master["aggregated"] <= master["dispatched"]
        and sum(master["counts"].values()) <= master["corpus_size"]
    )


def bank_locally_consistent(states: Dict[str, Dict[str, Any]]) -> bool:
    return all(
        all(balance >= 0 for balance in state["accounts"].values())
        and state["in_flight_debits"] >= 0
        for state in states.values()
    )


def bank_crash_consistent(states: Dict[str, Dict[str, Any]]) -> bool:
    """Conservation under crashes: nothing invented, every gap in flight.

    A branch that crashes after a peer credited its transfer never sees
    the acknowledgement, so exact ``total + in_flight == expected``
    overcounts that transfer forever.  The defensible claim is one-sided:
    balances never exceed the initial supply, and whatever is missing
    from balances is fully covered by tracked in-flight debits.
    """
    expected = sum(len(state["accounts"]) * INITIAL_BALANCE for state in states.values())
    total = sum(sum(state["accounts"].values()) for state in states.values())
    in_flight = sum(state["in_flight_debits"] for state in states.values())
    return bank_locally_consistent(states) and total <= expected <= total + in_flight


def token_ring_consistent(states: Dict[str, Dict[str, Any]]) -> bool:
    return single_token_invariant(states) and mutual_exclusion_invariant(states)


@dataclass
class Scenario:
    """One cell of the app × fault matrix."""

    app: str
    fault: str  # "crash" | "drop" | "duplicate" | "delay" | "partition" | "state_corruption"
    build: Callable[[Cluster], None]
    plan: FailurePlan
    consistent: Callable[[Dict[str, Dict[str, Any]]], bool]
    expect_violation: bool = False
    seed: int = 7
    max_events: int = 4000
    #: pids that crash with a scheduled recovery (asserted back alive)
    recovering: tuple = ()
    id: str = field(init=False)

    def __post_init__(self) -> None:
        self.id = f"{self.app}-{self.fault}"


def _crash(pid: str, at: float, recover_at: Optional[float]) -> FailurePlan:
    return FailurePlan(crashes=[CrashFault(pid, at=at, recover_at=recover_at)])


def _message(kind: str, match_kind: str, count: int = 1, extra_delay: float = 0.0) -> FailurePlan:
    return FailurePlan(
        message_faults=[
            MessageFault(kind, match_kind=match_kind, count=count, extra_delay=extra_delay)
        ]
    )


def _partition(groups, start: float, end: float) -> FailurePlan:
    return FailurePlan(partitions=[PartitionFault(groups=groups, start=start, end=end)])


def _corrupt(pid: str, at: float, mutator, description: str) -> FailurePlan:
    return FailurePlan(
        corruptions=[StateCorruptionFault(pid=pid, at=at, mutator=mutator, description=description)]
    )


SCENARIOS = [
    # ------------------------------------------------------------------
    # primary/backup key-value store: backups may lag but never lead
    # ------------------------------------------------------------------
    Scenario(
        "kvstore", "crash",
        lambda c: build_kvstore_cluster(c, replicas=2, clients=1),
        _crash("replica1", at=3.0, recover_at=8.0),
        replica_consistency_invariant, recovering=("replica1",),
    ),
    Scenario(
        "kvstore", "drop",
        lambda c: build_kvstore_cluster(c, replicas=2, clients=1),
        _message("drop", "REPLICATE"),
        replica_consistency_invariant,
    ),
    Scenario(
        "kvstore", "duplicate",
        lambda c: build_kvstore_cluster(c, replicas=2, clients=1),
        _message("duplicate", "REPLICATE"),
        replica_consistency_invariant,
    ),
    Scenario(
        "kvstore", "delay",
        lambda c: build_kvstore_cluster(c, replicas=2, clients=1),
        _message("delay", "REPLICATE", count=2, extra_delay=3.0),
        replica_consistency_invariant,
    ),
    Scenario(
        # The backup is cut off mid-replication: it lags but never leads.
        "kvstore", "partition",
        lambda c: build_kvstore_cluster(c, replicas=2, clients=1),
        _partition([["replica0", "client0"], ["replica1"]], start=2.0, end=6.0),
        replica_consistency_invariant,
    ),
    Scenario(
        # A rogue key appears on the backup without a version entry —
        # the versions-track-store invariant fires and FixD rolls back.
        "kvstore", "state_corruption",
        lambda c: build_kvstore_cluster(c, replicas=2, clients=1),
        _corrupt(
            "replica1", 4.0,
            lambda state: state["store"].__setitem__("rogue", "corrupt"),
            "rogue unversioned key on backup",
        ),
        replica_consistency_invariant, expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # bank (fixed branches): money is conserved across transfers
    # ------------------------------------------------------------------
    Scenario(
        "bank", "crash",
        lambda c: build_bank_cluster(c, branches=3, fixed=True),
        _crash("branch2", at=3.0, recover_at=7.0),
        bank_crash_consistent, recovering=("branch2",),
    ),
    Scenario(
        "bank", "drop",
        lambda c: build_bank_cluster(c, branches=3, fixed=True),
        _message("drop", "TRANSFER"),
        total_balance_invariant,
    ),
    Scenario(
        # A duplicated acknowledgement double-settles one transfer:
        # in-flight accounting goes negative — a provoked violation FixD
        # must detect and roll back.
        "bank", "duplicate",
        lambda c: build_bank_cluster(c, branches=3, fixed=True),
        _message("duplicate", "TRANSFER_ACK"),
        bank_locally_consistent, expect_violation=True,
    ),
    Scenario(
        "bank", "delay",
        lambda c: build_bank_cluster(c, branches=3, fixed=True),
        _message("delay", "TRANSFER", count=2, extra_delay=4.0),
        total_balance_invariant,
    ),
    Scenario(
        # Transfers into the isolated branch drop: money stays tracked
        # as in-flight debits, so the one-sided conservation bound holds.
        "bank", "partition",
        lambda c: build_bank_cluster(c, branches=3, fixed=True),
        _partition([["branch0", "branch1"], ["branch2"]], start=2.0, end=6.0),
        bank_crash_consistent,
    ),
    Scenario(
        # In-flight accounting is silently driven negative — a provoked
        # violation of in-flight-non-negative that FixD must roll back.
        "bank", "state_corruption",
        lambda c: build_bank_cluster(c, branches=3, fixed=True),
        _corrupt(
            "branch1", 3.5,
            lambda state: state.__setitem__("in_flight_debits", -5),
            "in-flight debit counter corrupted negative",
        ),
        bank_locally_consistent, expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # token ring: at most one token / one process in its critical section
    # ------------------------------------------------------------------
    Scenario(
        "token_ring", "crash",
        lambda c: build_token_ring(c, nodes=3, max_rounds=4),
        _crash("node1", at=2.5, recover_at=6.0),
        token_ring_consistent, recovering=("node1",),
    ),
    Scenario(
        "token_ring", "drop",
        lambda c: build_token_ring(c, nodes=3, max_rounds=4),
        _message("drop", "TOKEN"),
        token_ring_consistent,
    ),
    Scenario(
        "token_ring", "duplicate",
        lambda c: build_token_ring(c, nodes=3, max_rounds=4),
        _message("duplicate", "TOKEN"),
        token_ring_consistent,
    ),
    Scenario(
        "token_ring", "delay",
        lambda c: build_token_ring(c, nodes=3, max_rounds=4),
        _message("delay", "TOKEN", count=1, extra_delay=2.5),
        token_ring_consistent,
    ),
    Scenario(
        # The token is lost crossing the cut — a lost token is benign for
        # safety: at most one holder / one critical section still holds.
        "token_ring", "partition",
        lambda c: build_token_ring(c, nodes=3, max_rounds=4),
        _partition([["node0"], ["node1", "node2"]], start=0.5, end=3.0),
        token_ring_consistent,
    ),
    Scenario(
        # A node is forced into its critical section without the token —
        # the cs-requires-token invariant fires immediately.
        "token_ring", "state_corruption",
        lambda c: build_token_ring(c, nodes=3, max_rounds=4),
        _corrupt(
            # 3.5: node1 has already passed the token on (at 3.0) — being
            # in the critical section without it is a real violation.
            "node1", 3.5,
            lambda state: state.__setitem__("in_critical_section", True),
            "critical section entered without token",
        ),
        token_ring_consistent, expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # leader election: never two leaders, crashed nodes come back
    # ------------------------------------------------------------------
    Scenario(
        "leader_election", "crash",
        lambda c: build_election_ring(c, nodes=4),
        _crash("elector3", at=1.5, recover_at=20.0),
        at_most_one_leader_invariant, recovering=("elector3",),
    ),
    Scenario(
        "leader_election", "drop",
        lambda c: build_election_ring(c, nodes=4),
        _message("drop", "ELECTION"),
        at_most_one_leader_invariant,
    ),
    Scenario(
        "leader_election", "duplicate",
        lambda c: build_election_ring(c, nodes=4),
        _message("duplicate", "ELECTION"),
        at_most_one_leader_invariant,
    ),
    Scenario(
        "leader_election", "delay",
        lambda c: build_election_ring(c, nodes=4),
        _message("delay", "ELECTED", count=1, extra_delay=4.0),
        at_most_one_leader_invariant,
    ),
    Scenario(
        # Election traffic across the cut drops; whatever happens, two
        # nodes never both believe they are the leader.
        "leader_election", "partition",
        lambda c: build_election_ring(c, nodes=4),
        _partition([["elector0", "elector1"], ["elector2", "elector3"]], start=1.5, end=7.0),
        at_most_one_leader_invariant,
    ),
    Scenario(
        # A node is corrupted into believing it leads without recording a
        # leader id — self-leader-consistent fires.
        "leader_election", "state_corruption",
        lambda c: build_election_ring(c, nodes=4),
        _corrupt(
            "elector1", 2.5,
            lambda state: state.__setitem__("is_leader", True),
            "node believes it leads without an election",
        ),
        at_most_one_leader_invariant, expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # two-phase commit: no transaction both committed and aborted
    # ------------------------------------------------------------------
    Scenario(
        "two_phase_commit", "crash",
        lambda c: build_2pc_cluster(c, participants=3, transactions=2),
        _crash("participant1", at=1.5, recover_at=10.0),
        atomicity_invariant, recovering=("participant1",),
    ),
    Scenario(
        "two_phase_commit", "drop",
        lambda c: build_2pc_cluster(c, participants=3, transactions=2),
        _message("drop", "VOTE_YES"),
        atomicity_invariant,
    ),
    Scenario(
        "two_phase_commit", "duplicate",
        lambda c: build_2pc_cluster(c, participants=3, transactions=2),
        _message("duplicate", "VOTE_YES"),
        atomicity_invariant,
    ),
    Scenario(
        "two_phase_commit", "delay",
        lambda c: build_2pc_cluster(c, participants=3, transactions=2),
        _message("delay", "COMMIT", count=1, extra_delay=5.0),
        atomicity_invariant,
    ),
    Scenario(
        # One participant is unreachable during prepare: its vote never
        # arrives, the coordinator times out and aborts — atomically.
        "two_phase_commit", "partition",
        lambda c: build_2pc_cluster(c, participants=3, transactions=2),
        _partition(
            [["coordinator", "participant0", "participant1"], ["participant2"]],
            start=1.0, end=4.0,
        ),
        atomicity_invariant, max_events=6000,
    ),
    Scenario(
        # A participant's decision log is corrupted to hold a transaction
        # both committed and aborted — not-both fires, FixD rolls back.
        "two_phase_commit", "state_corruption",
        lambda c: build_2pc_cluster(c, participants=3, transactions=2),
        _corrupt(
            "participant1", 3.0,
            lambda state: (state["committed"].append(99), state["aborted"].append(99)),
            "transaction recorded both committed and aborted",
        ),
        atomicity_invariant, expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # wordcount: aggregation never outruns dispatch or the corpus
    # ------------------------------------------------------------------
    Scenario(
        "wordcount", "crash",
        lambda c: build_wordcount_cluster(c, workers=2, chunks=8),
        _crash("worker0", at=4.0, recover_at=8.0),
        wordcount_consistent, recovering=("worker0",),
    ),
    Scenario(
        "wordcount", "drop",
        lambda c: build_wordcount_cluster(c, workers=2, chunks=8),
        _message("drop", "COUNT"),
        wordcount_consistent,
    ),
    Scenario(
        # A duplicated result message double-counts one chunk, pushing
        # the master past its corpus bound — provoked violation.
        "wordcount", "duplicate",
        lambda c: build_wordcount_cluster(c, workers=2, chunks=8),
        _message("duplicate", "COUNTED"),
        wordcount_consistent, expect_violation=True,
    ),
    Scenario(
        "wordcount", "delay",
        lambda c: build_wordcount_cluster(c, workers=2, chunks=8),
        _message("delay", "COUNT", count=2, extra_delay=3.0),
        wordcount_consistent,
    ),
    Scenario(
        # Chunks routed to the cut-off worker drop: aggregation simply
        # never outruns dispatch.
        "wordcount", "partition",
        lambda c: build_wordcount_cluster(c, workers=2, chunks=8),
        _partition([["master", "worker0"], ["worker1"]], start=2.0, end=6.0),
        wordcount_consistent,
    ),
    Scenario(
        # The master's aggregation counter jumps ahead of dispatch — the
        # aggregated-bounded-by-dispatched invariant fires.
        "wordcount", "state_corruption",
        lambda c: build_wordcount_cluster(c, workers=2, chunks=8),
        _corrupt(
            "master", 4.0,
            lambda state: state.__setitem__("aggregated", state["aggregated"] + 5),
            "aggregation counter corrupted past dispatch",
        ),
        wordcount_consistent, expect_violation=True,
    ),
]


def run_scenario(scenario: Scenario):
    cluster = Cluster(ClusterConfig(seed=scenario.seed, halt_on_violation=False))
    scenario.build(cluster)
    fixd = FixD(
        FixDConfig(
            investigate_on_fault=False,
            recording_policy=MATRIX_RECORDING,
            max_faults_handled=4,
        )
    )
    fixd.attach(cluster)
    cluster.set_failure_plan(scenario.plan)
    result = cluster.run(max_events=scenario.max_events)
    return cluster, fixd, result


@pytest.mark.matrix
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.id)
def test_fault_scenario(scenario: Scenario):
    cluster, fixd, result = run_scenario(scenario)
    scroll = fixd.scroll

    # --- detection -----------------------------------------------------
    if scenario.fault == "crash":
        assert scroll.of_kind(ActionKind.CRASH), "crash not recorded on the Scroll"
        assert scroll.of_kind(ActionKind.RECOVER), "recovery not recorded on the Scroll"
    elif scenario.fault in ("drop", "partition"):
        assert scroll.of_kind(ActionKind.DROP), "drop not recorded on the Scroll"
    elif scenario.fault == "duplicate":
        assert scroll.of_kind(ActionKind.DUPLICATE), "duplicate not recorded on the Scroll"
    elif scenario.fault == "state_corruption":
        assert scroll.of_kind(ActionKind.CORRUPTION), "corruption not recorded on the Scroll"
    if scenario.fault == "partition":
        assert result.network_stats["dropped"] >= 1, "partition never dropped a message"
    if scenario.fault in ("drop", "duplicate", "delay"):
        hits = cluster.fault_engine.hit_counts()
        assert sum(hits.values()) >= 1, "injected message-fault rule never fired"
    if scenario.expect_violation:
        assert fixd.detector.fault_count >= 1, "provoked violation was not detected"

    # --- reporting -----------------------------------------------------
    report_text = incident_report(scenario.plan, scroll, result)
    assert "Injected faults" in report_text and "Observed on the Scroll" in report_text
    observed_keyword = {
        "crash": "crash", "drop": "drop", "duplicate": "duplicate",
        "delay": "crash", "partition": "drop", "state_corruption": "corruption",
    }[scenario.fault]
    assert f"{observed_keyword}:" in report_text
    if scenario.expect_violation:
        assert fixd.reports, "no FixD bug report for the provoked violation"
        bug_text = fixd.reports[0].bug_report.to_text()
        assert fixd.reports[0].fault.invariant in bug_text
        assert fixd.reports[0].bug_report.scroll_tail

    # --- recovery / consistency ---------------------------------------
    states = _states(cluster)
    assert scenario.consistent(states), f"final state inconsistent: {states}"
    for pid in scenario.recovering:
        assert not cluster.process(pid).crashed, f"{pid} did not recover"
    if scenario.expect_violation:
        assert all(report.handled for report in fixd.reports)
        assert all(
            report.rollback is not None and report.rollback.restored_pids
            for report in fixd.reports
        )
        assert result.ok, "violations should have been handled by FixD"

    # every scenario exercises the tiered Scroll in integration
    assert scroll.is_tiered
    if len(scroll) > MATRIX_RECORDING.hot_window:
        assert scroll.spill_watermark > 0


@pytest.mark.matrix
def test_matrix_covers_all_apps_and_faults():
    """The matrix itself must stay complete: 6 apps × 6 fault types."""
    apps = {scenario.app for scenario in SCENARIOS}
    faults = {scenario.fault for scenario in SCENARIOS}
    assert len(apps) == 6
    assert faults == {"crash", "drop", "duplicate", "delay", "partition", "state_corruption"}
    cells = {(scenario.app, scenario.fault) for scenario in SCENARIOS}
    assert cells == {(app, fault) for app in apps for fault in faults}, (
        "every app must face every fault kind"
    )
    assert len(SCENARIOS) >= 36
    assert len({scenario.id for scenario in SCENARIOS}) == len(SCENARIOS)
