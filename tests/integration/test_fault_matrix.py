"""The fault-scenario matrix, declared through the ``repro.api`` facade.

Every cell of the 6-app x 6-fault matrix is now a declarative
:class:`repro.api.Scenario` — the app addressed by registry name, the
injected trouble a serializable :class:`FaultSchedule`, the promises
(`expect_violation`, `recovering`, the named consistency check) part of
the scenario itself — and the assertions read off the structured
:class:`Outcome` instead of poking clusters and FixD internals.  The
three FixD promises per cell are unchanged:

1. **detection** — ``outcome.observed`` has evidence for every injected
   fault kind (Scroll entries, fault-engine rule hits, network drops)
   and provoked violations reached the detector;
2. **reporting** — the run-level incident report exists, plus a
   :class:`BugReport` summary per provoked violation;
3. **recovery/consistency** — the app's declared global check holds
   over the final states, crashed processes with scheduled recoveries
   are back, and FixD rolled back every provoked violation.

Beyond the single-fault matrix this file adds what the facade makes
cheap: **multi-fault schedules** (crash during partition, corruption
under a duplicate storm), a serialized **suite file** loaded with
``load_suite`` and asserted end to end, and an **mp-backend slice**
(crash / drop / delay on real OS processes — marked ``slow`` so
``-m matrix`` runs it but the default tier doesn't boot workers).
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.api import (
    Corrupt,
    Crash,
    Delay,
    Drop,
    Duplicate,
    Experiment,
    FaultSchedule,
    Partition,
    Scenario,
    load_suite,
    run_scenario,
)

#: Small hot window so every scenario also exercises the tiered Scroll.
MATRIX_HOT_WINDOW = 48

#: Repo-level suite artefact: the multi-fault schedules as shareable JSON.
SUITE_PATH = Path(__file__).resolve().parents[2] / "suites" / "crash_during_partition.json"

APP_PARAMS = {
    "kvstore": {"replicas": 2, "clients": 1},
    "bank": {"branches": 3, "fixed": True},
    "token_ring": {"nodes": 3, "max_rounds": 4},
    "leader_election": {"nodes": 4},
    "two_phase_commit": {"participants": 3, "transactions": 2},
    "wordcount": {"workers": 2, "chunks": 8},
}


def cell(app: str, fault: str, schedule: FaultSchedule, **overrides) -> Scenario:
    """One matrix cell as a Scenario named ``<app>-<fault>``."""
    settings = dict(
        app=app,
        name=f"{app}-{fault}",
        params=APP_PARAMS[app],
        seed=7,
        max_events=4000,
        faults=schedule,
        hot_window=MATRIX_HOT_WINDOW,
    )
    settings.update(overrides)
    return Scenario(**settings)


SCENARIOS = [
    # ------------------------------------------------------------------
    # primary/backup key-value store: backups may lag but never lead
    # ------------------------------------------------------------------
    cell(
        "kvstore", "crash",
        FaultSchedule.of(Crash("replica1", at=3.0, recover_at=8.0)),
        recovering=("replica1",),
    ),
    cell("kvstore", "drop", FaultSchedule.of(Drop(match_kind="REPLICATE"))),
    cell("kvstore", "duplicate", FaultSchedule.of(Duplicate(match_kind="REPLICATE"))),
    cell(
        "kvstore", "delay",
        FaultSchedule.of(Delay(match_kind="REPLICATE", count=2, extra_delay=3.0)),
    ),
    cell(
        # The backup is cut off mid-replication: it lags but never leads.
        "kvstore", "partition",
        FaultSchedule.of(
            Partition(groups=(("replica0", "client0"), ("replica1",)), start=2.0, end=6.0)
        ),
    ),
    cell(
        # A rogue key appears on the backup without a version entry —
        # the versions-track-store invariant fires and FixD rolls back.
        "kvstore", "state_corruption",
        FaultSchedule.of(
            Corrupt(
                pid="replica1", at=4.0,
                ops=(("set", ("store", "rogue"), "corrupt"),),
                description="rogue unversioned key on backup",
            )
        ),
        expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # bank (fixed branches): money is conserved across transfers
    # ------------------------------------------------------------------
    cell(
        "bank", "crash",
        FaultSchedule.of(Crash("branch2", at=3.0, recover_at=7.0)),
        recovering=("branch2",), check="conservation-bound",
    ),
    cell(
        "bank", "drop",
        FaultSchedule.of(Drop(match_kind="TRANSFER")),
        check="conservation",
    ),
    cell(
        # A duplicated acknowledgement double-settles one transfer:
        # in-flight accounting goes negative — a provoked violation FixD
        # must detect and roll back.
        "bank", "duplicate",
        FaultSchedule.of(Duplicate(match_kind="TRANSFER_ACK")),
        check="local", expect_violation=True,
    ),
    cell(
        "bank", "delay",
        FaultSchedule.of(Delay(match_kind="TRANSFER", count=2, extra_delay=4.0)),
        check="conservation",
    ),
    cell(
        # Transfers into the isolated branch drop: money stays tracked
        # as in-flight debits, so the one-sided conservation bound holds.
        "bank", "partition",
        FaultSchedule.of(
            Partition(groups=(("branch0", "branch1"), ("branch2",)), start=2.0, end=6.0)
        ),
        check="conservation-bound",
    ),
    cell(
        # In-flight accounting is silently driven negative — a provoked
        # violation of in-flight-non-negative that FixD must roll back.
        "bank", "state_corruption",
        FaultSchedule.of(
            Corrupt(
                pid="branch1", at=3.5,
                ops=(("set", ("in_flight_debits",), -5),),
                description="in-flight debit counter corrupted negative",
            )
        ),
        check="local", expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # token ring: at most one token / one process in its critical section
    # ------------------------------------------------------------------
    cell(
        "token_ring", "crash",
        FaultSchedule.of(Crash("node1", at=2.5, recover_at=6.0)),
        recovering=("node1",),
    ),
    cell("token_ring", "drop", FaultSchedule.of(Drop(match_kind="TOKEN"))),
    cell("token_ring", "duplicate", FaultSchedule.of(Duplicate(match_kind="TOKEN"))),
    cell(
        "token_ring", "delay",
        FaultSchedule.of(Delay(match_kind="TOKEN", count=1, extra_delay=2.5)),
    ),
    cell(
        # The token is lost crossing the cut — a lost token is benign for
        # safety: at most one holder / one critical section still holds.
        "token_ring", "partition",
        FaultSchedule.of(
            Partition(groups=(("node0",), ("node1", "node2")), start=0.5, end=3.0)
        ),
    ),
    cell(
        # A node is forced into its critical section without the token —
        # the cs-requires-token invariant fires immediately.  (3.5: node1
        # has already passed the token on at 3.0.)
        "token_ring", "state_corruption",
        FaultSchedule.of(
            Corrupt(
                pid="node1", at=3.5,
                ops=(("set", ("in_critical_section",), True),),
                description="critical section entered without token",
            )
        ),
        expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # leader election: never two leaders, crashed nodes come back
    # ------------------------------------------------------------------
    cell(
        "leader_election", "crash",
        FaultSchedule.of(Crash("elector3", at=1.5, recover_at=20.0)),
        recovering=("elector3",),
    ),
    cell("leader_election", "drop", FaultSchedule.of(Drop(match_kind="ELECTION"))),
    cell("leader_election", "duplicate", FaultSchedule.of(Duplicate(match_kind="ELECTION"))),
    cell(
        "leader_election", "delay",
        FaultSchedule.of(Delay(match_kind="ELECTED", count=1, extra_delay=4.0)),
    ),
    cell(
        # Election traffic across the cut drops; whatever happens, two
        # nodes never both believe they are the leader.
        "leader_election", "partition",
        FaultSchedule.of(
            Partition(
                groups=(("elector0", "elector1"), ("elector2", "elector3")),
                start=1.5, end=7.0,
            )
        ),
    ),
    cell(
        # A node is corrupted into believing it leads without recording a
        # leader id — self-leader-consistent fires.
        "leader_election", "state_corruption",
        FaultSchedule.of(
            Corrupt(
                pid="elector1", at=2.5,
                ops=(("set", ("is_leader",), True),),
                description="node believes it leads without an election",
            )
        ),
        expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # two-phase commit: no transaction both committed and aborted
    # ------------------------------------------------------------------
    cell(
        "two_phase_commit", "crash",
        FaultSchedule.of(Crash("participant1", at=1.5, recover_at=10.0)),
        recovering=("participant1",),
    ),
    cell("two_phase_commit", "drop", FaultSchedule.of(Drop(match_kind="VOTE_YES"))),
    cell("two_phase_commit", "duplicate", FaultSchedule.of(Duplicate(match_kind="VOTE_YES"))),
    cell(
        "two_phase_commit", "delay",
        FaultSchedule.of(Delay(match_kind="COMMIT", count=1, extra_delay=5.0)),
    ),
    cell(
        # One participant is unreachable during prepare: its vote never
        # arrives, the coordinator times out and aborts — atomically.
        "two_phase_commit", "partition",
        FaultSchedule.of(
            Partition(
                groups=(("coordinator", "participant0", "participant1"), ("participant2",)),
                start=1.0, end=4.0,
            )
        ),
        max_events=6000,
    ),
    cell(
        # A participant's decision log is corrupted to hold a transaction
        # both committed and aborted — not-both fires, FixD rolls back.
        "two_phase_commit", "state_corruption",
        FaultSchedule.of(
            Corrupt(
                pid="participant1", at=3.0,
                ops=(
                    ("append", ("committed",), 99),
                    ("append", ("aborted",), 99),
                ),
                description="transaction recorded both committed and aborted",
            )
        ),
        expect_violation=True,
    ),
    # ------------------------------------------------------------------
    # wordcount: aggregation never outruns dispatch or the corpus
    # ------------------------------------------------------------------
    cell(
        "wordcount", "crash",
        FaultSchedule.of(Crash("worker0", at=4.0, recover_at=8.0)),
        recovering=("worker0",),
    ),
    cell("wordcount", "drop", FaultSchedule.of(Drop(match_kind="COUNT"))),
    cell(
        # A duplicated result message double-counts one chunk, pushing
        # the master past its corpus bound — provoked violation.
        "wordcount", "duplicate",
        FaultSchedule.of(Duplicate(match_kind="COUNTED")),
        expect_violation=True,
    ),
    cell(
        "wordcount", "delay",
        FaultSchedule.of(Delay(match_kind="COUNT", count=2, extra_delay=3.0)),
    ),
    cell(
        # Chunks routed to the cut-off worker drop: aggregation simply
        # never outruns dispatch.
        "wordcount", "partition",
        FaultSchedule.of(
            Partition(groups=(("master", "worker0"), ("worker1",)), start=2.0, end=6.0)
        ),
    ),
    cell(
        # The master's aggregation counter jumps ahead of dispatch — the
        # aggregated-bounded-by-dispatched invariant fires.
        "wordcount", "state_corruption",
        FaultSchedule.of(
            Corrupt(
                pid="master", at=4.0,
                ops=(("add", ("aggregated",), 5),),
                description="aggregation counter corrupted past dispatch",
            )
        ),
        expect_violation=True,
    ),
]

#: Multi-fault composition: several fault kinds in one schedule, the
#: ROADMAP "matrix multi-fault schedules" item.
MULTI_FAULT_SCENARIOS = [
    Scenario(
        # The backup crashes *while* the network is partitioned and must
        # still be back (and consistent) after both faults clear.
        app="kvstore", name="kvstore-crash-during-partition",
        params=APP_PARAMS["kvstore"], seed=7, hot_window=MATRIX_HOT_WINDOW,
        faults=FaultSchedule.of(
            Partition(groups=(("replica0", "client0"), ("replica1",)), start=2.0, end=6.0),
            Crash(pid="replica1", at=3.0, recover_at=8.0),
        ),
        recovering=("replica1",),
    ),
    Scenario(
        # Corruption lands while duplicated acknowledgements storm the
        # branches: FixD must still detect and roll back the violation.
        app="bank", name="bank-corruption-under-duplicate-storm",
        params=APP_PARAMS["bank"], seed=7, hot_window=MATRIX_HOT_WINDOW, check="local",
        faults=FaultSchedule.of(
            Duplicate(match_kind="TRANSFER_ACK", count=2),
            Corrupt(
                pid="branch1", at=3.5,
                ops=(("set", ("in_flight_debits",), -5),),
                description="in-flight debit counter corrupted negative",
            ),
        ),
        expect_violation=True,
    ),
    Scenario(
        # A crashed worker plus a duplicated result: recovery and the
        # double-count rollback must compose in one run.
        app="wordcount", name="wordcount-crash+duplicate",
        params=APP_PARAMS["wordcount"], seed=7, hot_window=MATRIX_HOT_WINDOW,
        faults=FaultSchedule.of(
            Crash(pid="worker0", at=4.0, recover_at=8.0),
            Duplicate(match_kind="COUNTED", count=None),
        ),
        recovering=("worker0",), expect_violation=True,
    ),
    Scenario(
        # A delayed token and then a dropped one: liveness suffers,
        # safety (single token, single critical section) must not.  The
        # delay rule comes first — once the drop kills the token the
        # ring goes quiet, so a trailing delay rule would never fire.
        app="token_ring", name="token_ring-delay+drop",
        params=APP_PARAMS["token_ring"], seed=7, hot_window=MATRIX_HOT_WINDOW,
        faults=FaultSchedule.of(
            Delay(match_kind="TOKEN", count=1, extra_delay=2.5),
            Drop(match_kind="TOKEN", count=1),
        ),
    ),
]

#: The mp slice: real OS processes, wall-clock quiescence — crash, drop
#: and delay injection must be detected on the real substrate too.
MP_SCENARIOS = [
    Scenario(
        app="wordcount", name="wordcount-crash-mp", backend="mp",
        params=APP_PARAMS["wordcount"], seed=7, until=200.0, time_scale=0.01,
        faults=FaultSchedule.of(Crash(pid="worker0", at=4.0, recover_at=8.0)),
        recovering=("worker0",),
    ),
    Scenario(
        app="kvstore", name="kvstore-drop-mp", backend="mp",
        params=APP_PARAMS["kvstore"], seed=7, until=400.0, time_scale=0.01,
        faults=FaultSchedule.of(Drop(match_kind="REPLICATE")),
    ),
    Scenario(
        app="token_ring", name="token_ring-delay-mp", backend="mp",
        params=APP_PARAMS["token_ring"], seed=7, until=200.0, time_scale=0.01,
        faults=FaultSchedule.of(Delay(match_kind="TOKEN", count=1, extra_delay=2.5)),
    ),
]


def assert_promises(scenario: Scenario, outcome) -> None:
    """The three FixD promises, read off the structured outcome."""
    # detection + expectation evaluation (consistency, recovery, handling)
    assert outcome.passed, f"{scenario.name}: {outcome.failures}"
    assert outcome.detected, f"{scenario.name}: missing evidence {outcome.observed}"
    # reporting: the run-level incident artefact pairs plan and observation
    assert "Injected faults" in outcome.incident
    assert "Observed on the Scroll" in outcome.incident
    if scenario.expect_violation:
        assert outcome.reports >= 1
        assert outcome.rolled_back
        for report in outcome.bug_reports:
            assert report["handled"] and report["scroll_tail_entries"] > 0
    for pid in scenario.recovering:
        assert outcome.recovered[pid], f"{pid} did not recover"


@pytest.mark.matrix
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_fault_scenario(scenario: Scenario):
    outcome = run_scenario(scenario)
    assert_promises(scenario, outcome)
    # every scenario exercises the tiered Scroll in integration
    storage = outcome.scroll["storage"]
    assert storage["tiered"]
    if outcome.scroll["entries"] > MATRIX_HOT_WINDOW:
        assert storage["spilled_entries"] + storage["collected_entries"] > 0


@pytest.mark.matrix
@pytest.mark.parametrize("scenario", MULTI_FAULT_SCENARIOS, ids=lambda s: s.name)
def test_multi_fault_scenario(scenario: Scenario):
    outcome = run_scenario(scenario)
    assert_promises(scenario, outcome)
    assert len(scenario.faults.kinds) >= 2
    for kind in scenario.faults.kinds:
        assert outcome.observed[kind], f"no evidence for injected {kind}"


@pytest.mark.matrix
def test_multi_fault_suite_detect_report_recover():
    """The crash-during-partition schedule travels as a JSON suite artefact."""
    scenarios = load_suite(SUITE_PATH)
    by_name = {scenario.name: scenario for scenario in scenarios}
    assert "kvstore-crash-during-partition" in by_name
    crash_partition = by_name["kvstore-crash-during-partition"]
    assert set(crash_partition.faults.kinds) == {"partition", "crash"}

    experiment = Experiment(scenarios)
    outcomes = experiment.run()
    assert experiment.passed, experiment.describe()
    for scenario, outcome in zip(scenarios, outcomes):
        assert_promises(scenario, outcome)

    # the artefact round-trips canonically: load -> serialize -> load
    for scenario in scenarios:
        assert Scenario.from_json(scenario.to_json()) == scenario


@pytest.mark.matrix
@pytest.mark.slow
@pytest.mark.parametrize("transport", ["pipe", "shm"])
@pytest.mark.parametrize("scenario", MP_SCENARIOS, ids=lambda s: s.name)
def test_mp_fault_slice(scenario: Scenario, transport: str):
    """Fault injection detected on the real-process substrate via the facade.

    The crash/drop/delay slice must pass unchanged on both mp
    transports — the shared-memory rings preserve the fault-plan
    mapping, FIFO order and the flush protocol the assertions rely on.
    """
    if transport != "pipe":
        scenario = replace(
            scenario, name=f"{scenario.name}-{transport}", transport=transport
        )
    outcome = run_scenario(scenario)
    assert outcome.passed, f"{scenario.name}: {outcome.failures}"
    assert outcome.detected, f"{scenario.name}: missing evidence {outcome.observed}"
    assert "Observed on the Scroll" in outcome.incident
    # MP recording depth: both transports surface the same counters
    assert outcome.transport is not None
    assert "rng_draws" in outcome.transport and "clock_reads" in outcome.transport


@pytest.mark.matrix
@pytest.mark.slow
@pytest.mark.parametrize("scenario", MP_SCENARIOS, ids=lambda s: s.name.replace("-mp", "-net"))
def test_net_fault_slice(scenario: Scenario):
    """The same crash/drop/delay slice on the socket substrate.

    The net backend reuses the mp worker protocol over sharded socket
    routers; the fault-plan mapping (control frames, router-side
    drop/delay, dead letters) must be observationally identical.
    """
    scenario = replace(
        scenario, name=scenario.name.replace("-mp", "-net"), backend="net"
    )
    outcome = run_scenario(scenario)
    assert outcome.passed, f"{scenario.name}: {outcome.failures}"
    assert outcome.detected, f"{scenario.name}: missing evidence {outcome.observed}"
    assert "Observed on the Scroll" in outcome.incident
    assert outcome.transport is not None
    # the socket substrate keeps the delivery hot path pickle-free
    assert outcome.transport["messages_pickled"] == 0
    assert outcome.transport["socket_writes"] > 0


@pytest.mark.matrix
def test_matrix_covers_all_apps_and_faults():
    """The matrix itself must stay complete: 6 apps x 6 fault types."""
    cells = {(s.app, s.name.split("-", 1)[1]) for s in SCENARIOS}
    apps = {app for app, _fault in cells}
    faults = {fault for _app, fault in cells}
    assert len(apps) == 6
    assert faults == {"crash", "drop", "duplicate", "delay", "partition", "state_corruption"}
    assert cells == {(app, fault) for app in apps for fault in faults}, (
        "every app must face every fault kind"
    )
    assert len(SCENARIOS) >= 36
    names = [s.name for s in SCENARIOS + MULTI_FAULT_SCENARIOS + MP_SCENARIOS]
    assert len(set(names)) == len(names)
    # the multi-fault extension and mp slice stay present
    assert all(len(s.faults.kinds) >= 2 for s in MULTI_FAULT_SCENARIOS)
    assert {s.faults.kinds[0] for s in MP_SCENARIOS} >= {"crash", "drop", "delay"}
