"""End-to-end integration tests across components, plus the multiprocessing backend."""

from __future__ import annotations

import sys

import pytest

from repro.apps.bank import BankBranch, BankBranchFixed, build_bank_cluster, total_balance_invariant
from repro.apps.kvstore import KVClient, KVReplica
from repro.apps.wordcount import build_wordcount_cluster, expected_counts
from repro.core.fixd import FixD, FixDConfig
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.backend import MPBackend, MPBackendOptions
from repro.dsim.failure import CrashFault, FailurePlan, MessageFault
from repro.dsim.process import Process, handler
from repro.healer.healer import Healer
from repro.healer.patch import generate_patch
from repro.healer.strategies import RecoveryStrategy
from repro.investigator.investigator import Investigator, InvestigatorConfig
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.replayer import Replayer
from repro.scroll.storage import load_scroll, save_scroll
from repro.timemachine.time_machine import TimeMachine

from tests.conftest import PingPong, make_cluster


class TestRecordReplayRoundTrip:
    def test_record_save_load_replay_kvstore(self, tmp_path):
        factories = {
            "replica0": KVReplica,
            "replica1": KVReplica,
            "client0": KVClient,
        }
        cluster = make_cluster(factories, seed=17)
        recorder = ScrollRecorder()
        cluster.add_hook(recorder)
        result = cluster.run(max_events=2000)
        assert result.ok

        path = tmp_path / "kv.scroll.jsonl"
        save_scroll(recorder.scroll, path)
        loaded = load_scroll(path)
        report = Replayer(loaded, factories).replay_all()
        assert report.ok
        for pid, replay in report.processes.items():
            assert replay.final_state == result.process_states[pid]


class TestCrashRecoveryWithCheckpoints:
    def test_crashed_worker_resumes_from_checkpoint(self):
        cluster = Cluster(ClusterConfig(seed=11, halt_on_violation=False))
        build_wordcount_cluster(cluster, workers=2, chunks=8)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.set_failure_plan(
            FailurePlan(crashes=[CrashFault("worker0", at=5.0, recover_at=9.0)])
        )
        result = cluster.run(max_events=4000)
        # Recovery lets the master finish aggregating every chunk it dispatched.
        master = cluster.process("master").state
        assert master["aggregated"] <= master["dispatched"]
        assert time_machine.store.total_checkpoints() > 0


class TestGlobalInvariantHealing:
    def test_bank_healed_by_fixd_global_investigation(self):
        """Detect the bank's conservation bug via the Investigator, then heal it."""
        cluster = Cluster(ClusterConfig(seed=13, halt_on_violation=False))
        build_bank_cluster(cluster, branches=3)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run(until=6.0, max_events=200)

        investigation = Investigator(InvestigatorConfig(max_states=1500, max_depth=30)).investigate(
            {pid: BankBranch for pid in cluster.pids},
            checkpoint=time_machine.latest_recovery_line().as_global_checkpoint(),
            global_invariants={"conservation": total_balance_invariant},
        )
        assert investigation.found_violation

        healer = Healer(cluster, time_machine)
        report = healer.heal(
            generate_patch(BankBranch, BankBranchFixed, description="no fee"),
            strategy=RecoveryStrategy.RESUME_FROM_CHECKPOINT,
        )
        assert report.succeeded
        cluster.resume()
        cluster.run(max_events=500)
        assert all(isinstance(cluster.process(pid), BankBranchFixed) for pid in cluster.pids)


class TestRepeatedFaultHandling:
    def test_fixd_handles_multiple_faults_up_to_budget(self):
        class FlakyCounter(Process):
            def on_start(self):
                self.state["count"] = 0
                if self.pid == "f0":
                    self.send("f1", "TICK", None)

            @handler("TICK")
            def on_tick(self, msg):
                self.state["count"] += 1
                self.send(msg.src, "TICK", None)

            def check_invariants(self):
                from repro.errors import InvariantViolation

                if self.state["count"] in (2, 4):
                    raise InvariantViolation("count-not-even-checkpoint", self.pid)

        cluster = make_cluster({"f0": FlakyCounter, "f1": FlakyCounter}, seed=2)
        fixd = FixD(FixDConfig(max_faults_handled=3, investigate_on_fault=False))
        fixd.attach(cluster)
        cluster.run(max_events=60)
        assert 1 <= len(fixd.reports) <= 3


def _overcount(state):
    """Module-level corruption mutator (must pickle across the pipe)."""
    state["count"] = state.get("count", 0) + 100


class _StopExploder(PingPong):
    """PingPong whose shutdown callback fails (worker error-path coverage)."""

    def on_stop(self):
        raise ValueError("boom in on_stop")


@pytest.mark.slow
class TestMultiprocessingBackend:
    """The same process classes running on real OS processes via the unified API."""

    @staticmethod
    def _mp_cluster(seed=1) -> Cluster:
        cluster = Cluster(ClusterConfig(seed=seed), backend=MPBackend())
        cluster.add_process("p0", PingPong)
        cluster.add_process("p1", PingPong)
        return cluster

    def test_ping_pong_on_real_processes(self):
        cluster = self._mp_cluster()
        result = cluster.run(until=60)
        assert result.stopped_reason == "quiescent"
        assert set(result.process_states) == {"p0", "p1"}
        counts = sorted(state["count"] for state in result.process_states.values())
        assert counts == [4, 5]
        assert cluster.backend.transport_stats["messages_routed"] >= 9

    def test_mp_backend_matches_simulator_results(self):
        simulated = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1).run()
        real = self._mp_cluster().run(until=60)
        assert real.process_states == simulated.process_states

    def test_duplicate_pid_and_instance_rejected(self):
        cluster = Cluster(backend=MPBackend())
        cluster.add_process("p0", PingPong)
        with pytest.raises(Exception):
            cluster.add_process("p0", PingPong)
        # instances register fine on the frontend, but the mp backend
        # needs factories to build workers — the run rejects them.
        cluster.add_process("p1", PingPong())
        with pytest.raises(Exception):
            cluster.run(until=1.0)

    def test_cooperative_crash(self):
        cluster = self._mp_cluster()
        cluster.set_failure_plan(FailurePlan(crashes=[CrashFault("p1", at=1e-6)]))
        result = cluster.run(until=60)
        assert result.process_states["p1"]["count"] <= 1

    def test_message_fault_injection_on_real_processes(self):
        cluster = self._mp_cluster()
        cluster.set_failure_plan(
            FailurePlan(message_faults=[MessageFault("drop", match_kind="PING", count=1)])
        )
        result = cluster.run(until=60)
        # the very first PING is dropped: the conversation never starts
        counts = sorted(state["count"] for state in result.process_states.values())
        assert counts == [0, 0]
        assert sum(cluster.fault_engine.hit_counts().values()) == 1

    def test_hook_surface_on_real_processes(self):
        """Generic runtime hooks observe the run on the mp substrate too."""
        from repro.dsim.runtime import StatsHook

        cluster = self._mp_cluster()
        stats = StatsHook()
        cluster.add_hook(stats)
        result = cluster.run(until=60)
        totals = stats.totals()
        assert totals["sent"] == 9 and totals["received"] == 9
        assert totals["handlers"] >= 9  # after_handler fires per delivery + on_start
        # msg_ids are cluster-unique across workers (per-worker id ranges)
        from repro.scroll.recorder import ScrollRecorder
        from repro.scroll.entry import ActionKind

        cluster2 = self._mp_cluster()
        recorder = ScrollRecorder()
        cluster2.add_hook(recorder)
        cluster2.run(until=60)
        sent_ids = [
            e.detail["message"]["msg_id"] for e in recorder.scroll.of_kind(ActionKind.SEND)
        ]
        assert len(sent_ids) == len(set(sent_ids)), "msg_ids collide across workers"

    def test_state_corruption_fires_even_after_app_quiesces(self):
        from repro.dsim.failure import StateCorruptionFault

        cluster = Cluster(
            ClusterConfig(seed=1, halt_on_violation=False),
            backend=MPBackend(MPBackendOptions(time_scale=0.01)),
        )
        cluster.add_process("p0", PingPong)
        cluster.add_process("p1", PingPong)
        # the ping-pong exchange is over almost immediately; the
        # corruption is scheduled long after — quiescence must wait
        cluster.set_failure_plan(
            FailurePlan(
                corruptions=[
                    StateCorruptionFault(
                        "p1", at=20.0, mutator=_overcount, description="count overflow"
                    )
                ]
            )
        )
        result = cluster.run(until=200)
        assert any(t.action == "corrupt" for t in result.trace), "corruption never fired"
        assert result.violations, "corrupted invariant was not detected"

    def test_frontend_process_state_access_fails_loudly(self):
        cluster = self._mp_cluster()
        prototype = cluster.process("p0")  # fine before the run starts
        assert prototype.state == {}
        result = cluster.run(until=60)
        assert result.process_states["p0"]["count"] > 0
        with pytest.raises(Exception, match="RunResult.process_states"):
            cluster.process("p0")
        with pytest.raises(Exception, match="RunResult.process_states"):
            cluster.processes()

    def test_on_stop_exception_preserves_final_state(self):
        cluster = Cluster(ClusterConfig(seed=1), backend=MPBackend())
        cluster.add_process("s0", _StopExploder)
        cluster.add_process("s1", _StopExploder)
        result = cluster.run(until=60)
        assert result.stopped_reason.startswith("worker-error:")
        # final states survive the on_stop failure instead of vanishing
        assert set(result.process_states) == {"s0", "s1"}
        assert any("on_stop" in t.detail for t in result.trace if t.action == "error")

    def test_fault_plan_unknown_pid_rejected_before_spawn(self):
        from repro.errors import UnknownProcessError

        cluster = self._mp_cluster()
        cluster.set_failure_plan(FailurePlan(crashes=[CrashFault("ghost", at=0.5)]))
        with pytest.raises(UnknownProcessError):
            cluster.run(until=1.0)
        # the failed validation must not poison the cluster
        cluster.set_failure_plan(FailurePlan())
        assert cluster.run(until=60).stopped_reason == "quiescent"

    def test_legacy_mp_cluster_shim_still_works(self):
        from repro.dsim.mp_backend import MPCluster  # legacy-shim-ok

        legacy = MPCluster(seed=1)
        legacy.add_process("p0", PingPong)
        legacy.add_process("p1", PingPong)
        result = legacy.run(duration=30.0)
        counts = sorted(state["count"] for state in result.final_states.values())
        assert counts == [4, 5]
        assert result.total_messages >= 9
