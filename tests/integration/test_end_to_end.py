"""End-to-end integration tests across components, plus the multiprocessing backend."""

from __future__ import annotations

import sys

import pytest

from repro.apps.bank import BankBranch, BankBranchFixed, build_bank_cluster, total_balance_invariant
from repro.apps.kvstore import KVClient, KVReplica
from repro.apps.wordcount import build_wordcount_cluster, expected_counts
from repro.core.fixd import FixD, FixDConfig
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.failure import CrashFault, FailurePlan
from repro.dsim.mp_backend import MPCluster
from repro.dsim.process import Process, handler
from repro.healer.healer import Healer
from repro.healer.patch import generate_patch
from repro.healer.strategies import RecoveryStrategy
from repro.investigator.investigator import Investigator, InvestigatorConfig
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.replayer import Replayer
from repro.scroll.storage import load_scroll, save_scroll
from repro.timemachine.time_machine import TimeMachine

from tests.conftest import PingPong, make_cluster


class TestRecordReplayRoundTrip:
    def test_record_save_load_replay_kvstore(self, tmp_path):
        factories = {
            "replica0": KVReplica,
            "replica1": KVReplica,
            "client0": KVClient,
        }
        cluster = make_cluster(factories, seed=17)
        recorder = ScrollRecorder()
        cluster.add_hook(recorder)
        result = cluster.run(max_events=2000)
        assert result.ok

        path = tmp_path / "kv.scroll.jsonl"
        save_scroll(recorder.scroll, path)
        loaded = load_scroll(path)
        report = Replayer(loaded, factories).replay_all()
        assert report.ok
        for pid, replay in report.processes.items():
            assert replay.final_state == result.process_states[pid]


class TestCrashRecoveryWithCheckpoints:
    def test_crashed_worker_resumes_from_checkpoint(self):
        cluster = Cluster(ClusterConfig(seed=11, halt_on_violation=False))
        build_wordcount_cluster(cluster, workers=2, chunks=8)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.set_failure_plan(
            FailurePlan(crashes=[CrashFault("worker0", at=5.0, recover_at=9.0)])
        )
        result = cluster.run(max_events=4000)
        # Recovery lets the master finish aggregating every chunk it dispatched.
        master = cluster.process("master").state
        assert master["aggregated"] <= master["dispatched"]
        assert time_machine.store.total_checkpoints() > 0


class TestGlobalInvariantHealing:
    def test_bank_healed_by_fixd_global_investigation(self):
        """Detect the bank's conservation bug via the Investigator, then heal it."""
        cluster = Cluster(ClusterConfig(seed=13, halt_on_violation=False))
        build_bank_cluster(cluster, branches=3)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run(until=6.0, max_events=200)

        investigation = Investigator(InvestigatorConfig(max_states=1500, max_depth=30)).investigate(
            {pid: BankBranch for pid in cluster.pids},
            checkpoint=time_machine.latest_recovery_line().as_global_checkpoint(),
            global_invariants={"conservation": total_balance_invariant},
        )
        assert investigation.found_violation

        healer = Healer(cluster, time_machine)
        report = healer.heal(
            generate_patch(BankBranch, BankBranchFixed, description="no fee"),
            strategy=RecoveryStrategy.RESUME_FROM_CHECKPOINT,
        )
        assert report.succeeded
        cluster.resume()
        cluster.run(max_events=500)
        assert all(isinstance(cluster.process(pid), BankBranchFixed) for pid in cluster.pids)


class TestRepeatedFaultHandling:
    def test_fixd_handles_multiple_faults_up_to_budget(self):
        class FlakyCounter(Process):
            def on_start(self):
                self.state["count"] = 0
                if self.pid == "f0":
                    self.send("f1", "TICK", None)

            @handler("TICK")
            def on_tick(self, msg):
                self.state["count"] += 1
                self.send(msg.src, "TICK", None)

            def check_invariants(self):
                from repro.errors import InvariantViolation

                if self.state["count"] in (2, 4):
                    raise InvariantViolation("count-not-even-checkpoint", self.pid)

        cluster = make_cluster({"f0": FlakyCounter, "f1": FlakyCounter}, seed=2)
        fixd = FixD(FixDConfig(max_faults_handled=3, investigate_on_fault=False))
        fixd.attach(cluster)
        cluster.run(max_events=60)
        assert 1 <= len(fixd.reports) <= 3


@pytest.mark.slow
class TestMultiprocessingBackend:
    """The same process classes running on real OS processes."""

    def test_ping_pong_on_real_processes(self):
        cluster = MPCluster(seed=1)
        cluster.add_process("p0", PingPong)
        cluster.add_process("p1", PingPong)
        result = cluster.run(duration=1.5)
        assert set(result.final_states) == {"p0", "p1"}
        counts = sorted(state["count"] for state in result.final_states.values())
        assert counts == [4, 5]
        assert result.total_messages >= 9

    def test_mp_backend_matches_simulator_results(self):
        simulated = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1).run()
        mp_cluster = MPCluster(seed=1)
        mp_cluster.add_process("p0", PingPong)
        mp_cluster.add_process("p1", PingPong)
        real = mp_cluster.run(duration=1.5)
        assert real.final_states == simulated.process_states

    def test_duplicate_pid_and_instance_rejected(self):
        cluster = MPCluster()
        cluster.add_process("p0", PingPong)
        with pytest.raises(Exception):
            cluster.add_process("p0", PingPong)
        with pytest.raises(TypeError):
            cluster.add_process("p1", PingPong())

    def test_cooperative_crash(self):
        cluster = MPCluster(seed=1)
        cluster.add_process("p0", PingPong)
        cluster.add_process("p1", PingPong)
        cluster.crash_after("p1", 0.0)
        result = cluster.run(duration=1.0)
        assert result.final_states["p1"]["count"] <= 1
