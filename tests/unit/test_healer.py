"""Unit tests for the Healer: state mappings, patches, safety, DSU and strategies."""

from __future__ import annotations

import pytest

from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.process import Process, handler, invariant
from repro.errors import PatchApplicationError, UpdateSafetyError
from repro.healer.dsu import DynamicUpdater
from repro.healer.healer import Healer
from repro.healer.patch import Patch, diff_classes, generate_patch
from repro.healer.safety import UpdateSafetyChecker
from repro.healer.state_mapping import (
    StateMapping,
    add_defaults_mapping,
    identity_mapping,
    rename_keys_mapping,
)
from repro.healer.strategies import (
    RecoveryStrategy,
    restart_from_scratch,
    resume_from_checkpoint,
)
from repro.timemachine.time_machine import TimeMachine

from tests.conftest import BoundedCounterBuggy, BoundedCounterFixed, make_cluster


# ----------------------------------------------------------------------
# State mappings
# ----------------------------------------------------------------------
class TestStateMapping:
    def test_identity_keeps_state(self):
        mapping = identity_mapping(required_keys=("count",))
        assert mapping.apply({"count": 3}) == {"count": 3}

    def test_missing_required_key_rejected(self):
        mapping = identity_mapping(required_keys=("missing",))
        with pytest.raises(UpdateSafetyError):
            mapping.apply({"count": 3})

    def test_add_defaults(self):
        mapping = add_defaults_mapping({"retries": 0})
        assert mapping.apply({"count": 3}) == {"count": 3, "retries": 0}
        # existing values are not overwritten
        assert mapping.apply({"retries": 7})["retries"] == 7

    def test_rename_keys(self):
        mapping = rename_keys_mapping({"old": "new"})
        assert mapping.apply({"old": 1}) == {"new": 1}

    def test_type_check_enforced(self):
        mapping = StateMapping(transform=lambda s: s, key_types={"count": int})
        assert mapping.apply({"count": 1}) == {"count": 1}
        with pytest.raises(UpdateSafetyError):
            mapping.apply({"count": "oops"})

    def test_equivalence_predicate_enforced(self):
        mapping = StateMapping(
            transform=lambda s: {"count": 0},
            equivalence=lambda old, new: old.get("count") == new.get("count"),
        )
        with pytest.raises(UpdateSafetyError):
            mapping.apply({"count": 5})

    def test_non_dict_result_rejected(self):
        mapping = StateMapping(transform=lambda s: ["not", "a", "dict"])
        with pytest.raises(UpdateSafetyError):
            mapping.apply({})

    def test_transform_does_not_mutate_input(self):
        mapping = add_defaults_mapping({"extra": 1})
        original = {"count": 1}
        mapping.apply(original)
        assert original == {"count": 1}


# ----------------------------------------------------------------------
# Patches and patch generation
# ----------------------------------------------------------------------
class TestPatchGeneration:
    def test_diff_detects_changed_handler(self):
        diff = diff_classes(BoundedCounterBuggy, BoundedCounterFixed)
        assert "on_tick" in diff.changed_methods
        assert "TICK" in diff.changed_handlers
        assert not diff.is_empty
        assert "changed handlers" in diff.describe()

    def test_generate_patch_defaults(self):
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed)
        assert patch.new_class is BoundedCounterFixed
        assert patch.diff is not None
        assert patch.targets("anything")   # empty target list means all

    def test_generate_patch_with_state_defaults(self):
        patch = generate_patch(
            BoundedCounterBuggy, BoundedCounterFixed, new_state_defaults={"patched": True}
        )
        assert patch.state_mapping.apply({"count": 1}) == {"count": 1, "patched": True}

    def test_patch_targeting(self):
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed, target_pids=["c0"])
        assert patch.targets("c0") and not patch.targets("c1")

    def test_patch_requires_process_subclass(self):
        with pytest.raises(UpdateSafetyError):
            Patch(name="bad", new_class=dict)  # type: ignore[arg-type]

    def test_describe_mentions_versions_and_diff(self):
        patch = generate_patch(
            BoundedCounterBuggy, BoundedCounterFixed, description="stop at bound",
            from_version="1.0", to_version="1.1",
        )
        text = patch.describe()
        assert "1.0 -> 1.1" in text and "stop at bound" in text


# ----------------------------------------------------------------------
# Safety checker and dynamic updater
# ----------------------------------------------------------------------
def run_buggy_cluster(max_events: int = 6):
    """Run the buggy counters just short of the bound (states still satisfy invariants)."""
    cluster = make_cluster(
        {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2, halt_on_violation=False
    )
    cluster.run(max_events=max_events)
    return cluster


class TestSafetyAndDSU:
    def test_safe_update_applies_and_changes_behaviour(self):
        cluster = run_buggy_cluster()
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed)
        # The run stopped mid-exchange, so TICKs (a changed handler) are still in
        # flight; relax that particular check to exercise the happy path here.
        updater = DynamicUpdater(
            cluster, UpdateSafetyChecker(require_no_inflight_for_changed_handlers=False)
        )
        records = updater.apply(patch)
        assert all(record.applied for record in records)
        assert all(isinstance(cluster.process(pid), BoundedCounterFixed) for pid in cluster.pids)
        # State carried across the update.
        assert all(cluster.process(pid).state["count"] >= 0 for pid in cluster.pids)
        assert len(updater.applied_updates()) == 2

    def test_update_preserves_identity_counters(self):
        cluster = run_buggy_cluster()
        sent_before = cluster.process("c0").messages_sent
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed)
        DynamicUpdater(cluster).apply_to("c0", patch)
        assert cluster.process("c0").messages_sent == sent_before

    def test_unsafe_mapping_refused_without_force(self):
        cluster = run_buggy_cluster()
        patch = generate_patch(
            BoundedCounterBuggy,
            BoundedCounterFixed,
            state_mapping=identity_mapping(required_keys=("nonexistent-key",)),
        )
        updater = DynamicUpdater(cluster)
        record = updater.apply_to("c0", patch)
        assert not record.applied
        assert updater.refused_updates()
        # force=True applies anyway, falling back to the raw state
        forced = updater.apply_to("c0", patch, force=True)
        assert forced.applied

    def test_update_refused_when_new_invariants_fail(self):
        class StrictCounter(BoundedCounterFixed):
            @invariant("count-is-zero")
            def count_is_zero(self):
                return self.state["count"] == 0

        cluster = run_buggy_cluster()
        assert cluster.process("c0").state["count"] > 0
        patch = generate_patch(BoundedCounterBuggy, StrictCounter)
        record = DynamicUpdater(cluster).apply_to("c0", patch)
        assert not record.applied
        assert any("invariant" in reason for reason in record.verdict.reasons)

    def test_update_refused_with_inflight_changed_messages(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2, halt_on_violation=False
        )
        cluster.run(max_events=3)   # stop mid-exchange: TICKs still in flight
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed)
        verdict = UpdateSafetyChecker().check(cluster, "c1", patch)
        pending_kinds = [e.payload.kind for e in cluster.scheduler.pending() if e.kind.value == "deliver"]
        if "TICK" in pending_kinds and any(e.payload.dst == "c1" for e in cluster.scheduler.pending() if e.kind.value == "deliver"):
            assert not verdict.safe
        # With the in-flight requirement disabled the same update is allowed.
        relaxed = UpdateSafetyChecker(require_no_inflight_for_changed_handlers=False)
        assert relaxed.check(cluster, "c1", patch).safe

    def test_patch_not_targeting_pid_rejected(self):
        cluster = run_buggy_cluster()
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed, target_pids=["c0"])
        with pytest.raises(PatchApplicationError):
            DynamicUpdater(cluster).apply_to("c1", patch)


# ----------------------------------------------------------------------
# Recovery strategies and the Healer facade
# ----------------------------------------------------------------------
class TestRecoveryStrategies:
    def _instrumented_cluster(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2, halt_on_violation=False
        )
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run(max_events=20)
        return cluster, time_machine

    def test_restart_from_scratch_resets_state_and_installs_new_code(self):
        cluster, _ = self._instrumented_cluster()
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed)
        outcome = restart_from_scratch(cluster, patch)
        assert outcome.strategy is RecoveryStrategy.RESTART_FROM_SCRATCH
        assert outcome.total_preserved_time == 0.0
        assert outcome.total_lost_time > 0.0
        for pid in cluster.pids:
            assert isinstance(cluster.process(pid), BoundedCounterFixed)
            assert cluster.process(pid).state["count"] == 0

    def test_resume_from_checkpoint_preserves_work(self):
        cluster, time_machine = self._instrumented_cluster()
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed)
        outcome = resume_from_checkpoint(cluster, time_machine, patch)
        assert outcome.strategy is RecoveryStrategy.RESUME_FROM_CHECKPOINT
        assert outcome.total_preserved_time > 0.0
        assert outcome.all_updates_applied
        for pid in cluster.pids:
            assert isinstance(cluster.process(pid), BoundedCounterFixed)

    def test_restart_with_untargeted_patch_rejected(self):
        cluster, _ = self._instrumented_cluster()
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed, target_pids=["zzz"])
        with pytest.raises(PatchApplicationError):
            restart_from_scratch(cluster, patch)

    def test_healer_resume_strategy(self):
        cluster, time_machine = self._instrumented_cluster()
        healer = Healer(cluster, time_machine)
        report = healer.heal(generate_patch(BoundedCounterBuggy, BoundedCounterFixed))
        assert report.succeeded
        assert report.strategy is RecoveryStrategy.RESUME_FROM_CHECKPOINT
        assert "Healing with patch" in report.describe()

    def test_healer_without_time_machine_falls_back_to_restart(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2, halt_on_violation=False
        )
        cluster.run(max_events=20)
        healer = Healer(cluster, time_machine=None)
        report = healer.heal(generate_patch(BoundedCounterBuggy, BoundedCounterFixed))
        assert report.strategy is RecoveryStrategy.RESTART_FROM_SCRATCH
        assert report.succeeded
        assert any("falling back" in note for note in report.notes)

    def test_heal_with_best_strategy_prefers_resume(self):
        cluster, time_machine = self._instrumented_cluster()
        healer = Healer(cluster, time_machine)
        report = healer.heal_with_best_strategy(generate_patch(BoundedCounterBuggy, BoundedCounterFixed))
        assert report.strategy is RecoveryStrategy.RESUME_FROM_CHECKPOINT
