"""Leak-proof teardown of the multiprocessing backend.

The shm transport owns real kernel resources — two shared-memory
segments per worker — and the pipe transport owns sender threads.  All
of them must be reclaimed on *every* exit path: a clean quiescent run,
a worker that dies mid-run (worker-lost halt), and a KeyboardInterrupt
unwinding the router loop.  The resource-tracker regression test runs a
whole interpreter and asserts the exit is tracker-quiet: no "leaked
shared_memory objects" warning, no tracker KeyError spam — both of
which CPython emits when attach-side registrations are left dangling.

Marked ``slow`` (real OS processes); ``make verify`` runs this module
explicitly via the ``mp-teardown`` step.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading

import pytest

from repro.dsim.backend import MPBackend, MPBackendOptions
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.hooks import RuntimeHook
from repro.dsim.process import Process, handler
from repro.apps.wordcount import build_wordcount_cluster

pytestmark = pytest.mark.slow

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src")


def _segments_gone(backend: MPBackend) -> bool:
    return all(
        not os.path.exists(f"/dev/shm/{name}") for name in backend.shm_segments
    )


class _Exiter(Process):
    """Dies abruptly (hard exit, no result, broken pipe) on first delivery."""

    def on_start(self) -> None:
        self.state["ready"] = True

    @handler("DIE")
    def die(self, msg) -> None:
        os._exit(13)


class _Prodder(Process):
    def on_start(self) -> None:
        self.send("victim", "DIE", None)


class _Interrupter(RuntimeHook):
    """Simulates the operator hitting Ctrl-C while the router replays."""

    def on_send(self, pid, message, time, vt=None):
        raise KeyboardInterrupt


@pytest.mark.parametrize("transport", ["pipe", "shm"])
def test_clean_run_reclaims_segments_and_threads(transport: str):
    threads_before = threading.active_count()
    backend = MPBackend(MPBackendOptions(time_scale=0.01, transport=transport))
    cluster = Cluster(ClusterConfig(seed=3), backend=backend)
    build_wordcount_cluster(cluster, workers=2, chunks=4)
    result = cluster.run(until=120.0)
    assert result.stopped_reason == "quiescent"
    if transport == "shm":
        assert backend.shm_segments, "shm run must have created segments"
    assert _segments_gone(backend)
    assert threading.active_count() == threads_before, "sender threads leaked"


def test_worker_lost_halt_reclaims_segments():
    backend = MPBackend(MPBackendOptions(time_scale=0.01, transport="shm"))
    cluster = Cluster(ClusterConfig(seed=3), backend=backend)
    cluster.add_process("victim", _Exiter)
    cluster.add_process("prodder", _Prodder)
    result = cluster.run(until=60.0)
    assert result.stopped_reason == "worker-lost:victim"
    assert _segments_gone(backend)


def test_keyboard_interrupt_reclaims_segments_and_threads():
    threads_before = threading.active_count()
    backend = MPBackend(MPBackendOptions(time_scale=0.01, transport="shm"))
    cluster = Cluster(ClusterConfig(seed=3), backend=backend)
    build_wordcount_cluster(cluster, workers=2, chunks=4)
    cluster.add_hook(_Interrupter())
    with pytest.raises(KeyboardInterrupt):
        cluster.run(until=120.0)
    assert _segments_gone(backend)
    assert threading.active_count() == threads_before


def test_shm_run_is_resource_tracker_quiet():
    """A whole interpreter running on shm must exit without tracker noise.

    CPython's resource tracker prints "leaked shared_memory objects"
    warnings (and KeyError tracebacks on double-unregister) at
    interpreter exit — exactly the failure modes of wrong attach-side
    registration handling.  The child interpreter's stderr must be
    silent and its exit clean.
    """
    script = (
        "from repro.dsim.backend import MPBackend, MPBackendOptions\n"
        "from repro.dsim.cluster import Cluster, ClusterConfig\n"
        "from repro.apps.wordcount import build_wordcount_cluster\n"
        "backend = MPBackend(MPBackendOptions(time_scale=0.01, transport='shm'))\n"
        "cluster = Cluster(ClusterConfig(seed=3), backend=backend)\n"
        "build_wordcount_cluster(cluster, workers=2, chunks=4)\n"
        "result = cluster.run(until=120.0)\n"
        "assert result.stopped_reason == 'quiescent', result.stopped_reason\n"
        "print('RUN-OK')\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "RUN-OK" in proc.stdout
    assert "resource_tracker" not in proc.stderr, proc.stderr
    assert "leaked" not in proc.stderr, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr
