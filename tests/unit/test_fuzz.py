"""Unit tests for ``repro.fuzz``: the coverage signal, corpus dedup and
persistence, the shrinker's signature-preserving minimization, and the
budgeted driver loop.

Shrinker mechanics run against a *stub* runner (a pure function from
schedules to signatures) so the minimization logic is tested exhaustively
without paying for simulator runs; one real end-to-end shrink and one
real driver run keep the stubs honest.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Crash, Delay, Drop, Duplicate, FaultSchedule, Scenario, run_scenario
from repro.errors import ScenarioError, ScenarioExecutionError
from repro.fuzz import (
    Budget,
    Corpus,
    CorpusEntry,
    coverage_key,
    coverage_points,
    coverage_projection,
    fuzz,
    generate_scenario,
    is_interesting_failure,
    shrink_scenario,
)
from repro.fuzz.coverage import kind_ngram_digests  # facade-ok: tests the n-gram mechanism itself


# ----------------------------------------------------------------------
# coverage signal
# ----------------------------------------------------------------------
class TestCoverage:
    def test_same_run_same_key(self):
        scenario = Scenario(app="token_ring", name="cov-a", faults=FaultSchedule.of(Drop(match_kind="TOKEN", count=1)))
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert coverage_key(first) == coverage_key(second)
        assert coverage_projection(first) == coverage_projection(second)

    def test_different_behaviour_different_key(self):
        healthy = run_scenario(Scenario(app="token_ring", name="cov-h"))
        faulty = run_scenario(
            Scenario(
                app="token_ring",
                name="cov-f",
                faults=FaultSchedule.of(Crash(pid="node0", at=2.0)),
            )
        )
        assert coverage_key(healthy) != coverage_key(faulty)

    def test_projection_shape(self):
        outcome = run_scenario(
            Scenario(
                app="token_ring",
                name="cov-shape",
                faults=FaultSchedule.of(Duplicate(match_kind="TOKEN", count=1)),
            )
        )
        projection = coverage_projection(outcome)
        assert set(projection) == {"evidence", "fault_hits", "ngrams", "recovery", "verdict"}
        assert projection["evidence"] == ["duplicate"]
        # hit counts are bucketed, never raw
        assert set(projection["fault_hits"].values()) <= {"0", "1", "many"}
        # one digest per pid that recorded entries
        assert set(projection["ngrams"]) == set(outcome.scroll["kind_sequences"])

    def test_ngram_digests_length_blind(self):
        outcome = run_scenario(Scenario(app="token_ring", name="cov-ngram"))
        digests = kind_ngram_digests(outcome)
        # doubling every pid's sequence adds no new 2-gram windows except
        # the seam; splice the same tail kind to keep the seam identical
        doubled = type(outcome)(
            scenario_id=outcome.scenario_id,
            app=outcome.app,
            backend=outcome.backend,
            scroll={
                "kind_sequences": {
                    pid: seq + seq[-1:] * 3
                    for pid, seq in outcome.scroll["kind_sequences"].items()
                    if len(seq) >= 2 and seq[-1] == seq[-2]
                }
            },
        )
        for pid, digest in kind_ngram_digests(doubled).items():
            assert digest == digests[pid]

    def test_interesting_failure_gate(self):
        healthy = run_scenario(Scenario(app="token_ring", name="int-h"))
        assert not is_interesting_failure(healthy)
        # a drop rule that matches nothing fails its expectations but is boring
        boring = run_scenario(
            Scenario(
                app="token_ring",
                name="int-b",
                faults=FaultSchedule.of(Drop(match_kind="NO_SUCH_KIND", count=1)),
            )
        )
        assert not boring.passed
        assert boring.failure_signature() is not None
        assert not is_interesting_failure(boring)


# ----------------------------------------------------------------------
# corpus
# ----------------------------------------------------------------------
def _entry(
    key: str, *, signature=None, interesting=False, minimized=False, points=()
) -> CorpusEntry:
    return CorpusEntry(
        scenario=Scenario(app="token_ring", name=f"corpus-{key}"),
        coverage_key=key,
        seed=7,
        signature=signature,
        interesting=interesting,
        minimized=minimized,
        points=tuple(sorted(points)),
    )


class TestCorpus:
    def test_add_dedup_and_stats(self):
        corpus = Corpus()
        assert corpus.add(_entry("aa"))
        assert not corpus.add(_entry("aa"))
        assert corpus.add(_entry("bb", signature="sig", interesting=True))
        assert corpus.dedup_hits == 1
        assert corpus.stats() == {
            "entries": 2,
            "failing": 1,
            "interesting": 1,
            "minimized": 0,
            "dedup_hits": 1,
        }
        assert "aa" in corpus and "cc" not in corpus

    def test_failing_orders_interesting_first(self):
        corpus = Corpus()
        corpus.add(_entry("zz", signature="s1"))
        corpus.add(_entry("aa", signature="s2", interesting=True))
        corpus.add(_entry("mm"))
        assert [e.coverage_key for e in corpus.failing()] == ["aa", "zz"]

    def test_disk_round_trip(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(_entry("aa", signature="sig", interesting=True))
        corpus.replace(_entry("aa", signature="sig", interesting=True, minimized=True))
        reloaded = Corpus(tmp_path / "corpus")
        assert len(reloaded) == 1
        entry = reloaded.get("aa")
        assert entry.minimized and entry.interesting and entry.signature == "sig"
        assert entry.scenario == _entry("aa").scenario
        # entry files are canonical JSON named by coverage key
        path = tmp_path / "corpus" / "entries" / "aa.json"
        payload = json.loads(path.read_text())
        assert payload["meta"]["coverage_key"] == "aa"

    def test_malformed_entry_fails_loudly(self, tmp_path):
        entries = tmp_path / "corpus" / "entries"
        entries.mkdir(parents=True)
        (entries / "bad.json").write_text('{"scenario": {}}')
        with pytest.raises(ScenarioError, match="meta"):
            Corpus(tmp_path / "corpus")

    def test_points_survive_disk_round_trip(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(_entry("aa", points=["evidence:crash", "verdict:ok:True"]))
        reloaded = Corpus(tmp_path / "corpus")
        assert reloaded.get("aa").points == ("evidence:crash", "verdict:ok:True")


class TestCorpusMinimize:
    def test_subsumed_healthy_entry_dropped(self):
        corpus = Corpus()
        corpus.add(_entry("small", points=["a", "b"]))
        corpus.add(_entry("big", points=["a", "b", "c"]))
        dropped = corpus.minimize()
        assert [e.coverage_key for e in dropped] == ["small"]
        assert "big" in corpus and "small" not in corpus

    def test_incomparable_entries_both_kept(self):
        corpus = Corpus()
        corpus.add(_entry("left", points=["a", "b"]))
        corpus.add(_entry("right", points=["b", "c"]))
        assert corpus.minimize() == []
        assert len(corpus) == 2

    def test_equal_point_sets_keep_smaller_key(self):
        corpus = Corpus()
        corpus.add(_entry("zz", points=["a", "b"]))
        corpus.add(_entry("aa", points=["a", "b"]))
        dropped = corpus.minimize()
        assert [e.coverage_key for e in dropped] == ["zz"]
        assert "aa" in corpus

    def test_failing_entry_not_evicted_by_healthy_superset(self):
        corpus = Corpus()
        corpus.add(_entry("bug", signature="sig", points=["a"]))
        corpus.add(_entry("healthy", points=["a", "b", "c"]))
        assert corpus.minimize() == []
        assert "bug" in corpus

    def test_failing_entry_not_evicted_by_different_bug(self):
        corpus = Corpus()
        corpus.add(_entry("bug1", signature="sig-one", points=["a"]))
        corpus.add(_entry("bug2", signature="sig-two", points=["a", "b"]))
        assert corpus.minimize() == []

    def test_failing_entry_evicted_by_same_signature_superset(self):
        corpus = Corpus()
        corpus.add(_entry("narrow", signature="sig", points=["a"]))
        corpus.add(_entry("wide", signature="sig", points=["a", "b"]))
        dropped = corpus.minimize()
        assert [e.coverage_key for e in dropped] == ["narrow"]

    def test_failing_preferred_over_healthy_on_equal_points(self):
        corpus = Corpus()
        corpus.add(_entry("aa", points=["a"]))  # healthy, smaller key
        corpus.add(_entry("zz", signature="sig", points=["a"]))
        dropped = corpus.minimize()
        assert [e.coverage_key for e in dropped] == ["aa"]
        assert "zz" in corpus

    def test_entries_without_points_never_dropped(self):
        corpus = Corpus()
        corpus.add(_entry("legacy"))  # pre-points entry: unknown contribution
        corpus.add(_entry("big", points=["a", "b", "c"]))
        assert corpus.minimize() == []
        assert len(corpus) == 2

    def test_minimize_is_idempotent(self):
        corpus = Corpus()
        corpus.add(_entry("small", points=["a"]))
        corpus.add(_entry("mid", points=["a", "b"]))
        corpus.add(_entry("big", points=["a", "b", "c"]))
        assert len(corpus.minimize()) == 2
        assert corpus.minimize() == []
        assert [e.coverage_key for e in corpus] == ["big"]

    def test_minimize_deletes_entry_files(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(_entry("small", points=["a"]))
        corpus.add(_entry("big", points=["a", "b"]))
        corpus.minimize()
        entries = tmp_path / "corpus" / "entries"
        assert not (entries / "small.json").exists()
        assert (entries / "big.json").exists()
        assert len(Corpus(tmp_path / "corpus")) == 1

    def test_cli_minimize_corpus(self, tmp_path, capsys):
        from repro.fuzz.__main__ import main

        corpus = Corpus(tmp_path / "corpus")
        corpus.add(_entry("small", points=["a"]))
        corpus.add(_entry("big", points=["a", "b"]))
        assert main(["--minimize-corpus", "--corpus", str(tmp_path / "corpus")]) == 0
        out = capsys.readouterr().out
        assert "2 -> 1 entries" in out
        assert len(Corpus(tmp_path / "corpus")) == 1

    def test_cli_minimize_requires_corpus_dir(self, capsys):
        from repro.fuzz.__main__ import main

        assert main(["--minimize-corpus"]) == 2

    def test_cli_requires_app_without_minimize(self, capsys):
        from repro.fuzz.__main__ import main

        assert main([]) == 2


class TestCoveragePoints:
    def test_points_flatten_projection(self):
        projection = {
            "evidence": ["crash", "drop"],
            "fault_hits": {"rule0": "many"},
            "ngrams": {"p0": "abcd1234"},
            "recovery": {"rolled_back": True, "healed": False,
                         "recovered": {"p0": True}},
            "verdict": {"consistent": True, "ok": False, "detected": True,
                        "violations": ["conservation"]},
        }
        points = coverage_points(projection)
        assert "evidence:crash" in points
        assert "fault:rule0:many" in points
        assert "ngram:p0:abcd1234" in points
        assert "recovery:rolled_back" in points
        assert "recovery:healed" not in points
        assert "recovery:recovered:p0:True" in points
        assert "verdict:ok:False" in points
        assert "violation:conservation" in points

    def test_real_outcome_points_are_nonempty_and_stable(self):
        scenario = Scenario(app="token_ring", name="points-probe", seed=3)
        outcome = run_scenario(scenario)
        first = coverage_points(coverage_projection(outcome))
        second = coverage_points(coverage_projection(run_scenario(scenario)))
        assert first and first == second


# ----------------------------------------------------------------------
# shrinker (stub runner: signature == "has a crash on node0")
# ----------------------------------------------------------------------
class _StubOutcome:
    def __init__(self, signature):
        self._signature = signature

    def failure_signature(self):
        return self._signature


def _crash_sensitive_runner(calls):
    """Fails (signature "boom") iff the schedule crashes node0."""

    def runner(scenario):
        calls.append(scenario)
        crashed = any(
            getattr(f, "kind", "") == "crash" and f.pid == "node0"
            for f in scenario.faults.faults
        )
        return _StubOutcome("boom" if crashed else None)

    return runner


def _noisy_scenario() -> Scenario:
    return Scenario(
        app="token_ring",
        name="shrink-me",
        faults=FaultSchedule.of(
            Delay(match_kind="TOKEN", extra_delay=4.0, count=2),
            Drop(match_kind="TOKEN", count=1),
            Crash(pid="node0", at=3.0, recover_at=8.0),
            Duplicate(match_kind="TOKEN", count=3),
            Crash(pid="node1", at=5.0, recover_at=9.0),
        ),
    )


class TestShrinker:
    def test_minimizes_to_single_relevant_fault(self):
        calls = []
        result = shrink_scenario(
            _noisy_scenario(), "boom", runner=_crash_sensitive_runner(calls)
        )
        assert result.original_faults == 5
        assert result.faults == 1
        assert result.removed == 4
        (fault,) = result.scenario.faults.faults
        assert fault.kind == "crash" and fault.pid == "node0"
        # attribute shrinking dropped the recovery time too
        assert fault.recover_at is None
        assert result.runs == len(calls)
        assert not result.budget_exhausted

    def test_signature_mismatch_keeps_schedule(self):
        # a runner whose failure never reproduces: nothing may be removed
        result = shrink_scenario(
            _noisy_scenario(), "different-sig", runner=lambda s: _StubOutcome("boom")
        )
        assert result.faults == 5
        assert result.removed == 0

    def test_budget_is_respected(self):
        calls = []
        result = shrink_scenario(
            _noisy_scenario(),
            "boom",
            runner=_crash_sensitive_runner(calls),
            max_runs=3,
        )
        assert result.runs <= 3
        assert result.budget_exhausted
        # still a valid, failing scenario
        assert any(f.kind == "crash" and f.pid == "node0" for f in result.scenario.faults.faults)

    def test_healthy_scenario_refused(self):
        with pytest.raises(ScenarioError, match="nothing to shrink"):
            shrink_scenario(
                Scenario(app="token_ring", name="healthy"),
                runner=lambda s: _StubOutcome(None),
            )

    def test_shrinks_to_empty_when_failure_is_fault_free(self):
        # when the failure reproduces with NO faults at all (an app bug,
        # not an injection), the minimal reproducer is the empty schedule
        result = shrink_scenario(
            _noisy_scenario(), "boom", runner=lambda s: _StubOutcome("boom")
        )
        assert len(result.scenario.faults) == 0
        assert result.removed == 5

    @pytest.mark.slow
    def test_real_end_to_end_shrink(self):
        # real simulator runs: a duplicate REPLICATE violates the stale
        # kvstore's version invariant; the noise faults shrink away
        scenario = Scenario(
            app="kvstore",
            name="real-shrink",
            params={"stale_backups": True},
            faults=FaultSchedule.of(
                Delay(match_kind="GET", extra_delay=1.0, count=1),
                Duplicate(match_kind="REPLICATE", count=1),
            ),
        )
        baseline = run_scenario(scenario)
        assert is_interesting_failure(baseline)
        result = shrink_scenario(scenario, baseline.failure_signature())
        assert result.faults <= 2
        confirm = run_scenario(result.scenario)
        assert confirm.failure_signature() == result.signature


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
class TestDriver:
    def test_budget_coercion(self):
        assert Budget.coerce(None).max_execs == 200
        assert Budget.coerce(12).max_execs == 12
        budget = Budget(max_execs=None, max_seconds=5.0)
        assert Budget.coerce(budget) is budget
        with pytest.raises(ScenarioError, match="max_execs and/or max_seconds"):
            Budget(max_execs=None, max_seconds=None)
        with pytest.raises(ScenarioError, match="Budget or an execution count"):
            Budget.coerce("lots")

    def test_fuzz_loop_reports_and_dedups(self, tmp_path):
        lines = []
        report = fuzz(
            "token_ring",
            seed=5,
            budget=Budget(max_execs=8),
            corpus_dir=tmp_path / "corpus",
            batch=4,
            shrink=False,
            progress=lines.append,
        )
        assert report.execs == 8
        assert report.new_coverage + report.dedup_hits == 8 - len(report.errors)
        assert report.corpus_stats["entries"] == report.new_coverage
        assert any(line.startswith("execs=") for line in lines)
        # the corpus persisted and reloads
        assert len(Corpus(tmp_path / "corpus")) == report.new_coverage
        # resuming against the same corpus dedups everything it re-finds
        again = fuzz(
            "token_ring",
            seed=5,
            budget=Budget(max_execs=8),
            corpus_dir=tmp_path / "corpus",
            batch=4,
            shrink=False,
        )
        assert again.new_coverage == 0
        assert again.dedup_hits == 8 - len(again.errors)

    def test_fuzz_deterministic_per_seed(self):
        first = fuzz("token_ring", seed=3, budget=Budget(max_execs=6), shrink=False)
        second = fuzz("token_ring", seed=3, budget=Budget(max_execs=6), shrink=False)
        assert first.execs == second.execs
        assert first.distinct_failures == second.distinct_failures
        assert first.corpus_stats == second.corpus_stats

    def test_report_to_dict_round_trips_json(self):
        report = fuzz("token_ring", seed=2, budget=Budget(max_execs=4), shrink=False)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["app"] == "token_ring"
        assert payload["execs"] == 4
        assert set(payload["corpus"]) == {
            "entries",
            "failing",
            "interesting",
            "minimized",
            "dedup_hits",
        }


# ----------------------------------------------------------------------
# pool fan-out error attribution (the failing-before regression)
# ----------------------------------------------------------------------
class TestPoolErrorAttribution:
    def test_worker_exception_names_the_scenario(self):
        from repro.api import Experiment

        scenarios = [
            Scenario(app="token_ring", name="fine"),
            Scenario(app="token_ring", name="broken-check", check="no-such-check"),
        ]
        with pytest.raises(ScenarioExecutionError, match="broken-check") as excinfo:
            Experiment(scenarios, processes=2).run()
        assert excinfo.value.scenario_name == "broken-check"

    def test_serial_path_matches(self):
        from repro.api import Experiment

        with pytest.raises(ScenarioExecutionError, match="solo-broken"):
            Experiment(
                [Scenario(app="token_ring", name="solo-broken", check="nope")]
            ).run()

    def test_execution_error_survives_pickling(self):
        import pickle

        error = ScenarioExecutionError("some-scenario", "KeyError: 'x'")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.scenario_name == "some-scenario"
        assert clone.detail == "KeyError: 'x'"
        assert "some-scenario" in str(clone)
