"""Unit tests for continuation-fidelity state.

A faithful continuation needs two things that are neither checkpointed
process state nor recorded Scroll history: the message-fault engine's
per-rule hit counters (so count-limited rules re-arm at their remaining
budget) and each channel's RNG draw position plus FIFO watermark (so the
continuation samples exactly the jitter/loss stream the uninterrupted
run would have).  Both ride the scroll sidecar's pending snapshot
(:func:`repro.timemachine.scroll_persistence.capture_pending`) and are
restored by ``ResumedRun.continue_run``.
"""

from __future__ import annotations

from repro.dsim.channel import ChannelConfig
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.failure import FailurePlan, MessageFault, MessageFaultEngine
from repro.dsim.message import Message
from repro.dsim.network import Network, NetworkConfig
from repro.dsim.process import Process, handler
from repro.timemachine.scroll_persistence import capture_pending  # facade-ok: tests the pending-snapshot capture itself


def lossy_network(seed: int = 5) -> Network:
    config = NetworkConfig(
        default_channel=ChannelConfig(
            base_delay=1.0, jitter=0.7, drop_rate=0.2, fifo=True
        )
    )
    network = Network(config, seed=seed)
    for pid in ("a", "b"):
        network.register_process(pid)
    return network


def route_burst(network: Network, count: int, start: float = 0.0):
    """Route ``count`` messages and return their (outcome, time) decisions."""
    decisions = []
    for index in range(count):
        message = Message(
            src="a", dst="b", kind="DATA", payload=index, msg_id=index + 1
        )
        decisions.append(
            [
                (outcome.value, time)
                for outcome, time, _ in network.route(message, start + index)
            ]
        )
    return decisions


class TestChannelStateRoundtrip:
    def test_restored_network_continues_the_rng_stream(self):
        twin = lossy_network()
        route_burst(twin, 10)
        expected = route_burst(twin, 10, start=10.0)

        interrupted = lossy_network()
        route_burst(interrupted, 10)
        states = interrupted.channel_states()
        assert states[("a", "b")]["rng_draws"] > 0

        # a resumed run rebuilds the network fresh; channels are lazily
        # re-created with the same derived seeds, so restoring only the
        # positions must reproduce the twin's decisions exactly
        rebuilt = lossy_network()
        rebuilt.restore_channel_states(states)
        assert route_burst(rebuilt, 10, start=10.0) == expected

    def test_fresh_network_without_restore_diverges(self):
        """The regression guard: skipping the restore replays the channel
        RNG from position zero, so the continuation samples a different
        jitter/loss sequence than the uninterrupted twin."""
        twin = lossy_network()
        route_burst(twin, 10)
        expected = route_burst(twin, 10, start=10.0)

        fresh = lossy_network()
        assert route_burst(fresh, 10, start=10.0) != expected

    def test_snapshot_is_positions_only(self):
        network = lossy_network()
        route_burst(network, 4)
        snapshot = network.channel_states()[("a", "b")]
        # traffic counters are reporting, not behaviour: they stay out
        assert set(snapshot) == {"rng_draws", "last_delivery_time"}

    def test_fifo_watermark_survives_the_roundtrip(self):
        network = lossy_network()
        route_burst(network, 6)
        watermark = network.channel_states()[("a", "b")]["last_delivery_time"]
        assert watermark > 0.0
        rebuilt = lossy_network()
        rebuilt.restore_channel_states(network.channel_states())
        assert (
            rebuilt.channel_states()[("a", "b")]["last_delivery_time"] == watermark
        )


def count_limited_engine() -> MessageFaultEngine:
    return MessageFaultEngine([MessageFault("drop", match_kind="DATA", count=1)])


class TestFaultHitRestore:
    def test_restore_hits_rearms_exhausted_rule(self):
        original = count_limited_engine()
        message = Message(src="a", dst="b", kind="DATA")
        assert original.decide(message, 1.0) is not None  # budget consumed
        assert original.decide(message, 2.0) is None

        # a continuation rebuilds the engine from the fault schedule,
        # which resets every counter — restoring must keep the rule dead
        rebuilt = count_limited_engine()
        rebuilt.restore_hits(original.hit_counts())
        assert rebuilt.decide(message, 3.0) is None

    def test_restore_hits_accepts_string_keys_and_ignores_unknown(self):
        rebuilt = count_limited_engine()
        rebuilt.restore_hits({"0": 1, "7": 3})  # JSON round-trip shape
        assert rebuilt.hit_counts() == {0: 1}
        assert rebuilt.decide(Message(src="a", dst="b", kind="DATA"), 1.0) is None

    def test_restore_hits_never_lowers_a_counter(self):
        engine = count_limited_engine()
        engine.decide(Message(src="a", dst="b", kind="DATA"), 1.0)
        engine.restore_hits({0: 0})
        assert engine.hit_counts() == {0: 1}


class Chatter(Process):
    """A two-process chain that keeps DATA messages moving."""

    def on_start(self):
        self.state["n"] = 0
        if self.pid == "a":
            self.send("b", "DATA", 0)

    @handler("DATA")
    def on_data(self, msg: Message):
        self.state["n"] += 1
        if self.state["n"] < 6:
            self.send(msg.src, "DATA", msg.payload + 1)


class TestCapturePendingCarriesContinuationState:
    def test_pending_snapshot_includes_hits_and_channel_positions(self):
        cluster = Cluster(
            ClusterConfig(
                seed=4,
                network=NetworkConfig(
                    default_channel=ChannelConfig(base_delay=1.0, jitter=0.5)
                ),
            )
        )
        cluster.add_process("a", Chatter)
        cluster.add_process("b", Chatter)
        plan = FailurePlan(
            message_faults=[
                MessageFault("drop", match_kind="DATA", count=1, after=2.0)
            ]
        )
        cluster.set_failure_plan(plan)
        cluster.run(until=30.0)

        pending = capture_pending(cluster.backend)
        assert pending is not None
        assert pending["fault_hits"].get(0, 0) == 1
        channels = pending["channels"]
        assert channels[("a", "b")]["rng_draws"] > 0
