"""Unit tests for logical clocks, deterministic RNG streams, messages and channels."""

from __future__ import annotations

import pytest

from repro.dsim.channel import Channel, ChannelConfig, DeliveryOutcome
from repro.dsim.clock import (
    LamportClock,
    VectorClock,
    VectorTimestamp,
    concurrent,
    happens_before,
    merge_all,
)
from repro.dsim.message import Message, reset_message_ids
from repro.dsim.rng import DeterministicRNG, derive_seed, spawn_streams


# ----------------------------------------------------------------------
# Lamport clocks
# ----------------------------------------------------------------------
class TestLamportClock:
    def test_starts_at_zero(self):
        assert LamportClock("a").time == 0

    def test_tick_increments(self):
        clock = LamportClock("a")
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_merge_jumps_past_received_timestamp(self):
        clock = LamportClock("a")
        clock.tick()
        assert clock.merge(10) == 11

    def test_merge_with_smaller_timestamp_still_advances(self):
        clock = LamportClock("a", start=5)
        assert clock.merge(2) == 6

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            LamportClock("a", start=-1)

    def test_negative_merge_rejected(self):
        with pytest.raises(ValueError):
            LamportClock("a").merge(-3)

    def test_restore(self):
        clock = LamportClock("a")
        clock.tick()
        clock.tick()
        clock.restore(1)
        assert clock.time == 1

    def test_restore_negative_rejected(self):
        with pytest.raises(ValueError):
            LamportClock("a").restore(-1)


# ----------------------------------------------------------------------
# Vector clocks
# ----------------------------------------------------------------------
class TestVectorClock:
    def test_tick_increments_own_component(self):
        clock = VectorClock("a")
        ts = clock.tick()
        assert ts.component("a") == 1
        assert ts.component("b") == 0

    def test_merge_takes_componentwise_max_then_ticks(self):
        a = VectorClock("a")
        b = VectorClock("b")
        tb = b.tick()
        ta = a.merge(tb)
        assert ta.component("b") == 1
        assert ta.component("a") == 1

    def test_happens_before_through_message(self):
        a = VectorClock("a")
        b = VectorClock("b")
        send_ts = a.tick()
        recv_ts = b.merge(send_ts)
        assert happens_before(send_ts, recv_ts)
        assert not happens_before(recv_ts, send_ts)

    def test_concurrent_events(self):
        a = VectorClock("a").tick()
        b = VectorClock("b").tick()
        assert concurrent(a, b)
        assert not happens_before(a, b)

    def test_restore(self):
        clock = VectorClock("a")
        snapshot = clock.tick()
        clock.tick()
        clock.restore(snapshot)
        assert clock.snapshot() == snapshot

    def test_component_query(self):
        clock = VectorClock("a")
        clock.tick()
        assert clock.component("a") == 1
        assert clock.component("zzz") == 0


class TestVectorTimestamp:
    def test_from_mapping_drops_zero_entries(self):
        ts = VectorTimestamp.from_mapping({"a": 0, "b": 2})
        assert ts.as_dict() == {"b": 2}

    def test_partial_order_le(self):
        small = VectorTimestamp.from_mapping({"a": 1})
        big = VectorTimestamp.from_mapping({"a": 2, "b": 1})
        assert small <= big
        assert small < big
        assert not (big <= small)

    def test_equal_timestamps_not_strictly_less(self):
        ts = VectorTimestamp.from_mapping({"a": 1})
        same = VectorTimestamp.from_mapping({"a": 1})
        assert ts <= same
        assert not (ts < same)

    def test_concurrent_detection(self):
        x = VectorTimestamp.from_mapping({"a": 2, "b": 1})
        y = VectorTimestamp.from_mapping({"a": 1, "b": 2})
        assert x.concurrent(y)

    def test_merge_is_componentwise_max(self):
        x = VectorTimestamp.from_mapping({"a": 2, "b": 1})
        y = VectorTimestamp.from_mapping({"a": 1, "b": 3})
        assert x.merge(y).as_dict() == {"a": 2, "b": 3}

    def test_merge_all(self):
        merged = merge_all(
            [VectorTimestamp.from_mapping({"a": 1}), VectorTimestamp.from_mapping({"b": 2})]
        )
        assert merged.as_dict() == {"a": 1, "b": 2}


# ----------------------------------------------------------------------
# Deterministic RNG
# ----------------------------------------------------------------------
class TestDeterministicRNG:
    def test_same_seed_same_sequence(self):
        a, b = DeterministicRNG(42), DeterministicRNG(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seed_different_sequence(self):
        a, b = DeterministicRNG(1), DeterministicRNG(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_draw_counter_tracks_all_methods(self):
        rng = DeterministicRNG(0)
        rng.random()
        rng.randint(0, 10)
        rng.choice([1, 2, 3])
        assert rng.draws == 3

    def test_restore_replays_identical_values(self):
        rng = DeterministicRNG(7)
        first = [rng.random() for _ in range(4)]
        rng.restore(0)
        assert [rng.random() for _ in range(4)] == first

    def test_restore_to_midpoint(self):
        rng = DeterministicRNG(7)
        values = [rng.random() for _ in range(6)]
        rng.restore(3)
        assert rng.random() == values[3]

    def test_restore_negative_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).restore(-1)

    def test_choice_on_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).choice([])

    def test_shuffle_does_not_mutate_input(self):
        rng = DeterministicRNG(0)
        items = [1, 2, 3, 4]
        shuffled = rng.shuffle(items)
        assert items == [1, 2, 3, 4]
        assert sorted(shuffled) == items

    def test_fork_is_independent(self):
        rng = DeterministicRNG(5)
        child = rng.fork("worker")
        assert child.seed != rng.seed

    def test_derive_seed_is_stable_and_label_sensitive(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")

    def test_spawn_streams(self):
        streams = spawn_streams(3, ["x", "y"])
        assert set(streams) == {"x", "y"}
        assert streams["x"].random() != streams["y"].random()


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
class TestMessage:
    def test_ids_are_unique_and_increasing(self):
        reset_message_ids()
        first = Message(src="a", dst="b", kind="X")
        second = Message(src="a", dst="b", kind="X")
        assert second.msg_id > first.msg_id

    def test_round_trip_through_record(self):
        message = Message(src="a", dst="b", kind="PUT", payload={"k": 1}, lamport=4)
        rebuilt = Message.from_record(message.to_record())
        assert rebuilt.src == "a" and rebuilt.dst == "b"
        assert rebuilt.payload == {"k": 1}
        assert rebuilt.lamport == 4
        assert rebuilt.msg_id == message.msg_id

    def test_duplicate_carries_original_id(self):
        message = Message(src="a", dst="b", kind="X")
        copy = message.as_duplicate()
        assert copy.duplicate_of == message.msg_id
        assert copy.msg_id != message.msg_id

    def test_taint_adds_speculations(self):
        message = Message(src="a", dst="b", kind="X")
        tainted = message.with_taint(frozenset({"spec-1"}))
        assert "spec-1" in tainted.speculations
        assert message.speculations == frozenset()

    def test_taint_with_empty_set_returns_same_message(self):
        message = Message(src="a", dst="b", kind="X")
        assert message.with_taint(frozenset()) is message

    def test_describe_mentions_endpoints_and_kind(self):
        message = Message(src="a", dst="b", kind="PING")
        text = message.describe()
        assert "a->b" in text and "PING" in text


# ----------------------------------------------------------------------
# Channels
# ----------------------------------------------------------------------
def make_channel(**config):
    return Channel("a", "b", ChannelConfig(**config), DeterministicRNG(0))


class TestChannel:
    def test_reliable_channel_delivers_with_base_delay(self):
        channel = make_channel(base_delay=2.0)
        plans = channel.plan_delivery(Message(src="a", dst="b", kind="X"), now=10.0)
        outcome, deliver_at, _ = plans[0]
        assert outcome is DeliveryOutcome.DELIVER
        assert deliver_at == pytest.approx(12.0)

    def test_partitioned_send_is_dropped_without_consuming_randomness(self):
        channel = make_channel(drop_rate=0.0)
        before = channel._rng.draws
        plans = channel.plan_delivery(Message(src="a", dst="b", kind="X"), now=0.0, partitioned=True)
        assert plans[0][0] is DeliveryOutcome.DROP
        assert channel._rng.draws == before

    def test_always_drop_channel(self):
        channel = make_channel(drop_rate=1.0)
        plans = channel.plan_delivery(Message(src="a", dst="b", kind="X"), now=0.0)
        assert [outcome for outcome, _, _ in plans] == [DeliveryOutcome.DROP]

    def test_always_duplicate_channel(self):
        channel = make_channel(duplicate_rate=1.0)
        plans = channel.plan_delivery(Message(src="a", dst="b", kind="X"), now=0.0)
        outcomes = [outcome for outcome, _, _ in plans]
        assert DeliveryOutcome.DELIVER in outcomes and DeliveryOutcome.DUPLICATE in outcomes
        duplicate = [msg for outcome, _, msg in plans if outcome is DeliveryOutcome.DUPLICATE][0]
        assert duplicate.duplicate_of is not None

    def test_fifo_channel_preserves_order_under_jitter(self):
        channel = make_channel(base_delay=1.0, jitter=5.0, fifo=True)
        times = []
        for index in range(20):
            plans = channel.plan_delivery(Message(src="a", dst="b", kind="X"), now=float(index))
            times.append(plans[0][1])
        assert times == sorted(times)

    def test_non_fifo_channel_can_reorder(self):
        channel = make_channel(base_delay=1.0, jitter=50.0, fifo=False)
        times = []
        for index in range(30):
            plans = channel.plan_delivery(Message(src="a", dst="b", kind="X"), now=float(index))
            times.append(plans[0][1])
        assert times != sorted(times)

    def test_stats_count_sent_and_dropped(self):
        channel = make_channel(drop_rate=1.0)
        for _ in range(3):
            channel.plan_delivery(Message(src="a", dst="b", kind="X"), now=0.0)
        sent, dropped, duplicated = channel.stats
        assert sent == 3 and dropped == 3 and duplicated == 0

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            make_channel(drop_rate=1.5)
        with pytest.raises(ValueError):
            make_channel(base_delay=-1.0)
