"""Unit tests for FixD core: fault detection, protocol, registry, reports and the controller."""

from __future__ import annotations

import pytest

from repro.core.events import FaultEvent, RecoveryTimeline
from repro.core.faults import FaultDetector
from repro.core.fixd import FixD, FixDConfig
from repro.core.protocol import FaultResponseCoordinator
from repro.core.registry import (
    FIXD_CLAIMED_SERVICES,
    PAPER_TECHNIQUES,
    PAPER_TOOLS,
    ServiceKind,
    Technique,
    default_matrix,
    derive_composite_capability,
)
from repro.core.report import BugReport
from repro.dsim.cluster import ClusterConfig, Cluster
from repro.healer.patch import generate_patch
from repro.healer.strategies import RecoveryStrategy
from repro.investigator.models import EnvironmentModel
from repro.timemachine.time_machine import TimeMachine

from tests.conftest import BoundedCounterBuggy, BoundedCounterFixed, PingPong, make_cluster


# ----------------------------------------------------------------------
# Fault detector
# ----------------------------------------------------------------------
class TestFaultDetector:
    def test_faults_collected_with_sequence_numbers(self, buggy_counter_cluster):
        detector = FaultDetector()
        buggy_counter_cluster.add_hook(detector)
        buggy_counter_cluster.run(max_events=100)
        assert detector.fault_count >= 1
        assert detector.first_fault().sequence == 1
        assert detector.first_fault().invariant == "count-within-bound"

    def test_responder_marks_fault_handled(self, buggy_counter_cluster):
        detector = FaultDetector(responders=[lambda fault: True])
        buggy_counter_cluster.add_hook(detector)
        result = buggy_counter_cluster.run(max_events=60)
        assert all(violation.handled for violation in result.violations)

    def test_crashing_responder_does_not_mask_others(self, buggy_counter_cluster):
        def bad_responder(fault):
            raise RuntimeError("responder crashed")

        detector = FaultDetector(responders=[bad_responder, lambda fault: True])
        buggy_counter_cluster.add_hook(detector)
        result = buggy_counter_cluster.run(max_events=60)
        assert detector.fault_count >= 1
        assert all(violation.handled for violation in result.violations)

    def test_faults_for_filters_by_pid(self, buggy_counter_cluster):
        detector = FaultDetector()
        buggy_counter_cluster.add_hook(detector)
        buggy_counter_cluster.run(max_events=100)
        violating_pid = detector.first_fault().pid
        assert detector.faults_for(violating_pid)
        assert detector.faults_for("nonexistent") == []


class TestRecoveryTimeline:
    def test_stages_and_duration(self):
        timeline = RecoveryTimeline()
        timeline.add(1.0, "detect", "found it")
        timeline.add(2.5, "rollback", "rolled back")
        assert timeline.stages() == ["detect", "rollback"]
        assert timeline.duration() == pytest.approx(1.5)
        assert len(timeline.for_stage("detect")) == 1
        assert "rolled back" in timeline.describe()


# ----------------------------------------------------------------------
# Fault-response protocol (Figure 4)
# ----------------------------------------------------------------------
class TestFaultResponseProtocol:
    def _run_with_time_machine(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2, halt_on_violation=False
        )
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        detector = FaultDetector()
        cluster.add_hook(detector)
        cluster.run(max_events=40)
        return cluster, time_machine, detector

    def test_protocol_collects_consistent_checkpoint_and_models(self):
        cluster, time_machine, detector = self._run_with_time_machine()
        fault = detector.first_fault()
        coordinator = FaultResponseCoordinator(time_machine)
        run = coordinator.run(cluster, fault)
        assert run.detecting_pid == fault.pid
        assert set(run.notified_pids) == set(cluster.pids) - {fault.pid}
        assert set(run.global_checkpoint.pids()) == set(cluster.pids)
        assert run.consistent
        # The detecting process's checkpoint predates the fault.
        assert run.recovery_line.checkpoints[fault.pid].time <= fault.time
        # Models default to the registered implementations.
        assert run.model_factories[fault.pid] is BoundedCounterBuggy

    def test_model_override_used_when_registered(self):
        cluster, time_machine, detector = self._run_with_time_machine()
        coordinator = FaultResponseCoordinator(
            time_machine, model_overrides={"c1": BoundedCounterFixed}
        )
        run = coordinator.run(cluster, detector.first_fault())
        assert run.model_factories["c1"] is BoundedCounterFixed

    def test_environment_models_are_included_without_checkpoints(self):
        cluster, time_machine, detector = self._run_with_time_machine()
        coordinator = FaultResponseCoordinator(time_machine)
        coordinator.register_environment_model("disk", EnvironmentModel)
        run = coordinator.run(cluster, detector.first_fault())
        assert "disk" in run.responses
        assert run.responses["disk"].is_environment_model
        assert "disk" in run.modeled_environment
        assert "disk" not in run.global_checkpoint.pids()


# ----------------------------------------------------------------------
# Figure 8 registry
# ----------------------------------------------------------------------
class TestCapabilityMatrix:
    def test_paper_technique_rows_match_figure_8(self):
        matrix = default_matrix()
        assert matrix.matches_paper_claim(
            "Model Checking", frozenset({ServiceKind.PREVENTIVE, ServiceKind.COMPREHENSIVE})
        )
        assert matrix.matches_paper_claim(
            "Logging", frozenset({ServiceKind.DIAGNOSTIC, ServiceKind.OPPORTUNISTIC})
        )
        assert matrix.matches_paper_claim("Dynamic Updates", frozenset({ServiceKind.TREATMENT}))

    def test_fixd_row_is_derived_and_covers_every_service(self):
        matrix = default_matrix()
        fixd_row = matrix.get("FixD")
        assert fixd_row is not None
        assert fixd_row.services == FIXD_CLAIMED_SERVICES

    def test_partial_composition_provides_fewer_services(self):
        partial = derive_composite_capability("Partial", [Technique.LOGGING])
        assert partial.services == frozenset({ServiceKind.DIAGNOSTIC, ServiceKind.OPPORTUNISTIC})
        assert not partial.provides(ServiceKind.TREATMENT)

    def test_render_contains_all_rows_and_columns(self):
        text = default_matrix().render()
        for row in (*PAPER_TECHNIQUES, *PAPER_TOOLS):
            assert row.name.split(" (")[0] in text
        for service in ServiceKind:
            assert service.value in text

    def test_table_form(self):
        table = default_matrix().to_table()
        assert any(row["name"].startswith("FixD") for row in table)
        assert all(set(row) >= {"name", "kind"} for row in table)

    def test_technique_and_tool_partition(self):
        matrix = default_matrix()
        assert len(matrix.techniques()) == 5
        assert len(matrix.tools()) == 3  # liblog, CMC, FixD


# ----------------------------------------------------------------------
# Bug reports
# ----------------------------------------------------------------------
class TestBugReport:
    def test_to_text_contains_fault_and_recovery_line(self):
        fault = FaultEvent(pid="a", invariant="inv", detail="boom", time=3.0, sequence=1)
        report = BugReport(fault=fault, recovery_line_times={"a": 1.0, "b": 2.0})
        text = report.to_text()
        assert "inv" in text and "recovery line" in text.lower()
        assert "t=1.000" in text

    def test_violated_invariants_includes_fault_and_trails(self):
        fault = FaultEvent(pid="a", invariant="inv", detail="", time=0.0, sequence=1)
        report = BugReport(fault=fault)
        assert report.violated_invariants == ["inv"]
        assert report.trails == []


# ----------------------------------------------------------------------
# The FixD controller end-to-end
# ----------------------------------------------------------------------
class TestFixDController:
    def _build(self, config: FixDConfig | None = None, register_patch: bool = True):
        cluster = make_cluster({"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2)
        fixd = FixD(config)
        fixd.attach(cluster)
        if register_patch:
            fixd.register_patch(generate_patch(BoundedCounterBuggy, BoundedCounterFixed))
        return cluster, fixd

    def test_detect_rollback_investigate_heal_pipeline(self):
        cluster, fixd = self._build()
        result = cluster.run(max_events=200)
        assert result.stopped_reason == "quiescent"     # healed and finished
        assert fixd.detector.fault_count >= 1
        report = fixd.last_report
        assert report is not None and report.handled
        assert report.rollback is not None
        assert report.investigation is not None
        assert report.healed
        stages = report.bug_report.timeline.stages()
        assert stages[:2] == ["detect", "collect"]
        assert "heal" in stages

    def test_unattached_controller_rejects_cluster_access(self):
        fixd = FixD()
        with pytest.raises(RuntimeError):
            _ = fixd.cluster

    def test_without_patch_run_still_recovers_by_rollback(self):
        cluster, fixd = self._build(register_patch=False)
        result = cluster.run(max_events=60)
        # Rollback alone cannot fix the bug, so FixD handles repeated faults
        # until its budget is exhausted and the run halts.
        assert fixd.detector.fault_count >= 1
        assert fixd.last_report.heal is None

    def test_max_faults_budget_respected(self):
        config = FixDConfig(max_faults_handled=1)
        cluster, fixd = self._build(config, register_patch=False)
        cluster.run(max_events=400)
        assert len(fixd.reports) == 1

    def test_investigation_can_be_disabled(self):
        config = FixDConfig(investigate_on_fault=False)
        cluster, fixd = self._build(config)
        cluster.run(max_events=200)
        assert fixd.last_report.investigation is None

    def test_restart_strategy_configuration(self):
        config = FixDConfig(heal_strategy=RecoveryStrategy.RESTART_FROM_SCRATCH)
        cluster, fixd = self._build(config)
        cluster.run(max_events=200)
        assert fixd.last_report.heal.strategy is RecoveryStrategy.RESTART_FROM_SCRATCH

    def test_stats_summary(self):
        cluster, fixd = self._build()
        cluster.run(max_events=200)
        stats = fixd.stats()
        assert stats["scroll_entries"] > 0
        assert stats["faults_detected"] >= 1
        assert stats["time_machine"]["checkpoints"] > 0

    def test_scroll_records_the_run(self):
        cluster, fixd = self._build()
        cluster.run(max_events=200)
        assert len(fixd.scroll) > 0
        assert fixd.scroll.violations()

    def test_capability_matrix_available_from_controller(self):
        _, fixd = self._build()
        assert fixd.capability_matrix().get("FixD") is not None

    def test_healthy_application_produces_no_reports(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        fixd = FixD()
        fixd.attach(cluster)
        result = cluster.run()
        assert result.ok
        assert fixd.reports == []
        assert fixd.last_report is None
