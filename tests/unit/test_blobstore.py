"""Unit tests for the durable content-addressed blob store.

Every store lives under the ``store_path`` fixture (a pytest tmp_path), so
these tests are hermetic; they are marked ``durable`` and run via
``make resume-smoke`` rather than the default tier-1 selection.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.dsim.clock import VectorTimestamp
from repro.dsim.process import ProcessCheckpoint
from repro.errors import BlobIntegrityError, CheckpointError
from repro.timemachine import (
    BlobStore,
    CowPageStore,
    DurableCheckpointStore,
    RecoveryLine,
)

pytestmark = pytest.mark.durable


def make_line(label: str, sequence: int, state: dict) -> RecoveryLine:
    checkpoint = ProcessCheckpoint(
        pid="p0",
        sequence=sequence,
        time=float(sequence),
        state=dict(state),
        vt=VectorTimestamp.from_mapping({"p0": sequence}),
        lamport=sequence,
        rng_draws=sequence,
        sent_count=sequence,
        received_count=0,
        extra={"label": label},
    )
    return RecoveryLine(
        checkpoints={"p0": checkpoint},
        rolled_back_steps={},
        iterations=1,
        domino_effect=False,
        label=label,
    )


class TestBlobStore:
    def test_put_get_roundtrip(self, store_path):
        store = BlobStore(store_path)
        name, written = store.put(b"hello blob")
        assert written
        assert store.exists(name)
        assert store.get(name) == b"hello blob"

    def test_put_is_content_addressed_and_deduped(self, store_path):
        store = BlobStore(store_path)
        first, wrote_first = store.put(b"same bytes")
        second, wrote_second = store.put(b"same bytes")
        assert first == second
        assert wrote_first and not wrote_second  # second put touched no disk
        assert len(list(store.blob_names())) == 1

    def test_distinct_content_distinct_names(self, store_path):
        store = BlobStore(store_path)
        assert store.put(b"one")[0] != store.put(b"two")[0]
        assert len(list(store.blob_names())) == 2

    def test_get_unknown_name_raises(self, store_path):
        store = BlobStore(store_path)
        with pytest.raises(CheckpointError):
            store.get("0" * 64)

    def test_get_detects_corruption(self, store_path):
        store = BlobStore(store_path)
        name, _ = store.put(b"precious bytes")
        (path,) = [p for p in _blob_paths(store_path) if name in p]
        with open(path, "wb") as fh:
            fh.write(b"tampered!")
        with pytest.raises(BlobIntegrityError):
            store.get(name)

    def test_validate_integrity_reports_and_repairs(self, store_path):
        store = BlobStore(store_path)
        good, _ = store.put(b"good")
        bad, _ = store.put(b"soon to be corrupted")
        (bad_path,) = [p for p in _blob_paths(store_path) if bad in p]
        with open(bad_path, "wb") as fh:
            fh.write(b"garbage")
        report = store.validate_integrity()
        assert report.blobs_checked == 2
        assert report.corrupt == [bad]
        assert not report.ok
        report = store.validate_integrity(repair=True)
        assert report.removed
        assert store.validate_integrity().ok
        assert store.get(good) == b"good"

    def test_validate_integrity_sweeps_tmp_orphans(self, store_path):
        store = BlobStore(store_path)
        store.put(b"real blob")
        orphan = os.path.join(store_path, "blobs", "zz", "orphan.tmp")
        os.makedirs(os.path.dirname(orphan), exist_ok=True)
        with open(orphan, "wb") as fh:
            fh.write(b"half-writ")
        report = store.validate_integrity()
        assert report.tmp_orphans == 1
        assert not os.path.exists(orphan)  # always swept, even without repair
        assert store.validate_integrity().ok

    def test_bytes_on_disk_counts_blob_payloads(self, store_path):
        store = BlobStore(store_path)
        store.put(b"x" * 100)
        store.put(b"y" * 50)
        assert store.bytes_on_disk() == 150


@pytest.mark.usefixtures("durable_flush_mode")
class TestDurableCheckpointStore:
    def test_flush_and_restore_line(self, store_path):
        durable = DurableCheckpointStore(store_path, run_id="r1")
        durable.set_run_metadata({"scenario": {"name": "r1"}})
        durable.flush_line(make_line("first", 1, {"count": 1}))
        durable.flush_line(make_line("second", 2, {"count": 2}))
        manifest, checkpoints = DurableCheckpointStore.restore_line(store_path, "r1")
        assert manifest["label"] == "second"
        assert checkpoints["p0"].state == {"count": 2}
        assert checkpoints["p0"].sequence == 2
        assert checkpoints["p0"].vt.as_dict() == {"p0": 2}

    def test_restore_without_committed_lines_raises(self, store_path):
        DurableCheckpointStore(store_path, run_id="empty")
        with pytest.raises(CheckpointError):
            DurableCheckpointStore.restore_line(store_path, "empty")

    def test_restore_unknown_run_raises(self, store_path):
        DurableCheckpointStore(store_path, run_id="known")
        with pytest.raises(CheckpointError):
            DurableCheckpointStore.restore_line(store_path, "never-heard-of-it")

    def test_run_metadata_roundtrip(self, store_path):
        durable = DurableCheckpointStore(store_path, run_id="meta")
        durable.set_run_metadata({"scenario": {"name": "meta", "seed": 7}})
        metadata = DurableCheckpointStore.run_metadata(store_path, "meta")
        assert metadata["scenario"] == {"name": "meta", "seed": 7}
        assert metadata["run_id"] == "meta"
        assert "meta" in DurableCheckpointStore.run_ids(store_path)

    def test_identical_lines_dedupe_on_disk(self, store_path):
        durable = DurableCheckpointStore(store_path, run_id="dedup")
        state = {"table": {f"k{i:04d}": i for i in range(400)}}
        durable.flush_line(make_line("a", 1, state))
        stats_first = durable.stats()
        durable.flush_line(make_line("b", 2, state))
        stats_second = durable.stats()
        # same content: nothing new hits the disk beyond the manifest
        assert stats_second["bytes_on_disk"] == stats_first["bytes_on_disk"]
        assert stats_second["logical_bytes"] > stats_first["logical_bytes"]
        assert (
            stats_second["chunks_reused"] + stats_second["chunks_deduped"]
            > stats_first["chunks_reused"] + stats_first["chunks_deduped"]
        )

    def test_small_delta_writes_few_chunks(self, store_path):
        durable = DurableCheckpointStore(
            store_path, run_id="delta", chunk_threshold=100, chunk_elems=8
        )
        state = {"table": {f"k{i:04d}": i for i in range(400)}}
        durable.flush_line(make_line("base", 1, state))
        written_base = durable.stats()["chunks_written"]
        state["table"]["k0200"] = -1
        flushed = durable.flush_line(make_line("delta", 2, state))
        assert flushed["chunks_written"] <= 3  # dirty bucket + scalar keys
        assert durable.stats()["chunks_written"] - written_base <= 3

    def test_rotate_keeps_newest_lines_and_gc_frees_blobs(self, store_path):
        durable = DurableCheckpointStore(
            store_path, run_id="rot", chunk_threshold=100, chunk_elems=8
        )
        state = {"table": {f"k{i:04d}": f"gen0-{i}" for i in range(300)}}
        for generation in range(1, 5):
            for i in range(300):
                state["table"][f"k{i:04d}"] = f"gen{generation}-{i}"
            durable.flush_line(make_line(f"gen{generation}", generation, state))
        bytes_before = durable.blobs.bytes_on_disk()
        removed = durable.rotate(keep_lines=1)  # rotate runs GC itself
        assert removed > 0
        assert durable.blobs.bytes_on_disk() < bytes_before
        manifest, checkpoints = DurableCheckpointStore.restore_line(store_path, "rot")
        assert manifest["label"] == "gen4"
        assert checkpoints["p0"].state["table"]["k0000"] == "gen4-0"
        assert durable.blobs.validate_integrity().ok

    def test_gc_preserves_blobs_shared_across_runs(self, store_path):
        shared = {"table": {f"k{i:04d}": i for i in range(300)}}
        unrelated = {"table": {f"x{i:04d}": -i for i in range(300)}}
        run_a = DurableCheckpointStore(store_path, run_id="a")
        run_a.flush_line(make_line("a1", 1, shared))
        run_a.flush_line(make_line("a2", 2, unrelated))
        run_b = DurableCheckpointStore(store_path, run_id="b")
        run_b.flush_line(make_line("b1", 1, shared))
        # rotating run a down to its newest line drops its reference to the
        # shared state, but run b still holds one: those blobs must survive
        run_a.rotate(keep_lines=1)
        _, checkpoints = DurableCheckpointStore.restore_line(store_path, "b")
        assert checkpoints["p0"].state == shared
        assert run_a.blobs.validate_integrity().ok

    def test_manifest_blobs_match_inmemory_cow_blobs(self, store_path):
        """The chunk layout is a pure function of content: the durable store
        and an in-memory CowPageStore must address identical blobs."""
        durable = DurableCheckpointStore(
            store_path, run_id="pure", chunk_threshold=100, chunk_elems=8
        )
        state = {"table": {f"k{i:04d}": i for i in range(400)}, "epoch": 3}
        durable.flush_line(make_line("only", 1, state))
        manifest, checkpoints = DurableCheckpointStore.restore_line(store_path, "pure")
        oracle = CowPageStore(chunk_threshold=100, chunk_elems=8)
        restored = oracle.restore(oracle.capture("p0", state, 0.0))
        assert checkpoints["p0"].state == restored
        assert list(checkpoints["p0"].state["table"]) == list(restored["table"])

    def test_recurring_chunk_after_rotation_is_rewritten(self, store_path):
        """Regression: a chunk value that recurs after rotation GC'd its blob
        must be re-written, not recorded against the missing file.  With
        keep_lines=1, flushing A, B, A rotates every A-blob away between the
        first and third flush — the third must restore cleanly."""
        durable = DurableCheckpointStore(
            store_path, run_id="aba", chunk_threshold=100, chunk_elems=8, keep_lines=1
        )
        state_a = {"table": {f"k{i:04d}": f"a-{i}" for i in range(300)}}
        state_b = {"table": {f"k{i:04d}": f"b-{i}" for i in range(300)}}
        durable.flush_line(make_line("a1", 1, state_a))
        durable.flush_line(make_line("b", 2, state_b))  # rotation GCs the a-blobs
        durable.flush_line(make_line("a2", 3, state_a))  # the a-chunks recur
        manifest, checkpoints = DurableCheckpointStore.restore_line(store_path, "aba")
        assert manifest["label"] == "a2"
        assert checkpoints["p0"].state == state_a
        assert durable.blobs.validate_integrity().ok

    def test_run_id_rejects_path_separators(self, store_path):
        for bad in ("a/b", "a\\b", "..", "."):
            with pytest.raises(CheckpointError):
                DurableCheckpointStore(store_path, run_id=bad)

    def test_resolve_run_id_exact_and_by_name(self, store_path):
        durable = DurableCheckpointStore(store_path, run_id="kv-1a2b")
        durable.set_run_metadata({"scenario": {"name": "kv"}})
        durable.flush_line(make_line("only", 1, {"x": 1}))
        assert DurableCheckpointStore.resolve_run_id(store_path, "kv-1a2b") == "kv-1a2b"
        assert DurableCheckpointStore.resolve_run_id(store_path, "kv") == "kv-1a2b"
        with pytest.raises(CheckpointError):
            DurableCheckpointStore.resolve_run_id(store_path, "unknown")

    def test_resolve_run_id_prefers_most_recent_activity(self, store_path):
        for run_id, label in (("kv-old", "old"), ("kv-new", "new")):
            durable = DurableCheckpointStore(store_path, run_id=run_id)
            durable.set_run_metadata({"scenario": {"name": "kv"}})
            durable.flush_line(make_line(label, 1, {"x": label}))
        # age kv-old explicitly so the ordering does not hinge on write speed
        old_dir = os.path.join(store_path, "runs", "kv-old")
        for entry in os.listdir(old_dir):
            os.utime(os.path.join(old_dir, entry), (1, 1))
        assert DurableCheckpointStore.resolve_run_id(store_path, "kv") == "kv-new"

    def test_manifest_is_json_and_versioned(self, store_path):
        durable = DurableCheckpointStore(store_path, run_id="schema")
        durable.flush_line(make_line("only", 1, {"x": 1}))
        run_dir = os.path.join(store_path, "runs", "schema")
        manifests = sorted(p for p in os.listdir(run_dir) if p.startswith("line-"))
        assert manifests == ["line-000001.json"]
        with open(os.path.join(run_dir, manifests[0])) as fh:
            payload = json.load(fh)
        assert payload["schema"] == 2
        # v2 stamps the line's Scroll position at top level (None when the
        # line's checkpoints carried no stamp, as this hand-rolled one does)
        assert "scroll_position" in payload
        assert "p0" in payload["checkpoints"]

    def test_schema_v1_manifest_migrates_on_read(self, store_path):
        """A store written before scroll persistence (schema 1, the Scroll
        position only buried per-checkpoint) stays readable: the read path
        migrates the manifest to v2 and lifts the position to top level."""
        durable = DurableCheckpointStore(store_path, run_id="legacy")
        line = make_line("old", 1, {"x": 1})
        for checkpoint in line.checkpoints.values():
            checkpoint.extra["scroll_position"] = 17
        durable.flush_line(line)
        manifest_path = os.path.join(store_path, "runs", "legacy", "line-000001.json")
        with open(manifest_path) as fh:
            payload = json.load(fh)
        # rewrite on disk exactly as the v1 writer laid it out
        payload["schema"] = 1
        del payload["scroll_position"]
        with open(manifest_path, "w") as fh:
            json.dump(payload, fh)

        migrated = DurableCheckpointStore.last_line_manifest(store_path, "legacy")
        assert migrated["schema"] == 2
        assert migrated["scroll_position"] == 17
        _, checkpoints = DurableCheckpointStore.restore_line(store_path, "legacy")
        assert checkpoints["p0"].state == {"x": 1}

    def test_newer_manifest_schema_is_rejected(self, store_path):
        durable = DurableCheckpointStore(store_path, run_id="future")
        durable.flush_line(make_line("only", 1, {"x": 1}))
        manifest_path = os.path.join(store_path, "runs", "future", "line-000001.json")
        with open(manifest_path) as fh:
            payload = json.load(fh)
        payload["schema"] = 99
        with open(manifest_path, "w") as fh:
            json.dump(payload, fh)
        with pytest.raises(CheckpointError, match="schema"):
            DurableCheckpointStore.last_line_manifest(store_path, "future")


def _blob_paths(store_path):
    for dirpath, _dirnames, filenames in os.walk(os.path.join(store_path, "blobs")):
        for filename in filenames:
            yield os.path.join(dirpath, filename)
