"""Unit tests for the Scroll: entries, recording policies, storage and queries."""

from __future__ import annotations

import pytest

from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.failure import CrashFault, FailurePlan, MessageFault
from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.interceptor import InterceptionMode, RecordingPolicy, ReplayClock, ReplayRandomStream
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.scroll import Scroll
from repro.scroll.storage import append_entry, iter_scroll_records, load_scroll, save_scroll
from repro.errors import ReplayDivergenceError

from tests.conftest import PingPong, RandomWorker, make_cluster


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
class TestScrollEntry:
    def test_round_trip_through_record(self):
        entry = ScrollEntry(pid="a", kind=ActionKind.RANDOM, time=2.0, detail={"value": 7})
        rebuilt = ScrollEntry.from_record(entry.to_record())
        assert rebuilt.pid == "a"
        assert rebuilt.kind is ActionKind.RANDOM
        assert rebuilt.detail == {"value": 7}
        assert rebuilt.seq == entry.seq

    def test_nondeterministic_classification(self):
        receive = ScrollEntry(pid="a", kind=ActionKind.RECEIVE, time=0.0)
        send = ScrollEntry(pid="a", kind=ActionKind.SEND, time=0.0)
        assert receive.is_nondeterministic
        assert not send.is_nondeterministic

    def test_describe_contains_pid_and_kind(self):
        entry = ScrollEntry(pid="worker", kind=ActionKind.TIMER, time=1.5, detail={"name": "t"})
        assert "worker" in entry.describe()
        assert "timer" in entry.describe()


# ----------------------------------------------------------------------
# Scroll container and queries
# ----------------------------------------------------------------------
class TestScrollQueries:
    def _scroll(self) -> Scroll:
        scroll = Scroll()
        scroll.record("a", ActionKind.SEND, 1.0, {"message": {"msg_id": 1, "src": "a", "dst": "b", "kind": "X"}})
        scroll.record("b", ActionKind.RECEIVE, 2.0, {"message": {"msg_id": 1, "src": "a", "dst": "b", "kind": "X"}})
        scroll.record("b", ActionKind.RANDOM, 2.0, {"method": "random", "value": 0.5})
        scroll.record("a", ActionKind.VIOLATION, 3.0, {"invariant": "inv"})
        return scroll

    def test_len_and_iteration(self):
        scroll = self._scroll()
        assert len(scroll) == 4
        assert len(list(scroll)) == 4

    def test_entries_for_process(self):
        scroll = self._scroll()
        assert len(scroll.entries_for("b")) == 2

    def test_of_kind_and_violations(self):
        scroll = self._scroll()
        assert len(scroll.of_kind(ActionKind.SEND, ActionKind.RECEIVE)) == 2
        assert len(scroll.violations()) == 1

    def test_between_uses_half_open_interval(self):
        scroll = self._scroll()
        assert len(scroll.between(1.0, 3.0)) == 3

    def test_counts(self):
        scroll = self._scroll()
        assert scroll.counts_by_kind()["random"] == 1
        assert scroll.counts_by_process()["a"] == 2

    def test_pids_sorted(self):
        assert self._scroll().pids() == ["a", "b"]

    def test_last_entry(self):
        scroll = self._scroll()
        assert scroll.last_entry().kind is ActionKind.VIOLATION
        assert scroll.last_entry("b").kind is ActionKind.RANDOM

    def test_prefix_until(self):
        scroll = self._scroll()
        prefix = scroll.prefix_until(lambda entry: entry.kind is ActionKind.VIOLATION)
        assert len(prefix) == 3

    def test_slice_for(self):
        scroll = self._scroll()
        only_b = scroll.slice_for(["b"])
        assert only_b.pids() == ["b"]

    def test_received_and_sent_messages(self):
        scroll = self._scroll()
        assert len(scroll.received_messages("b")) == 1
        assert len(scroll.sent_messages("a")) == 1
        assert scroll.random_outcomes("b") == [{"method": "random", "value": 0.5}]

    def test_merge_preserves_send_before_receive_weighting(self):
        a = Scroll()
        b = Scroll()
        a.record("a", ActionKind.SEND, 1.0, {"message": {"msg_id": 9}})
        b.record("b", ActionKind.RECEIVE, 1.0, {"message": {"msg_id": 9}})
        merged = Scroll.merge([b, a])
        assert len(merged) == 2

    def test_round_trip_records(self):
        scroll = self._scroll()
        rebuilt = Scroll.from_records(scroll.to_records())
        assert len(rebuilt) == len(scroll)
        assert rebuilt[0].pid == scroll[0].pid


# ----------------------------------------------------------------------
# Recording policies
# ----------------------------------------------------------------------
class TestRecordingPolicy:
    def test_syscall_mode_is_superset_of_library_mode(self):
        library = RecordingPolicy(InterceptionMode.LIBRARY).recorded_kinds()
        syscall = RecordingPolicy(InterceptionMode.SYSCALL).recorded_kinds()
        assert library < syscall
        assert ActionKind.CLOCK_READ in syscall and ActionKind.CLOCK_READ not in library

    def test_blackbox_mode_records_only_remote_interactions(self):
        kinds = RecordingPolicy(InterceptionMode.BLACKBOX).recorded_kinds()
        assert kinds == frozenset({ActionKind.SEND, ActionKind.RECEIVE})

    def test_should_record(self):
        policy = RecordingPolicy(InterceptionMode.LIBRARY)
        assert policy.should_record(ActionKind.RANDOM)
        assert not policy.should_record(ActionKind.CLOCK_READ)


# ----------------------------------------------------------------------
# Recorder attached to a cluster
# ----------------------------------------------------------------------
class TestScrollRecorder:
    def test_records_sends_receives_and_randomness(self):
        cluster = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=3)
        recorder = ScrollRecorder()
        cluster.add_hook(recorder)
        cluster.run()
        counts = recorder.scroll.counts_by_kind()
        assert counts["send"] >= 1
        assert counts["receive"] >= 1
        assert counts["random"] >= 1
        assert counts["timer"] >= 1
        assert counts["clock_read"] >= 1

    def test_library_mode_skips_clock_reads(self):
        cluster = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=3)
        recorder = ScrollRecorder(policy=RecordingPolicy(InterceptionMode.LIBRARY))
        cluster.add_hook(recorder)
        cluster.run()
        counts = recorder.scroll.counts_by_kind()
        assert "clock_read" not in counts
        assert counts["timer"] >= 1      # timers are library-visible (libc alarm/select)
        assert counts["send"] >= 1

    def test_blackbox_mode_records_fewer_entries(self):
        def run_with(policy):
            cluster = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=3)
            recorder = ScrollRecorder(policy=policy)
            cluster.add_hook(recorder)
            cluster.run()
            return len(recorder.scroll)

        blackbox = run_with(RecordingPolicy(InterceptionMode.BLACKBOX))
        syscall = run_with(RecordingPolicy(InterceptionMode.SYSCALL))
        assert blackbox < syscall

    def test_payloads_can_be_omitted(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        recorder = ScrollRecorder(policy=RecordingPolicy(record_payloads=False))
        cluster.add_hook(recorder)
        cluster.run()
        sends = recorder.scroll.of_kind(ActionKind.SEND)
        assert all(entry.detail["message"]["payload"] is None for entry in sends)

    def test_crash_and_drop_recorded(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.set_failure_plan(
            FailurePlan(
                crashes=[CrashFault("p1", at=3.0)],
                message_faults=[MessageFault("drop", match_kind="PING", count=1, after=1.5)],
            )
        )
        recorder = ScrollRecorder()
        cluster.add_hook(recorder)
        cluster.run()
        counts = recorder.scroll.counts_by_kind()
        assert counts.get("crash") == 1
        assert counts.get("drop", 0) >= 1

    def test_violation_recorded(self, buggy_counter_cluster):
        recorder = ScrollRecorder()
        buggy_counter_cluster.add_hook(recorder)
        buggy_counter_cluster.run(max_events=100)
        assert len(recorder.scroll.violations()) >= 1


# ----------------------------------------------------------------------
# Replay-side substitutes
# ----------------------------------------------------------------------
class TestReplaySubstitutes:
    def test_replay_stream_returns_recorded_values_in_order(self):
        stream = ReplayRandomStream(
            "a",
            [{"method": "random", "value": 0.25}, {"method": "randint", "value": 7}],
        )
        assert stream.random() == 0.25
        assert stream.randint(0, 10) == 7
        assert stream.draws == 2

    def test_replay_stream_detects_method_mismatch(self):
        stream = ReplayRandomStream("a", [{"method": "random", "value": 0.25}])
        with pytest.raises(ReplayDivergenceError):
            stream.randint(0, 10)

    def test_replay_stream_detects_exhaustion(self):
        stream = ReplayRandomStream("a", [])
        with pytest.raises(ReplayDivergenceError):
            stream.random()

    def test_replay_stream_restore(self):
        stream = ReplayRandomStream("a", [{"method": "random", "value": 0.1}])
        stream.random()
        stream.restore(0)
        assert stream.random() == 0.1
        with pytest.raises(ReplayDivergenceError):
            stream.restore(5)

    def test_replay_clock_returns_recorded_then_fallback(self):
        clock = ReplayClock("a", [1.0, 2.0])
        assert clock.read() == 1.0
        assert clock.read() == 2.0
        assert clock.read() == 2.0
        clock.advance_fallback(9.0)
        assert clock.read() == 9.0


# ----------------------------------------------------------------------
# Storage
# ----------------------------------------------------------------------
class TestScrollStorage:
    def test_save_and_load_round_trip(self, tmp_path):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        recorder = ScrollRecorder()
        cluster.add_hook(recorder)
        cluster.run()
        path = tmp_path / "scroll.jsonl"
        written = save_scroll(recorder.scroll, path)
        loaded = load_scroll(path)
        assert written == len(recorder.scroll) == len(loaded)
        assert loaded[0].kind == recorder.scroll[0].kind

    def test_iter_scroll_records_streams_raw_dicts(self, tmp_path):
        scroll = Scroll()
        scroll.record("a", ActionKind.SEND, 0.0, {"message": {"msg_id": 1}})
        path = tmp_path / "s.jsonl"
        save_scroll(scroll, path)
        records = list(iter_scroll_records(path))
        assert records[0]["pid"] == "a"

    def test_append_entry_creates_file(self, tmp_path):
        path = tmp_path / "nested" / "s.jsonl"
        append_entry(path, ScrollEntry(pid="a", kind=ActionKind.ANNOTATION, time=0.0, detail={"text": "hi"}))
        append_entry(path, ScrollEntry(pid="a", kind=ActionKind.ANNOTATION, time=1.0, detail={"text": "bye"}))
        assert len(load_scroll(path)) == 2
