"""Unit tests for the process programming model and the cluster run loop."""

from __future__ import annotations

import pytest

from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.failure import (
    CrashFault,
    FailurePlan,
    MessageFault,
    PartitionFault,
    StateCorruptionFault,
)
from repro.dsim.network import NetworkConfig
from repro.dsim.channel import ChannelConfig
from repro.dsim.process import Process, handler, invariant, timer_handler
from repro.errors import InvariantViolation, SimulationError, UnknownProcessError

from tests.conftest import BoundedCounterBuggy, PingPong, RandomWorker, make_cluster


# ----------------------------------------------------------------------
# Process basics
# ----------------------------------------------------------------------
class TestProcessBasics:
    def test_unbound_process_has_no_context(self):
        process = PingPong()
        with pytest.raises(SimulationError):
            _ = process.pid

    def test_handler_registration_from_decorators(self):
        process = PingPong()
        assert "PING" in process._handlers
        assert "count-bounded" in process._invariants

    def test_subclass_overrides_parent_handler(self):
        class Child(PingPong):
            @handler("PING")
            def on_ping(self, msg):
                self.state["count"] = 99

        cluster = make_cluster({"p0": Child, "p1": Child}, seed=1)
        cluster.run(max_events=10)
        assert cluster.process("p1").state["count"] == 99

    def test_unhandled_message_raises_by_default(self):
        class Sender(Process):
            def on_start(self):
                if self.pid == "s0":
                    self.send("s1", "UNKNOWN", None)

        cluster = make_cluster({"s0": Sender, "s1": Sender}, seed=1)
        with pytest.raises(SimulationError):
            cluster.run()

    def test_peers_excludes_self(self, ping_cluster):
        ping_cluster.start()
        assert ping_cluster.process("p0").peers == ("p1",)

    def test_vector_clock_advances_on_communication(self, ping_cluster):
        ping_cluster.run()
        vt0 = ping_cluster.process("p0").vector_timestamp
        vt1 = ping_cluster.process("p1").vector_timestamp
        assert vt0.component("p1") > 0
        assert vt1.component("p0") > 0

    def test_lamport_time_nonzero_after_run(self, ping_cluster):
        ping_cluster.run()
        assert ping_cluster.process("p0").lamport_time > 0

    def test_message_counters(self, ping_cluster):
        ping_cluster.run()
        p0 = ping_cluster.process("p0")
        assert p0.messages_sent > 0 and p0.messages_received > 0

    def test_negative_timer_delay_rejected(self, ping_cluster):
        ping_cluster.start()
        with pytest.raises(SimulationError):
            ping_cluster.process("p0").set_timer("x", -1.0)

    def test_checkpoint_and_restore_round_trip(self, ping_cluster):
        result = ping_cluster.run()
        process = ping_cluster.process("p1")
        checkpoint = process.capture_checkpoint(ping_cluster.now)
        original_count = process.state["count"]
        process.state["count"] = 999
        process.restore_checkpoint(checkpoint)
        assert process.state["count"] == original_count

    def test_checkpoint_restore_into_wrong_process_rejected(self, ping_cluster):
        ping_cluster.run()
        checkpoint = ping_cluster.process("p0").capture_checkpoint(0.0)
        with pytest.raises(SimulationError):
            ping_cluster.process("p1").restore_checkpoint(checkpoint)

    def test_checkpoint_restores_rng_cursor(self, random_worker_cluster):
        random_worker_cluster.run(max_events=50)
        process = random_worker_cluster.process("r1")
        checkpoint = process.capture_checkpoint(random_worker_cluster.now)
        value_after = process.randint(0, 100)
        process.restore_checkpoint(checkpoint)
        assert process.randint(0, 100) == value_after

    def test_invariant_violation_carries_pid_and_name(self):
        class Bad(Process):
            def on_start(self):
                self.state["x"] = -1

            @invariant("x-positive")
            def x_positive(self):
                return self.state["x"] >= 0

        cluster = make_cluster({"b0": Bad}, seed=1, raise_on_violation=True)
        with pytest.raises(InvariantViolation) as excinfo:
            cluster.run()
        assert excinfo.value.name == "x-positive"
        assert excinfo.value.pid == "b0"

    def test_invariant_exception_is_reported_as_violation(self):
        class Exploding(Process):
            def on_start(self):
                self.state["x"] = 1

            @invariant("boom")
            def boom(self):
                raise RuntimeError("invariant code crashed")

        cluster = make_cluster({"e0": Exploding}, seed=1)
        result = cluster.run()
        assert len(result.violations) == 1
        assert result.violations[0].invariant == "boom"


# ----------------------------------------------------------------------
# Cluster run loop
# ----------------------------------------------------------------------
class TestClusterRunLoop:
    def test_ping_pong_round_trip(self, ping_cluster):
        result = ping_cluster.run()
        assert result.stopped_reason == "quiescent"
        counts = sorted(p["count"] for p in result.process_states.values())
        assert counts == [4, 5]

    def test_same_seed_same_result(self):
        results = []
        for _ in range(2):
            cluster = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=9)
            results.append(cluster.run().process_states)
        assert results[0] == results[1]

    def test_different_seed_may_differ_in_draws(self):
        a = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=1).run().process_states
        b = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=2).run().process_states
        assert a != b

    def test_empty_cluster_rejected(self):
        with pytest.raises(SimulationError):
            Cluster().run()

    def test_duplicate_pid_rejected(self):
        cluster = Cluster()
        cluster.add_process("a", PingPong)
        with pytest.raises(SimulationError):
            cluster.add_process("a", PingPong)

    def test_add_process_after_start_rejected(self, ping_cluster):
        ping_cluster.start()
        with pytest.raises(SimulationError):
            ping_cluster.add_process("late", PingPong)

    def test_unknown_process_lookup(self, ping_cluster):
        with pytest.raises(UnknownProcessError):
            ping_cluster.process("nope")

    def test_event_limit_stops_run(self, ping_cluster):
        result = ping_cluster.run(max_events=2)
        assert result.stopped_reason == "event-limit"
        assert result.events_executed == 2

    def test_time_limit_stops_run(self):
        cluster = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=1)
        result = cluster.run(until=1.0)
        assert result.stopped_reason == "time-limit"
        assert result.final_time <= 1.0

    def test_add_processes_helper(self):
        cluster = Cluster(ClusterConfig(seed=1))
        pids = cluster.add_processes("w", 3, PingPong)
        assert pids == ["w0", "w1", "w2"]
        assert cluster.pids == ["w0", "w1", "w2"]

    def test_halt_on_violation_default(self, buggy_counter_cluster):
        result = buggy_counter_cluster.run(max_events=100)
        assert result.stopped_reason.startswith("invariant-violation")
        assert not result.ok

    def test_violations_recorded_without_halt(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy},
            seed=2,
            halt_on_violation=False,
        )
        result = cluster.run(max_events=60)
        assert len(result.violations) > 1
        assert result.violations_for("c1") or result.violations_for("c0")

    def test_check_invariants_can_be_disabled(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy},
            seed=2,
            check_invariants=False,
        )
        result = cluster.run(max_events=60)
        assert result.violations == []

    def test_trace_records_sends_and_receives(self, ping_cluster):
        ping_cluster.run()
        actions = {record.action for record in ping_cluster.trace}
        assert {"send", "receive"} <= actions

    def test_timer_cancellation(self):
        class Canceller(Process):
            def on_start(self):
                self.state["fired"] = 0
                self.set_timer("tick", 5.0)
                self.cancel_timer("tick")

            @timer_handler("tick")
            def on_tick(self, payload):
                self.state["fired"] += 1

        cluster = make_cluster({"t0": Canceller}, seed=1)
        cluster.run()
        assert cluster.process("t0").state["fired"] == 0

    def test_restart_process_requires_factory(self):
        cluster = Cluster(ClusterConfig(seed=1))
        cluster.add_process("inst", PingPong())   # instance, not factory
        cluster.add_process("fact", PingPong)
        cluster.start()
        with pytest.raises(SimulationError):
            cluster.restart_process("inst")
        fresh = cluster.restart_process("fact")
        assert fresh.state["count"] == 0


# ----------------------------------------------------------------------
# Fault injection behaviour in the cluster
# ----------------------------------------------------------------------
class TestClusterFaultInjection:
    def test_crash_stops_a_process(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.set_failure_plan(FailurePlan(crashes=[CrashFault("p1", at=2.0)]))
        result = cluster.run()
        assert result.process_states["p1"]["count"] < 5

    def test_crash_and_recover_emits_trace(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.set_failure_plan(
            FailurePlan(crashes=[CrashFault("p1", at=2.0, recover_at=6.0)])
        )
        cluster.run()
        actions = [record.action for record in cluster.trace if record.pid == "p1"]
        assert "crash" in actions and "recover" in actions

    def test_message_drop_fault(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.set_failure_plan(
            FailurePlan(message_faults=[MessageFault("drop", match_kind="PING", count=1)])
        )
        result = cluster.run()
        # The very first PING is dropped, so nobody ever counts anything.
        assert all(state["count"] == 0 for state in result.process_states.values())

    def test_partition_fault_blocks_traffic(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.set_failure_plan(
            FailurePlan(partitions=[PartitionFault([["p0"], ["p1"]], start=0.0, end=100.0)])
        )
        result = cluster.run()
        assert all(state["count"] == 0 for state in result.process_states.values())
        assert result.network_stats["dropped"] >= 1

    def test_state_corruption_triggers_invariant(self):
        def corrupt(state):
            state["count"] = 999

        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.set_failure_plan(
            FailurePlan(corruptions=[StateCorruptionFault("p1", at=3.0, mutator=corrupt)])
        )
        result = cluster.run()
        assert any(v.invariant == "count-bounded" for v in result.violations)

    def test_lossy_network_config(self):
        config = ClusterConfig(
            seed=4, network=NetworkConfig(default_channel=ChannelConfig(drop_rate=1.0))
        )
        cluster = Cluster(config)
        cluster.add_process("p0", PingPong)
        cluster.add_process("p1", PingPong)
        result = cluster.run()
        assert result.network_stats["dropped"] >= 1
        assert all(state["count"] == 0 for state in result.process_states.values())


class TestBackendBinding:
    def test_backend_instance_cannot_be_shared_between_clusters(self):
        from repro.dsim.backend import SimBackend

        backend = SimBackend()
        first = Cluster(ClusterConfig(seed=1), backend=backend)
        assert first.backend is backend
        with pytest.raises(SimulationError, match="already bound"):
            Cluster(ClusterConfig(seed=1), backend=backend)

    def test_unknown_backend_spec_rejected(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            Cluster(ClusterConfig(seed=1), backend="quantum")
