"""Unit tests for the Investigator: states, guarded models, explorer, ModelD,
the CMC-style checker, process-model adapters and the facade."""

from __future__ import annotations

import pytest

from repro.dsim.process import Process, handler, invariant
from repro.errors import ModelCheckingError, StateSpaceLimitExceeded
from repro.investigator.cmc import CMCChecker, CMCConfig, GenericProperty
from repro.investigator.explorer import Explorer, SearchOrder
from repro.investigator.frontend import ModelBuilder
from repro.investigator.guarded import Action, GuardedModel
from repro.investigator.heap import SimulatedHeap
from repro.investigator.invariants import InvariantSpec, always, never, state_variable_bounded
from repro.investigator.investigator import Investigator, InvestigatorConfig
from repro.investigator.modeld import ModelD, ModelDConfig
from repro.investigator.models import DistributedSystemModel, EnvironmentModel, SystemState
from repro.investigator.state import ModelState, fingerprint
from repro.investigator.trails import Trail, TrailStep, deduplicate_trails

from tests.conftest import make_cluster


# ----------------------------------------------------------------------
# Fingerprints and model states
# ----------------------------------------------------------------------
class TestStateFingerprint:
    def test_dict_order_does_not_matter(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_sets_are_canonicalised(self):
        assert fingerprint({"s": {3, 1, 2}}) == fingerprint({"s": {1, 2, 3}})

    def test_different_values_differ(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_nested_structures(self):
        a = {"outer": [{"x": 1}, {"y": {2, 3}}]}
        b = {"outer": [{"x": 1}, {"y": {3, 2}}]}
        assert fingerprint(a) == fingerprint(b)

    def test_model_state_accessors(self):
        state = ModelState.from_dict({"x": 1, "y": "s"})
        assert state["x"] == 1
        assert state.get("missing", 9) == 9
        assert "y" in state
        assert sorted(state) == ["x", "y"]
        with pytest.raises(KeyError):
            _ = state["zzz"]

    def test_with_values_is_pure(self):
        state = ModelState.from_dict({"x": 1})
        updated = state.with_values(x=2, y=3)
        assert state["x"] == 1
        assert updated["x"] == 2 and updated["y"] == 3

    def test_fingerprint_stable_under_construction_order(self):
        a = ModelState.from_dict({"x": 1, "y": 2})
        b = ModelState.from_dict({"y": 2, "x": 1})
        assert a.fingerprint() == b.fingerprint()


# ----------------------------------------------------------------------
# Guarded models
# ----------------------------------------------------------------------
def build_counter_model(limit: int = 3) -> GuardedModel:
    initial = ModelState.from_dict({"n": 0})
    return GuardedModel(
        initial_state=initial,
        actions=[
            Action(
                "inc",
                effect=lambda s: s.with_values(n=s["n"] + 1),
                guard=lambda s: s["n"] < limit,
            )
        ],
        invariants=[always("n-bounded", lambda s: s["n"] <= limit)],
    )


class TestGuardedModel:
    def test_enabled_actions_respect_guards(self):
        model = build_counter_model(1)
        assert [a.name for a in model.enabled_actions(model.initial_state)] == ["inc"]
        done = ModelState.from_dict({"n": 1})
        assert model.enabled_actions(done) == []

    def test_apply_wraps_single_successor_in_list(self):
        model = build_counter_model()
        successors = model.action("inc").apply(model.initial_state)
        assert len(successors) == 1 and successors[0]["n"] == 1

    def test_effect_returning_none_rejected(self):
        action = Action("bad", effect=lambda s: None)
        with pytest.raises(ModelCheckingError):
            action.apply(ModelState.from_dict({}))

    def test_add_remove_replace_actions(self):
        model = build_counter_model()
        model.add_action(Action("dec", effect=lambda s: s.with_values(n=s["n"] - 1)))
        assert "dec" in model.action_names()
        removed = model.remove_action("dec")
        assert removed.name == "dec"
        with pytest.raises(ModelCheckingError):
            model.remove_action("dec")
        with pytest.raises(ModelCheckingError):
            model.replace_action(Action("missing", effect=lambda s: s))

    def test_swap_tagged_actions(self):
        model = build_counter_model()
        model.add_action(Action("net-send", effect=lambda s: s, tags=frozenset({"communication"})))
        removed = model.swap_tagged_actions(
            "communication", [Action("net-model", effect=lambda s: s)]
        )
        assert [a.name for a in removed] == ["net-send"]
        assert "net-model" in model.action_names()
        assert "net-send" not in model.action_names()

    def test_violated_invariants(self):
        model = build_counter_model(2)
        bad = ModelState.from_dict({"n": 5})
        assert [inv.name for inv in model.violated_invariants(bad)] == ["n-bounded"]


class TestInvariantSpecs:
    def test_predicate_exception_counts_as_violation(self):
        spec = InvariantSpec("boom", lambda s: 1 / 0)
        assert not spec.holds(ModelState.from_dict({}))

    def test_never_inverts(self):
        spec = never("no-flag", lambda s: s["flag"])
        assert spec.holds(ModelState.from_dict({"flag": False}))
        assert not spec.holds(ModelState.from_dict({"flag": True}))

    def test_state_variable_bounded(self):
        spec = state_variable_bounded("x-range", "x", low=0, high=10)
        assert spec.holds(ModelState.from_dict({"x": 5}))
        assert not spec.holds(ModelState.from_dict({"x": -1}))
        assert spec.holds(ModelState.from_dict({}))  # missing variable is tolerated


# ----------------------------------------------------------------------
# Explorer
# ----------------------------------------------------------------------
class TestExplorer:
    def test_bfs_explores_whole_bounded_space(self):
        model = build_counter_model(4)
        result = Explorer(model, SearchOrder.BFS, check_deadlocks=False).explore()
        assert result.states_explored == 5  # n = 0..4
        assert result.ok

    def test_violation_found_with_shortest_trail_by_bfs(self):
        model = build_counter_model(3)
        model.add_invariant(always("n-below-2", lambda s: s["n"] < 2))
        result = Explorer(model, SearchOrder.BFS, check_deadlocks=False).explore()
        assert not result.ok
        assert result.shortest_violation().length == 2
        assert result.shortest_violation().actions == ["inc", "inc"]

    def test_dfs_finds_same_violation(self):
        model = build_counter_model(3)
        model.add_invariant(always("n-below-2", lambda s: s["n"] < 2))
        result = Explorer(model, SearchOrder.DFS, check_deadlocks=False).explore()
        assert not result.ok

    def test_deadlock_detection(self):
        model = build_counter_model(2)   # no action enabled at n=2, not marked terminal
        result = Explorer(model, SearchOrder.BFS, check_deadlocks=True).explore()
        assert result.deadlocks
        assert result.deadlocks[0].violated_invariant == "no-deadlock"

    def test_terminal_predicate_suppresses_deadlock(self):
        model = build_counter_model(2)
        result = Explorer(
            model,
            SearchOrder.BFS,
            check_deadlocks=True,
            terminal_predicate=lambda s: s["n"] == 2,
        ).explore()
        assert not result.deadlocks

    def test_state_budget_truncates(self):
        model = build_counter_model(10_000)
        result = Explorer(model, SearchOrder.BFS, max_states=10, check_deadlocks=False).explore()
        assert result.truncated
        assert result.states_explored <= 10

    def test_strict_budget_raises(self):
        model = build_counter_model(10_000)
        explorer = Explorer(
            model, SearchOrder.BFS, max_states=10, strict_budget=True, check_deadlocks=False
        )
        with pytest.raises(StateSpaceLimitExceeded):
            explorer.explore()

    def test_single_path_follows_first_enabled_action(self):
        model = build_counter_model(5)
        result = Explorer(model, SearchOrder.SINGLE_PATH, check_deadlocks=False).explore()
        assert result.max_depth_reached == 5
        assert result.transitions == 5

    def test_single_path_with_custom_schedule(self):
        model = build_counter_model(5)
        model.add_action(Action("stop", effect=lambda s: s.with_values(n=99), guard=lambda s: s["n"] == 2))
        picked = []

        def schedule(state, enabled):
            choice = enabled[-1]
            picked.append(choice.name)
            return choice

        Explorer(model, SearchOrder.SINGLE_PATH, schedule=schedule, check_deadlocks=False).explore()
        assert "stop" in picked

    def test_random_walks_find_shallow_bug(self):
        model = build_counter_model(3)
        model.add_invariant(always("n-below-2", lambda s: s["n"] < 2))
        result = Explorer(
            model, SearchOrder.RANDOM, max_states=500, max_depth=10, random_seed=1, check_deadlocks=False
        ).explore()
        assert not result.ok

    def test_heuristic_search_uses_scoring(self):
        model = build_counter_model(50)
        model.add_invariant(always("n-below-40", lambda s: s["n"] < 40))
        result = Explorer(
            model,
            SearchOrder.HEURISTIC,
            heuristic=lambda s: s["n"],
            stop_at_first_violation=True,
            check_deadlocks=False,
        ).explore()
        assert not result.ok

    def test_reachability_graph_built_on_request(self):
        model = build_counter_model(3)
        result = Explorer(model, SearchOrder.BFS, build_graph=True, check_deadlocks=False).explore()
        assert result.reachability_graph
        assert result.transitions == sum(len(edges) for edges in result.reachability_graph.values())


class TestTrails:
    def test_describe_includes_invariant_and_steps(self):
        trail = Trail(
            violated_invariant="inv",
            steps=[TrailStep("a", "fp1", "{x=1}", 1), TrailStep("b", "fp2", "{x=2}", 2)],
        )
        text = trail.describe()
        assert "inv" in text and "a" in text and "{x=2}" in text
        assert trail.length == 2

    def test_describe_truncates(self):
        trail = Trail(
            violated_invariant="inv",
            steps=[TrailStep(f"s{i}", f"fp{i}", "{}", i) for i in range(10)],
        )
        assert "omitted" in trail.describe(max_steps=3)

    def test_shares_prefix(self):
        a = Trail("inv", [TrailStep("x", "1", "", 1), TrailStep("y", "2", "", 2)])
        b = Trail("inv", [TrailStep("x", "1", "", 1), TrailStep("z", "3", "", 2)])
        assert a.shares_prefix_with(b) == 1

    def test_deduplicate_keeps_shortest_per_final_state(self):
        short = Trail("inv", [TrailStep("a", "same", "", 1)])
        long = Trail("inv", [TrailStep("b", "x", "", 1), TrailStep("c", "same", "", 2)])
        kept = deduplicate_trails([long, short])
        assert len(kept) == 1 and kept[0] is short


# ----------------------------------------------------------------------
# Front-end, ModelD and CMC
# ----------------------------------------------------------------------
class TestModelBuilderAndModelD:
    def _mutex_builder(self) -> ModelBuilder:
        builder = ModelBuilder("mutex")
        builder.variables(a=False, b=False)
        builder.add_action("enter-a", lambda s: s.with_values(a=True), guard=lambda s: not s["a"])
        builder.add_action("enter-b", lambda s: s.with_values(b=True), guard=lambda s: not s["b"])
        builder.add_action("leave-a", lambda s: s.with_values(a=False), guard=lambda s: s["a"])
        builder.add_action("leave-b", lambda s: s.with_values(b=False), guard=lambda s: s["b"])
        builder.invariant("mutex", lambda s: not (s["a"] and s["b"]))
        return builder

    def test_duplicate_declarations_rejected(self):
        builder = ModelBuilder("m")
        builder.variable("x", 0)
        with pytest.raises(ModelCheckingError):
            builder.variable("x", 1)
        builder.add_action("a", lambda s: s)
        with pytest.raises(ModelCheckingError):
            builder.add_action("a", lambda s: s)

    def test_build_requires_actions(self):
        with pytest.raises(ModelCheckingError):
            ModelBuilder("empty").build()

    def test_action_decorator_form(self):
        builder = ModelBuilder("m")
        builder.variable("x", 0)

        @builder.action("bump")
        def bump(state):
            return state.with_values(x=state["x"] + 1)

        model = builder.build()
        assert model.action_names() == ["bump"]

    def test_modeld_finds_mutex_violation_and_counts_states(self):
        checker = ModelD.from_builder(self._mutex_builder(), ModelDConfig(max_states=100))
        result = checker.check()
        assert not result.ok
        assert result.shortest_violation().length == 2

    def test_modeld_dynamic_injection_fixes_the_model(self):
        checker = ModelD.from_builder(self._mutex_builder(), ModelDConfig(max_states=100))
        checker.inject_action(
            Action("enter-a", effect=lambda s: s.with_values(a=True), guard=lambda s: not s["a"] and not s["b"])
        )
        checker.inject_action(
            Action("enter-b", effect=lambda s: s.with_values(b=True), guard=lambda s: not s["b"] and not s["a"])
        )
        assert checker.check().ok

    def test_modeld_single_path_and_random(self):
        checker = ModelD.from_builder(self._mutex_builder(), ModelDConfig(max_states=100))
        single = checker.run_single_path()
        assert single.search_order is SearchOrder.SINGLE_PATH
        random_result = checker.random_walks(seed=3)
        assert random_result.search_order is SearchOrder.RANDOM

    def test_swap_communication_actions(self):
        builder = ModelBuilder("net")
        builder.variable("sent", 0)
        builder.add_action(
            "send-real",
            lambda s: s.with_values(sent=s["sent"] + 1),
            guard=lambda s: s["sent"] < 1,
            tags={"communication"},
        )
        checker = ModelD.from_builder(builder)
        removed = checker.swap_communication_actions(
            [Action("send-model", effect=lambda s: s.with_values(sent=s["sent"] + 1), guard=lambda s: s["sent"] < 1)]
        )
        assert [a.name for a in removed] == ["send-real"]
        assert "send-model" in checker.model.action_names()


class TestSimulatedHeapAndCMC:
    def test_heap_alloc_access_free_cycle(self):
        heap = SimulatedHeap()
        heap, block = heap.malloc(32, tag="buf")
        heap = heap.access(block)
        heap = heap.free(block)
        assert not heap.has_errors
        assert heap.live_blocks == []

    def test_heap_detects_use_after_free_and_double_free(self):
        heap = SimulatedHeap()
        heap, block = heap.malloc(8)
        heap = heap.free(block)
        heap = heap.access(block)
        heap = heap.free(block)
        kinds = {error.kind for error in heap.errors}
        assert kinds == {"invalid-access", "double-free"}

    def test_heap_detects_wild_access_and_invalid_free(self):
        heap = SimulatedHeap()
        heap = heap.access(99)
        heap = heap.free(42)
        kinds = [error.kind for error in heap.errors]
        assert "invalid-access" in kinds and "invalid-free" in kinds

    def test_heap_leak_report(self):
        heap, _ = SimulatedHeap().malloc(16, tag="leaky")
        leaks = heap.leaks()
        assert len(leaks) == 1 and leaks[0].kind == "leak"

    def test_heap_invalid_size_rejected(self):
        with pytest.raises(ModelCheckingError):
            SimulatedHeap().malloc(0)

    def _allocator_builder(self, leak: bool) -> ModelBuilder:
        builder = ModelBuilder("alloc")
        builder.variables(heap=SimulatedHeap(), done=False, block=None)
        builder.add_action(
            "alloc",
            lambda s: (lambda heap_block: s.with_values(heap=heap_block[0], block=heap_block[1]))(
                s["heap"].malloc(8)
            ),
            guard=lambda s: s["block"] is None,
        )
        if leak:
            builder.add_action(
                "finish", lambda s: s.with_values(done=True), guard=lambda s: s["block"] is not None and not s["done"]
            )
        else:
            builder.add_action(
                "finish",
                lambda s: s.with_values(heap=s["heap"].free(s["block"]), done=True),
                guard=lambda s: s["block"] is not None and not s["done"],
            )
        builder.terminal(lambda s: s["done"])
        return builder

    def test_cmc_reports_leak_at_termination(self):
        builder = self._allocator_builder(leak=True)
        checker = CMCChecker(builder.build(), CMCConfig(max_states=100), builder.terminal_predicate)
        result = checker.check()
        assert GenericProperty.NO_LEAKS_AT_TERMINATION.value in checker.found_property_violations(result)

    def test_cmc_clean_allocator_passes(self):
        builder = self._allocator_builder(leak=False)
        checker = CMCChecker(builder.build(), CMCConfig(max_states=100), builder.terminal_predicate)
        result = checker.check()
        assert checker.found_property_violations(result) == []


# ----------------------------------------------------------------------
# Distributed-system models built from real process implementations
# ----------------------------------------------------------------------
class Echo(Process):
    """p0 sends one request; the peer echoes it back; p0 records the reply."""

    def on_start(self):
        self.state["replies"] = 0
        if self.pid == "p0":
            self.send("p1", "REQ", 1)

    @handler("REQ")
    def on_req(self, msg):
        self.send(msg.src, "REP", msg.payload)

    @handler("REP")
    def on_rep(self, msg):
        self.state["replies"] += 1

    @invariant("replies-bounded")
    def replies_bounded(self):
        return self.state["replies"] <= 1


class TestDistributedSystemModel:
    def test_initial_state_runs_on_start(self):
        adapter = DistributedSystemModel({"p0": Echo, "p1": Echo})
        initial = adapter.initial_state()
        assert initial.pending_messages() == 1
        assert initial.state_of("p0")["replies"] == 0

    def test_exploration_reaches_quiescence_without_violations(self):
        adapter = DistributedSystemModel({"p0": Echo, "p1": Echo})
        model = adapter.build_model()
        result = Explorer(
            model,
            SearchOrder.BFS,
            terminal_predicate=DistributedSystemModel.terminal_predicate,
        ).explore()
        assert result.ok
        assert result.states_explored >= 3

    def test_global_invariant_violation_found(self):
        adapter = DistributedSystemModel(
            {"p0": Echo, "p1": Echo},
            global_invariants={"no-replies-ever": lambda states: states["p0"]["replies"] == 0},
        )
        model = adapter.build_model()
        result = Explorer(
            model,
            SearchOrder.BFS,
            terminal_predicate=DistributedSystemModel.terminal_predicate,
        ).explore()
        assert not result.ok
        assert any(t.violated_invariant == "global:no-replies-ever" for t in result.violations)

    def test_state_from_checkpoint_uses_checkpointed_values(self):
        cluster = make_cluster({"p0": Echo, "p1": Echo}, seed=1)
        cluster.run()
        checkpoints = cluster.capture_all()
        from repro.timemachine.checkpoint import GlobalCheckpoint

        bundle = GlobalCheckpoint()
        for ckpt in checkpoints.values():
            bundle.add(ckpt)
        adapter = DistributedSystemModel({"p0": Echo, "p1": Echo})
        state = adapter.state_from_checkpoint(bundle)
        assert state.state_of("p0")["replies"] == 1
        assert state.pending_messages() == 0

    def test_empty_factory_map_rejected(self):
        with pytest.raises(ModelCheckingError):
            DistributedSystemModel({})

    def test_environment_model_answers_scripted_messages(self):
        def respond(process, message):
            process.send(message.src, "REP", "modelled")

        adapter = DistributedSystemModel(
            {"p0": Echo, "p1": lambda: EnvironmentModel(respond)}
        )
        model = adapter.build_model()
        result = Explorer(
            model,
            SearchOrder.BFS,
            terminal_predicate=DistributedSystemModel.terminal_predicate,
        ).explore()
        assert result.ok

    def test_system_state_fingerprint_ignores_step_counter(self):
        adapter = DistributedSystemModel({"p0": Echo, "p1": Echo})
        initial = adapter.initial_state()
        bumped = SystemState(
            process_states=initial.process_states,
            rng_cursors=initial.rng_cursors,
            channels=initial.channels,
            timers=initial.timers,
            step=initial.step + 5,
        )
        assert initial.fingerprint() == bumped.fingerprint()


class TestInvestigatorFacade:
    def test_clean_system_reports_no_violation(self):
        report = Investigator().investigate({"p0": Echo, "p1": Echo})
        assert not report.found_violation
        assert report.states_explored > 0
        assert "No invariant violations" in report.summary()

    def test_violation_reported_with_trails(self):
        report = Investigator(InvestigatorConfig(max_states=500)).investigate(
            {"p0": Echo, "p1": Echo},
            global_invariants={"never-reply": lambda states: states["p0"]["replies"] == 0},
        )
        assert report.found_violation
        assert report.shortest_trail() is not None
        assert "global:never-reply" in report.violated_invariants
        assert "violating trail" in report.summary()

    def test_single_path_mode(self):
        report = Investigator().replay_single_path({"p0": Echo, "p1": Echo})
        assert report.search_order is SearchOrder.SINGLE_PATH
        assert not report.found_violation
