"""Unit tests for the scheduler, the network layer and fault injection."""

from __future__ import annotations

import pytest

from repro.dsim.channel import ChannelConfig, DeliveryOutcome
from repro.dsim.failure import (
    CrashFault,
    FailurePlan,
    MessageFault,
    MessageFaultEngine,
    PartitionFault,
    StateCorruptionFault,
)
from repro.dsim.message import Message
from repro.dsim.network import Network, NetworkConfig, Partition
from repro.dsim.scheduler import EventKind, Scheduler
from repro.errors import SimulationError, UnknownProcessError


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class TestScheduler:
    def test_events_pop_in_time_order(self):
        scheduler = Scheduler()
        scheduler.schedule(5.0, EventKind.TIMER, "a")
        scheduler.schedule(1.0, EventKind.TIMER, "b")
        scheduler.schedule(3.0, EventKind.TIMER, "c")
        order = [scheduler.pop_next().target for _ in range(3)]
        assert order == ["b", "c", "a"]

    def test_ties_break_by_scheduling_order(self):
        scheduler = Scheduler()
        scheduler.schedule(1.0, EventKind.TIMER, "first")
        scheduler.schedule(1.0, EventKind.TIMER, "second")
        assert scheduler.pop_next().target == "first"
        assert scheduler.pop_next().target == "second"

    def test_now_advances_with_execution(self):
        scheduler = Scheduler()
        scheduler.schedule(2.5, EventKind.TIMER, "a")
        scheduler.pop_next()
        assert scheduler.now == pytest.approx(2.5)

    def test_cannot_schedule_in_the_past(self):
        scheduler = Scheduler()
        scheduler.schedule(1.0, EventKind.TIMER, "a")
        scheduler.pop_next()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(0.5, EventKind.TIMER, "a")
        with pytest.raises(SimulationError):
            scheduler.schedule(-1.0, EventKind.TIMER, "a")

    def test_cancelled_events_are_skipped(self):
        scheduler = Scheduler()
        event = scheduler.schedule(1.0, EventKind.TIMER, "a")
        scheduler.schedule(2.0, EventKind.TIMER, "b")
        scheduler.cancel(event)
        assert scheduler.pop_next().target == "b"

    def test_cancel_for_target(self):
        scheduler = Scheduler()
        scheduler.schedule(1.0, EventKind.TIMER, "a")
        scheduler.schedule(2.0, EventKind.DELIVER, "a")
        scheduler.schedule(3.0, EventKind.TIMER, "b")
        assert scheduler.cancel_for_target("a") == 2
        assert scheduler.pop_next().target == "b"

    def test_cancel_for_target_with_kind_filter(self):
        scheduler = Scheduler()
        scheduler.schedule(1.0, EventKind.TIMER, "a")
        scheduler.schedule(2.0, EventKind.DELIVER, "a")
        assert scheduler.cancel_for_target("a", EventKind.TIMER) == 1
        assert scheduler.pop_next().kind is EventKind.DELIVER

    def test_pop_next_returns_none_when_exhausted(self):
        assert Scheduler().pop_next() is None

    def test_peek_time_ignores_cancelled(self):
        scheduler = Scheduler()
        event = scheduler.schedule(1.0, EventKind.TIMER, "a")
        scheduler.schedule(4.0, EventKind.TIMER, "b")
        scheduler.cancel(event)
        assert scheduler.peek_time() == pytest.approx(4.0)

    def test_pending_lists_events_in_order(self):
        scheduler = Scheduler()
        scheduler.schedule(2.0, EventKind.DELIVER, "b")
        scheduler.schedule(1.0, EventKind.TIMER, "a")
        pending = scheduler.pending()
        assert [event.target for event in pending] == ["a", "b"]
        assert [event.target for event in scheduler.pending(EventKind.TIMER)] == ["a"]

    def test_drain_respects_until(self):
        scheduler = Scheduler()
        for t in (1.0, 2.0, 3.0):
            scheduler.schedule(t, EventKind.TIMER, "a")
        drained = list(scheduler.drain(until=2.0))
        assert len(drained) == 2
        assert scheduler.pending_events == 1

    def test_reset_to_discards_queue(self):
        scheduler = Scheduler()
        scheduler.schedule(1.0, EventKind.TIMER, "a")
        scheduler.reset_to(0.0)
        assert scheduler.pending_events == 0
        assert scheduler.pop_next() is None

    def test_executed_counter(self):
        scheduler = Scheduler()
        scheduler.schedule(1.0, EventKind.TIMER, "a")
        scheduler.pop_next()
        assert scheduler.executed_events == 1


class TestSchedulerHeapCompaction:
    """Dead (cancelled) heap entries are compacted before they dominate."""

    def test_heavy_cancel_for_target_churn_keeps_heap_bounded(self):
        scheduler = Scheduler()
        survivors = 0
        for round_index in range(200):
            # a burst of work for one doomed target plus one survivor
            for offset in range(50):
                scheduler.schedule(
                    1.0 + round_index + offset * 0.001, EventKind.DELIVER, "doomed"
                )
            scheduler.schedule(500.0 + round_index, EventKind.TIMER, "survivor")
            survivors += 1
            cancelled = scheduler.cancel_for_target("doomed")
            assert cancelled == 50
            # invariant: the heap never holds more than live + max(64, live)
            # entries — dead events cannot exceed half once compaction runs
            assert scheduler.heap_size <= 2 * scheduler.pending_events + 65
        assert scheduler.pending_events == survivors
        # 10_000 events were cancelled over the run; without compaction the
        # heap would hold them all until drain.  It must stay near `live`.
        assert scheduler.heap_size < 1_000
        drained = [event.target for event in scheduler.drain()]
        assert drained == ["survivor"] * survivors

    def test_scattered_single_cancels_trigger_compaction(self):
        scheduler = Scheduler()
        events = [
            scheduler.schedule(1.0 + index * 0.01, EventKind.TIMER, f"t{index % 7}")
            for index in range(2_000)
        ]
        for index, event in enumerate(events):
            if index % 10:  # cancel 90%
                scheduler.cancel(event)
        assert scheduler.pending_events == 200
        assert scheduler.heap_size <= 2 * scheduler.pending_events + 65
        assert len(list(scheduler.drain())) == 200

    def test_compaction_preserves_order_and_counters(self):
        scheduler = Scheduler()
        keep = []
        for index in range(500):
            event = scheduler.schedule(float(500 - index), EventKind.TIMER, "t")
            if index % 5 == 0:
                keep.append(event)
            else:
                scheduler.cancel(event)
        order = [event.time for event in scheduler.drain()]
        assert order == sorted(event.time for event in keep)
        assert scheduler.pending_events == 0


# ----------------------------------------------------------------------
# Network
# ----------------------------------------------------------------------
class TestNetwork:
    def _network(self, **kwargs) -> Network:
        network = Network(NetworkConfig(**kwargs), seed=1)
        network.register_process("a")
        network.register_process("b")
        network.register_process("c")
        return network

    def test_route_to_unknown_process_raises(self):
        network = self._network()
        with pytest.raises(UnknownProcessError):
            network.route(Message(src="a", dst="zzz", kind="X"), now=0.0)
        with pytest.raises(UnknownProcessError):
            network.route(Message(src="zzz", dst="a", kind="X"), now=0.0)

    def test_route_returns_delivery_plan(self):
        network = self._network()
        plans = network.route(Message(src="a", dst="b", kind="X"), now=0.0)
        assert plans[0][0] is DeliveryOutcome.DELIVER
        assert network.stats["delivered"] == 1

    def test_channel_override_applies_to_one_direction(self):
        config = NetworkConfig(
            channel_overrides={("a", "b"): ChannelConfig(drop_rate=1.0)}
        )
        network = Network(config, seed=1)
        for pid in ("a", "b"):
            network.register_process(pid)
        dropped = network.route(Message(src="a", dst="b", kind="X"), now=0.0)
        delivered = network.route(Message(src="b", dst="a", kind="X"), now=0.0)
        assert dropped[0][0] is DeliveryOutcome.DROP
        assert delivered[0][0] is DeliveryOutcome.DELIVER

    def test_partition_blocks_cross_group_traffic(self):
        network = self._network()
        network.add_partition(Partition([["a"], ["b"]], start=0.0, end=10.0))
        assert network.is_partitioned("a", "b", 5.0)
        assert not network.is_partitioned("a", "b", 15.0)
        assert not network.is_partitioned("a", "c", 5.0)  # c is in no named group
        plans = network.route(Message(src="a", dst="b", kind="X"), now=5.0)
        assert plans[0][0] is DeliveryOutcome.DROP

    def test_partition_requires_valid_window(self):
        with pytest.raises(ValueError):
            Partition([["a"], ["b"]], start=5.0, end=5.0)

    def test_clear_partitions(self):
        network = self._network()
        network.add_partition(Partition([["a"], ["b"]], start=0.0, end=10.0))
        network.clear_partitions()
        assert not network.is_partitioned("a", "b", 5.0)

    def test_channels_are_created_lazily_and_cached(self):
        network = self._network()
        channel = network.channel("a", "b")
        assert network.channel("a", "b") is channel


# ----------------------------------------------------------------------
# Fault injection declarations
# ----------------------------------------------------------------------
class TestFailurePlan:
    def test_add_routes_faults_to_the_right_bucket(self):
        plan = FailurePlan()
        plan.add(CrashFault("a", at=5.0))
        plan.add(MessageFault("drop", match_kind="PING"))
        plan.add(PartitionFault([["a"], ["b"]], 0.0, 1.0))
        plan.add(StateCorruptionFault("a", 2.0, lambda state: None))
        assert plan.summary() == {
            "crashes": 1,
            "message_faults": 1,
            "partitions": 1,
            "corruptions": 1,
        }
        assert not plan.is_empty()

    def test_add_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            FailurePlan().add(object())

    def test_crash_recovery_must_follow_crash(self):
        with pytest.raises(ValueError):
            CrashFault("a", at=5.0, recover_at=5.0)

    def test_message_fault_kind_validation(self):
        with pytest.raises(ValueError):
            MessageFault("explode")
        with pytest.raises(ValueError):
            MessageFault("delay", extra_delay=0.0)

    def test_message_fault_matching(self):
        fault = MessageFault("drop", match_kind="PING", match_src="a", after=5.0)
        ping = Message(src="a", dst="b", kind="PING")
        pong = Message(src="a", dst="b", kind="PONG")
        assert fault.matches(ping, time=6.0)
        assert not fault.matches(ping, time=1.0)
        assert not fault.matches(pong, time=6.0)

    def test_fault_engine_respects_count_limit(self):
        engine = MessageFaultEngine([MessageFault("drop", match_kind="PING", count=2)])
        ping = Message(src="a", dst="b", kind="PING")
        assert engine.decide(ping, 0.0) is not None
        assert engine.decide(ping, 0.0) is not None
        assert engine.decide(ping, 0.0) is None
        assert engine.hit_counts() == {0: 2}

    def test_fault_engine_first_match_wins(self):
        engine = MessageFaultEngine(
            [
                MessageFault("drop", match_kind="PING"),
                MessageFault("duplicate", match_kind="PING"),
            ]
        )
        decided = engine.decide(Message(src="a", dst="b", kind="PING"), 0.0)
        assert decided.kind == "drop"
