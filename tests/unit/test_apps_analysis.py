"""Unit tests for the example applications, the analysis helpers and the runtime hooks."""

from __future__ import annotations

import pytest

from repro.analysis.stats import compare_runs, overhead_ratio, summarize_scroll
from repro.analysis.trace import build_causal_trace, message_flows
from repro.apps.bank import (
    BankBranch,
    BankBranchFixed,
    build_bank_cluster,
    total_balance,
    total_balance_invariant,
)
from repro.apps.kvstore import (
    KVClient,
    KVReplica,
    KVReplicaStale,
    build_kvstore_cluster,
    replica_consistency_invariant,
)
from repro.apps.leader_election import (
    RingElector,
    at_most_one_leader_invariant,
    build_election_ring,
    elected_leader,
)
from repro.apps.token_ring import (
    TokenRingNode,
    TokenRingNodeBuggy,
    build_token_ring,
    mutual_exclusion_invariant,
    single_token_invariant,
)
from repro.apps.two_phase_commit import (
    Coordinator,
    Participant,
    ParticipantLossy,
    atomicity_invariant,
    build_2pc_cluster,
)
from repro.apps.wordcount import (
    WordCountMaster,
    build_wordcount_cluster,
    expected_counts,
    generate_corpus,
)
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.failure import CrashFault, FailurePlan, MessageFault
from repro.dsim.runtime import LatencyProbeHook, PeriodicActionHook, StatsHook, TraceHook
from repro.scroll.recorder import ScrollRecorder

from tests.conftest import PingPong, make_cluster


def run_app(builder, seed=11, max_events=3000, halt=False, **kwargs):
    cluster = Cluster(ClusterConfig(seed=seed, halt_on_violation=halt))
    builder(cluster, **kwargs)
    recorder = ScrollRecorder()
    cluster.add_hook(recorder)
    result = cluster.run(max_events=max_events)
    return cluster, result, recorder.scroll


# ----------------------------------------------------------------------
# KV store
# ----------------------------------------------------------------------
class TestKVStore:
    def test_writes_replicate_to_backups(self):
        cluster, result, _ = run_app(build_kvstore_cluster)
        primary = cluster.process("replica0").state["store"]
        for backup in ("replica1", "replica2"):
            assert cluster.process(backup).state["store"] == primary
        assert result.ok

    def test_client_receives_acks_and_replies(self):
        cluster, _, _ = run_app(build_kvstore_cluster)
        client = cluster.process("client0").state
        assert client["acks"] > 0 and client["replies"] >= 0
        assert not client["pending"]

    def test_replica_consistency_invariant_holds_for_correct_replicas(self):
        cluster, result, _ = run_app(build_kvstore_cluster)
        assert replica_consistency_invariant(result.process_states)

    def test_stale_replica_violates_version_invariant_on_overwrite(self):
        class Rewriter(KVClient):
            operations = [("put", "k", 1), ("put", "k", 2)]

        def builder(cluster):
            cluster.add_process("replica0", KVReplica)
            cluster.add_process("replica1", KVReplicaStale)
            cluster.add_process("client0", Rewriter)

        cluster, result, _ = run_app(builder)
        assert any(
            violation.invariant == "overwrite-bumps-version" and violation.pid == "replica1"
            for violation in result.violations
        )

    def test_correct_replica_survives_overwrites(self):
        class Rewriter(KVClient):
            operations = [("put", "k", 1), ("put", "k", 2), ("get", "k", None)]

        def builder(cluster):
            cluster.add_process("replica0", KVReplica)
            cluster.add_process("client0", Rewriter)

        cluster, result, _ = run_app(builder)
        assert result.ok
        assert cluster.process("replica0").state["versions"]["k"] == 2


# ----------------------------------------------------------------------
# Two-phase commit
# ----------------------------------------------------------------------
class TestTwoPhaseCommit:
    def test_all_yes_votes_commit_every_transaction(self):
        cluster, result, _ = run_app(build_2pc_cluster, transactions=2)
        coordinator = cluster.process("coordinator").state
        assert coordinator["completed"] == 2
        assert all(decision == "COMMIT" for decision in coordinator["decisions"].values())
        assert atomicity_invariant(result.process_states)

    def test_no_vote_aborts_transaction_for_everyone(self):
        class Refuser(Participant):
            def will_accept(self, txn):
                return txn != 1

        def builder(cluster):
            Coordinator.transactions = 2
            cluster.add_process("coordinator", Coordinator)
            cluster.add_process("participant0", Participant)
            cluster.add_process("participant1", Refuser)

        cluster, result, _ = run_app(builder)
        decisions = cluster.process("coordinator").state["decisions"]
        assert decisions[1] == "ABORT"
        assert atomicity_invariant(result.process_states)

    def test_lossy_participant_with_presumed_commit_breaks_atomicity(self):
        class PresumingCoordinator(Coordinator):
            assume_yes_on_timeout = True
            vote_timeout = 5.0
            transactions = 2

        def builder(cluster):
            cluster.add_process("coordinator", PresumingCoordinator)
            cluster.add_process("participant0", Participant)
            cluster.add_process("participant1", ParticipantLossy)

        cluster = Cluster(ClusterConfig(seed=11, halt_on_violation=False))
        builder(cluster)
        # Drop the no-vote so the coordinator's timeout presumes yes.
        cluster.set_failure_plan(
            FailurePlan(message_faults=[MessageFault("drop", match_kind="VOTE_NO")])
        )
        result = cluster.run(max_events=500)
        assert not atomicity_invariant(result.process_states)

    def test_coordinator_decision_uniqueness_invariant(self):
        cluster, result, _ = run_app(build_2pc_cluster, transactions=1)
        assert result.ok


# ----------------------------------------------------------------------
# Token ring
# ----------------------------------------------------------------------
class TestTokenRing:
    def test_correct_ring_maintains_single_token(self):
        cluster, result, _ = run_app(build_token_ring, nodes=3, max_rounds=5)
        assert result.ok
        assert single_token_invariant(result.process_states)
        assert mutual_exclusion_invariant(result.process_states)
        entries = [state["entries"] for state in result.process_states.values()]
        assert all(count >= 1 for count in entries)

    def test_buggy_ring_duplicates_token(self):
        cluster, result, _ = run_app(
            build_token_ring, nodes=3, node_class=TokenRingNodeBuggy, max_rounds=6
        )
        assert not single_token_invariant(result.process_states)


# ----------------------------------------------------------------------
# Leader election
# ----------------------------------------------------------------------
class TestLeaderElection:
    def test_highest_id_wins(self):
        cluster, result, _ = run_app(build_election_ring, nodes=4)
        assert result.ok
        leader = elected_leader(result.process_states)
        expected = max(state["node_id"] for state in result.process_states.values())
        assert leader == expected
        assert at_most_one_leader_invariant(result.process_states)

    def test_all_nodes_learn_the_leader(self):
        cluster, result, _ = run_app(build_election_ring, nodes=5)
        leaders = {state["leader"] for state in result.process_states.values()}
        assert len(leaders) == 1 and None not in leaders

    def test_election_survives_follower_crash(self):
        cluster = Cluster(ClusterConfig(seed=11, halt_on_violation=False))
        build_election_ring(cluster, nodes=4)
        # elector1 has a low id and is not on the winning path's critical round
        cluster.set_failure_plan(FailurePlan(crashes=[CrashFault("elector1", at=30.0)]))
        result = cluster.run(max_events=2000)
        assert at_most_one_leader_invariant(result.process_states)


# ----------------------------------------------------------------------
# Bank
# ----------------------------------------------------------------------
class TestBank:
    def test_buggy_bank_loses_money(self):
        cluster, result, _ = run_app(build_bank_cluster, branches=3)
        assert not total_balance_invariant(result.process_states)
        assert total_balance(result.process_states) < 600

    def test_fixed_bank_conserves_money(self):
        cluster, result, _ = run_app(build_bank_cluster, branches=3, fixed=True)
        assert total_balance_invariant(result.process_states)
        assert total_balance(result.process_states) == 600

    def test_local_invariants_hold_even_in_buggy_bank(self):
        cluster, result, _ = run_app(build_bank_cluster, branches=3)
        assert result.ok  # the bug is only visible globally


# ----------------------------------------------------------------------
# Word count
# ----------------------------------------------------------------------
class TestWordCount:
    def test_counts_match_ground_truth(self):
        cluster, result, _ = run_app(build_wordcount_cluster, workers=3, chunks=12)
        master = cluster.process("master").state
        assert master["aggregated"] == 12
        assert master["counts"] == expected_counts(12)

    def test_corpus_generator_is_deterministic(self):
        assert generate_corpus(4) == generate_corpus(4)
        assert sum(expected_counts(4).values()) == 4 * 20

    def test_crashed_worker_reduces_aggregated_chunks(self):
        cluster = Cluster(ClusterConfig(seed=11, halt_on_violation=False))
        build_wordcount_cluster(cluster, workers=2, chunks=10)
        cluster.set_failure_plan(FailurePlan(crashes=[CrashFault("worker0", at=4.0)]))
        result = cluster.run(max_events=3000)
        assert cluster.process("master").state["aggregated"] < 10


# ----------------------------------------------------------------------
# Runtime hooks
# ----------------------------------------------------------------------
class TestRuntimeHooks:
    def test_trace_hook_collects_and_groups(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        trace = TraceHook()
        cluster.add_hook(trace)
        cluster.run()
        assert trace.records
        assert set(trace.by_process()) == {"p0", "p1"}
        assert trace.by_category("send")

    def test_stats_hook_totals(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        stats = StatsHook()
        cluster.add_hook(stats)
        cluster.run()
        totals = stats.totals()
        assert totals["sent"] == totals["received"]
        assert totals["handlers"] > 0

    def test_periodic_action_hook_counts_handlers(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        fired = []
        cluster.add_hook(PeriodicActionHook(2, lambda pid, time: fired.append(pid)))
        cluster.run()
        assert fired
        with pytest.raises(ValueError):
            PeriodicActionHook(0, lambda pid, time: None)

    def test_latency_probe_measures_channel_delay(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        probe = LatencyProbeHook()
        cluster.add_hook(probe)
        cluster.run()
        assert probe.mean_latency() == pytest.approx(1.0)  # default base_delay


# ----------------------------------------------------------------------
# Analysis helpers
# ----------------------------------------------------------------------
class TestAnalysis:
    def test_summarize_scroll_counts(self):
        _, _, scroll = run_app(build_kvstore_cluster)
        stats = summarize_scroll(scroll)
        assert stats.messages_sent == stats.messages_received  # reliable default network
        assert stats.delivery_ratio == pytest.approx(1.0)
        assert stats.nondeterministic_entries <= stats.total_entries
        assert "messages" in stats.describe()

    def test_message_flows_match_sends(self):
        _, _, scroll = run_app(build_kvstore_cluster)
        flows = message_flows(scroll)
        assert len(flows) == summarize_scroll(scroll).messages_sent
        assert all(flow.delivered and flow.latency >= 0 for flow in flows)

    def test_causal_trace_respects_send_before_receive(self):
        _, _, scroll = run_app(build_kvstore_cluster)
        trace = build_causal_trace(scroll)
        assert len(trace) == len(scroll)
        assert trace.respects_send_before_receive()
        assert trace.actions_of("client0")

    def test_compare_runs_identical_for_same_seed(self):
        _, first, _ = run_app(build_kvstore_cluster, seed=3)
        _, second, _ = run_app(build_kvstore_cluster, seed=3)
        comparison = compare_runs(first, second)
        assert comparison.identical_states
        assert comparison.events_delta == 0

    def test_compare_runs_detects_differences(self):
        _, buggy, _ = run_app(build_bank_cluster, seed=3)
        _, fixed, _ = run_app(build_bank_cluster, seed=3, fixed=True)
        comparison = compare_runs(buggy, fixed)
        assert not comparison.identical_states

    def test_overhead_ratio(self):
        assert overhead_ratio(1.0, 1.5) == pytest.approx(0.5)
        assert overhead_ratio(0.0, 1.0) is None
