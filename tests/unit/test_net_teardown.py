"""Leak-proof teardown and failure surfacing of the net backend.

The socket substrate owns real kernel resources — one listening socket
per shard, a per-run unix socket directory, one connection per worker —
and runs an asyncio loop thread per shard.  All of it must be reclaimed
on *every* exit path, and the two ways a worker connection can go bad
must surface as halts, never hangs:

* a worker that dies abruptly (hard exit, connection reset) halts the
  run as ``worker-lost:<pid>``;
* a worker that stays alive but stops draining its socket trips the
  router's write timeout and halts as ``worker-stalled:<pid>``.

Marked ``slow`` (real OS processes); ``make verify`` runs this module
explicitly via the ``net-smoke`` step.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.apps.wordcount import build_wordcount_cluster
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.hooks import RuntimeHook
from repro.dsim.net_backend import NetBackend, NetBackendOptions
from repro.dsim.process import Process, handler

pytestmark = pytest.mark.slow


def _sockets_gone(backend: NetBackend) -> bool:
    return all(not os.path.exists(path) for path in backend.socket_paths)


class _Exiter(Process):
    """Dies abruptly (hard exit, no result, dead socket) on first delivery."""

    def on_start(self) -> None:
        self.state["ready"] = True

    @handler("DIE")
    def die(self, msg) -> None:
        os._exit(13)


class _Prodder(Process):
    def on_start(self) -> None:
        self.send("victim", "DIE", None)


class _Sleeper(Process):
    """Stops servicing its event loop (and therefore its socket) on cue."""

    def on_start(self) -> None:
        self.state["ready"] = True

    @handler("SLEEP")
    def sleep(self, msg) -> None:
        time.sleep(30.0)

    @handler("BLOB")
    def blob(self, msg) -> None:
        self.state["blobs"] = self.state.get("blobs", 0) + 1


class _Flooder(Process):
    """Puts the victim to sleep, then floods its socket buffer."""

    def on_start(self) -> None:
        self.send("victim", "SLEEP", None)
        for _ in range(80):
            self.send("victim", "BLOB", b"z" * 32_768)


class _Interrupter(RuntimeHook):
    """Simulates the operator hitting Ctrl-C while the router replays."""

    def on_send(self, pid, message, time, vt=None):
        raise KeyboardInterrupt


@pytest.mark.parametrize("family", ["unix", "tcp"])
def test_clean_run_reclaims_sockets_and_threads(family: str):
    threads_before = threading.active_count()
    backend = NetBackend(NetBackendOptions(time_scale=0.01, family=family))
    cluster = Cluster(ClusterConfig(seed=3), backend=backend)
    build_wordcount_cluster(cluster, workers=2, chunks=4)
    result = cluster.run(until=120.0)
    assert result.stopped_reason == "quiescent"
    if family == "unix":
        assert backend.socket_paths, "unix run must have created socket files"
    assert _sockets_gone(backend)
    assert threading.active_count() == threads_before, "shard threads leaked"


def test_worker_lost_halt_reclaims_sockets():
    backend = NetBackend(NetBackendOptions(time_scale=0.01))
    cluster = Cluster(ClusterConfig(seed=3), backend=backend)
    cluster.add_process("victim", _Exiter)
    cluster.add_process("prodder", _Prodder)
    result = cluster.run(until=60.0)
    assert result.stopped_reason == "worker-lost:victim"
    assert _sockets_gone(backend)


def test_stalled_worker_halts_instead_of_hanging():
    """A live worker that stops draining trips the write timeout.

    The victim's handler sleeps while the flooder fills its socket; with
    a tiny SO_SNDBUF/SO_RCVBUF and a short write timeout, the shard's
    sendall stalls and must surface as ``worker-stalled:victim`` well
    before the wall limit — never a silent hang to the cap.
    """
    backend = NetBackend(
        NetBackendOptions(
            time_scale=0.01,
            write_timeout=0.5,
            socket_buffer_bytes=8192,
            batch_deliveries=False,
        )
    )
    cluster = Cluster(ClusterConfig(seed=3), backend=backend)
    cluster.add_process("victim", _Sleeper)
    cluster.add_process("flooder", _Flooder)
    start = time.monotonic()
    result = cluster.run(until=2000.0)
    assert result.stopped_reason == "worker-stalled:victim"
    assert time.monotonic() - start < 15.0, "stall detection took too long"
    assert _sockets_gone(backend)


def test_keyboard_interrupt_reclaims_sockets_and_threads():
    threads_before = threading.active_count()
    backend = NetBackend(NetBackendOptions(time_scale=0.01))
    cluster = Cluster(ClusterConfig(seed=3), backend=backend)
    build_wordcount_cluster(cluster, workers=2, chunks=4)
    cluster.add_hook(_Interrupter())
    with pytest.raises(KeyboardInterrupt):
        cluster.run(until=120.0)
    assert _sockets_gone(backend)
    assert threading.active_count() == threads_before


def test_socket_dir_removed_after_run():
    """The per-run unix socket directory itself is gone, not just the files."""
    backend = NetBackend(NetBackendOptions(time_scale=0.01))
    cluster = Cluster(ClusterConfig(seed=3), backend=backend)
    build_wordcount_cluster(cluster, workers=2, chunks=4)
    cluster.run(until=120.0)
    assert backend.socket_paths
    for path in backend.socket_paths:
        assert not os.path.exists(os.path.dirname(path))
