"""Unit tests for the Time Machine: checkpoints, COW store, recovery lines,
speculations, checkpoint policies and rollback."""

from __future__ import annotations

import pytest

from repro.dsim.clock import VectorTimestamp
from repro.dsim.process import ProcessCheckpoint
from repro.errors import CheckpointError, RecoveryLineError, SpeculationError
from repro.scroll.recorder import ScrollRecorder
from repro.timemachine.checkpoint import CheckpointStore, GlobalCheckpoint, LocalCheckpointLog
from repro.timemachine.comm_induced import CommunicationInducedCheckpointing, PeriodicCheckpointing
from repro.timemachine.coordinated import CoordinatedSnapshotter
from repro.timemachine.cow import CowPageStore, full_checkpoint_bytes
from repro.timemachine.recovery_line import (
    compute_recovery_line,
    inconsistent_pairs,
    is_consistent,
    unsafe_line,
)
from repro.timemachine.rollback import RollbackManager
from repro.timemachine.speculation import SpeculationManager, SpeculationStatus
from repro.timemachine.time_machine import CheckpointPolicy, TimeMachine, TimeMachineConfig

from tests.conftest import PingPong, RandomWorker, make_cluster


def checkpoint(pid: str, sequence: int, time: float, vt: dict, state: dict | None = None):
    """Hand-rolled ProcessCheckpoint for consistency tests."""
    return ProcessCheckpoint(
        pid=pid,
        sequence=sequence,
        time=time,
        state=state or {"x": sequence},
        vt=VectorTimestamp.from_mapping(vt),
        lamport=sum(vt.values()),
        rng_draws=0,
        sent_count=0,
        received_count=0,
    )


# ----------------------------------------------------------------------
# Checkpoint logs and stores
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_log_rejects_wrong_pid(self):
        log = LocalCheckpointLog("a")
        with pytest.raises(CheckpointError):
            log.add(checkpoint("b", 1, 0.0, {}))

    def test_log_resequences_restarted_process(self):
        log = LocalCheckpointLog("a")
        log.add(checkpoint("a", 1, 0.0, {}))
        log.add(checkpoint("a", 5, 1.0, {}))
        restarted = checkpoint("a", 1, 2.0, {})
        log.add(restarted)
        assert [c.sequence for c in log] == [1, 5, 6]

    def test_log_capacity_evicts_oldest(self):
        log = LocalCheckpointLog("a", capacity=2)
        for index in range(1, 4):
            log.add(checkpoint("a", index, float(index), {}))
        assert len(log) == 2
        assert log.earliest.sequence == 2

    def test_latest_before(self):
        log = LocalCheckpointLog("a")
        for index in range(1, 4):
            log.add(checkpoint("a", index, float(index), {}))
        assert log.latest_before(2.5).sequence == 2
        assert log.latest_before(0.5) is None

    def test_drop_after_and_before(self):
        log = LocalCheckpointLog("a")
        for index in range(1, 5):
            log.add(checkpoint("a", index, float(index), {}))
        assert log.drop_after(2) == 2
        assert log.drop_before(2) == 1
        assert [c.sequence for c in log] == [2]

    def test_by_sequence_lookup(self):
        log = LocalCheckpointLog("a")
        log.add(checkpoint("a", 1, 0.0, {}))
        assert log.by_sequence(1).sequence == 1
        with pytest.raises(CheckpointError):
            log.by_sequence(9)

    def test_store_latest_global_requires_checkpoints(self):
        store = CheckpointStore()
        store.add(checkpoint("a", 1, 0.0, {"a": 1}))
        store.log_for("b")   # registered but empty
        with pytest.raises(CheckpointError):
            store.latest_global()

    def test_store_counts_and_bytes(self):
        store = CheckpointStore()
        store.add(checkpoint("a", 1, 0.0, {"a": 1}))
        store.add(checkpoint("a", 2, 1.0, {"a": 2}))
        store.add(checkpoint("b", 1, 0.0, {"b": 1}))
        assert store.checkpoint_counts() == {"a": 2, "b": 1}
        assert store.total_checkpoints() == 3
        assert store.total_bytes() > 0

    def test_global_checkpoint_time_bounds(self):
        bundle = GlobalCheckpoint()
        bundle.add(checkpoint("a", 1, 3.0, {"a": 1}))
        bundle.add(checkpoint("b", 1, 7.0, {"b": 1}))
        assert bundle.min_time() == 3.0 and bundle.max_time() == 7.0
        assert "a" in bundle and bundle["a"].pid == "a"


# ----------------------------------------------------------------------
# Copy-on-write store
# ----------------------------------------------------------------------
class TestCowStore:
    def test_identical_states_share_all_pages(self):
        store = CowPageStore(page_size=64)
        state = {"blob": "x" * 500}
        first = store.capture("a", state, 0.0)
        second = store.capture("a", state, 1.0)
        assert second.new_bytes == 0
        assert second.sharing_ratio == pytest.approx(1.0)
        assert store.stored_bytes() < store.logical_bytes()

    def test_small_mutation_stores_few_new_pages(self):
        store = CowPageStore(page_size=64)
        state = {"blob": "x" * 2000, "counter": 0}
        store.capture("a", state, 0.0)
        state["counter"] = 1
        second = store.capture("a", state, 1.0)
        assert 0 < second.new_pages < second.pages

    def test_restore_reconstructs_exact_state(self):
        store = CowPageStore(page_size=32)
        state = {"numbers": list(range(50)), "name": "fixd"}
        ckpt = store.capture("a", state, 0.0)
        assert store.restore(ckpt) == state

    def test_restore_after_gc_of_other_chain(self):
        store = CowPageStore(page_size=32)
        first = store.capture("a", {"v": 1}, 0.0)
        second = store.capture("a", {"v": 2}, 1.0)
        store.drop_before("a", second.sequence)
        assert store.restore(second) == {"v": 2}
        with pytest.raises(CheckpointError):
            store.restore(first)

    def test_savings_ratio_grows_with_repeated_checkpoints(self):
        store = CowPageStore(page_size=128)
        state = {"payload": "y" * 4000}
        for index in range(5):
            state["tick"] = index
            store.capture("a", state, float(index))
        assert store.savings_ratio() > 0.5

    def test_full_checkpoint_bytes_matches_serialized_size(self):
        assert full_checkpoint_bytes({"a": 1}) > 0

    def test_unpicklable_state_rejected(self):
        store = CowPageStore()
        with pytest.raises(CheckpointError):
            store.capture("a", {"fn": lambda x: x}, 0.0)

    def test_invalid_page_size_rejected(self):
        with pytest.raises(ValueError):
            CowPageStore(page_size=0)


# ----------------------------------------------------------------------
# Recovery lines
# ----------------------------------------------------------------------
class TestRecoveryLines:
    def test_consistent_set_accepted(self):
        checkpoints = {
            "a": checkpoint("a", 1, 1.0, {"a": 2, "b": 1}),
            "b": checkpoint("b", 1, 1.0, {"b": 2, "a": 1}),
        }
        assert is_consistent(checkpoints)
        assert inconsistent_pairs(checkpoints) == []

    def test_orphan_message_detected(self):
        # b observed 3 events of a, but a's checkpoint only accounts for 1.
        checkpoints = {
            "a": checkpoint("a", 1, 1.0, {"a": 1}),
            "b": checkpoint("b", 1, 1.0, {"b": 2, "a": 3}),
        }
        assert not is_consistent(checkpoints)
        assert ("b", "a") in inconsistent_pairs(checkpoints)

    def test_compute_rolls_back_the_observer(self):
        store = CheckpointStore()
        store.add(checkpoint("a", 1, 1.0, {"a": 1}))
        store.add(checkpoint("b", 1, 1.0, {"b": 1}))
        store.add(checkpoint("b", 2, 2.0, {"b": 2, "a": 3}))  # b saw a:3 that a never had
        line = compute_recovery_line(store)
        assert line.checkpoints["b"].sequence == 1
        assert line.rolled_back_steps == {"a": 0, "b": 1}
        assert is_consistent(line.checkpoints)

    def test_not_after_bound_is_respected(self):
        store = CheckpointStore()
        store.add(checkpoint("a", 1, 1.0, {"a": 1}))
        store.add(checkpoint("a", 2, 5.0, {"a": 2}))
        store.add(checkpoint("b", 1, 1.0, {"b": 1}))
        line = compute_recovery_line(store, not_after={"a": 2.0})
        assert line.checkpoints["a"].sequence == 1

    def test_no_line_when_bound_excludes_all_checkpoints(self):
        store = CheckpointStore()
        store.add(checkpoint("a", 1, 5.0, {"a": 1}))
        with pytest.raises(RecoveryLineError):
            compute_recovery_line(store, not_after={"a": 1.0})

    def test_empty_store_rejected(self):
        with pytest.raises(RecoveryLineError):
            compute_recovery_line(CheckpointStore())

    def test_impossible_consistency_reported(self):
        store = CheckpointStore()
        # Single checkpoints that are mutually inconsistent and cannot be rolled back further.
        store.add(checkpoint("a", 1, 1.0, {"a": 1, "b": 5}))
        store.add(checkpoint("b", 1, 1.0, {"b": 1, "a": 5}))
        with pytest.raises(RecoveryLineError):
            compute_recovery_line(store)

    def test_unsafe_line_is_just_latest_checkpoints(self):
        store = CheckpointStore()
        store.add(checkpoint("a", 1, 1.0, {"a": 1}))
        store.add(checkpoint("a", 2, 2.0, {"a": 2}))
        store.add(checkpoint("b", 1, 1.0, {"b": 1}))
        naive = unsafe_line(store)
        assert naive["a"].sequence == 2

    def test_domino_effect_flagged(self):
        store = CheckpointStore()
        # a's later checkpoints each observe ever more of b than b ever checkpoints.
        store.add(checkpoint("a", 1, 0.0, {"a": 1}))
        store.add(checkpoint("a", 2, 1.0, {"a": 2, "b": 5}))
        store.add(checkpoint("a", 3, 2.0, {"a": 3, "b": 9}))
        store.add(checkpoint("b", 1, 0.0, {"b": 1}))
        line = compute_recovery_line(store)
        assert line.checkpoints["a"].sequence == 1
        assert line.domino_effect
        assert line.total_rollback_steps() == 2

    def test_line_as_global_checkpoint(self):
        store = CheckpointStore()
        store.add(checkpoint("a", 1, 1.0, {"a": 1}))
        store.add(checkpoint("b", 1, 1.0, {"b": 1}))
        line = compute_recovery_line(store)
        bundle = line.as_global_checkpoint()
        assert set(bundle.pids()) == {"a", "b"}


# ----------------------------------------------------------------------
# Checkpoint policies on a live cluster
# ----------------------------------------------------------------------
class TestCheckpointPolicies:
    def test_comm_induced_checkpoints_once_per_receive(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        policy = CommunicationInducedCheckpointing()
        cluster.add_hook(policy)
        result = cluster.run()
        receives = sum(1 for record in cluster.trace if record.action == "receive")
        # one checkpoint per process at start + one per receive
        assert policy.total_checkpoints() == receives + len(cluster.pids)

    def test_periodic_policy_takes_fewer_checkpoints(self):
        cluster_a = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        comm = CommunicationInducedCheckpointing()
        cluster_a.add_hook(comm)
        cluster_a.run()

        cluster_b = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        periodic = PeriodicCheckpointing(period=5)
        cluster_b.add_hook(periodic)
        cluster_b.run()
        assert periodic.total_checkpoints() < comm.total_checkpoints()

    def test_periodic_policy_validates_period(self):
        with pytest.raises(ValueError):
            PeriodicCheckpointing(period=0)

    def test_comm_induced_line_is_always_consistent(self):
        cluster = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=7)
        policy = CommunicationInducedCheckpointing()
        cluster.add_hook(policy)
        cluster.run()
        line = compute_recovery_line(policy.store)
        assert is_consistent(line.checkpoints)

    def test_coordinated_snapshot_includes_in_flight_messages(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        snapshotter = CoordinatedSnapshotter()
        cluster.start()
        cluster.run(max_events=3)
        snapshot = snapshotter.take_snapshot(cluster)
        assert snapshot.consistent
        assert snapshot.global_checkpoint.pids() == ["p0", "p1"]
        assert isinstance(snapshot.in_flight, list)
        assert snapshotter.latest() is snapshot
        assert snapshotter.as_recovery_line().domino_effect is False

    def test_coordinated_restore_reschedules_in_flight(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        snapshotter = CoordinatedSnapshotter()
        cluster.start()
        cluster.run(max_events=3)
        snapshot = snapshotter.take_snapshot(cluster)
        in_flight = len(snapshot.in_flight)
        cluster.run(max_events=3)
        snapshotter.restore_latest(cluster)
        pending = cluster.scheduler.pending()
        assert len(pending) >= in_flight


# ----------------------------------------------------------------------
# Speculations
# ----------------------------------------------------------------------
class TestSpeculations:
    def _attached(self, seed=1):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=seed)
        manager = SpeculationManager()
        cluster.add_hook(manager)
        cluster.start()
        return cluster, manager

    def test_begin_requires_attachment(self):
        with pytest.raises(SpeculationError):
            SpeculationManager().begin("p0", "assumption")

    def test_commit_discards_rollback_obligation(self):
        cluster, manager = self._attached()
        spec = manager.begin("p0", "remote will ack")
        cluster.process("p0").state["count"] = 42
        manager.commit(spec.spec_id)
        assert cluster.process("p0").state["count"] == 42
        assert manager.get(spec.spec_id).status is SpeculationStatus.COMMITTED

    def test_abort_rolls_back_initiator(self):
        cluster, manager = self._attached()
        spec = manager.begin("p0", "remote will ack")
        original = dict(cluster.process("p0").state)
        cluster.process("p0").state["count"] = 42
        manager.abort(spec.spec_id)
        assert cluster.process("p0").state == original
        assert manager.rollbacks_performed == 1

    def test_abort_invokes_alternate_path(self):
        cluster, manager = self._attached()
        invoked = []
        spec = manager.begin("p0", "assumption", alternate_path=invoked.append)
        manager.abort(spec.spec_id)
        assert invoked == ["p0"]

    def test_double_resolution_rejected(self):
        cluster, manager = self._attached()
        spec = manager.begin("p0", "assumption")
        manager.commit(spec.spec_id)
        with pytest.raises(SpeculationError):
            manager.abort(spec.spec_id)
        with pytest.raises(SpeculationError):
            manager.commit(spec.spec_id)

    def test_unknown_speculation_rejected(self):
        cluster, manager = self._attached()
        with pytest.raises(SpeculationError):
            manager.commit("spec-does-not-exist")

    def test_absorption_through_messages(self):
        cluster, manager = self._attached()
        spec = manager.begin("p0", "token will return")
        cluster.run(max_events=10)
        # p0 sent messages inside the speculation; p1 received one and is absorbed.
        assert "p1" in manager.get(spec.spec_id).members
        assert manager.absorptions >= 1
        assert "p1" in manager.active_for("p1") or spec.spec_id in manager.active_for("p1")

    def test_abort_rolls_back_absorbed_members(self):
        cluster, manager = self._attached()
        spec = manager.begin("p0", "token will return")
        cluster.run(max_events=10)
        count_before_abort = cluster.process("p1").state["count"]
        manager.abort(spec.spec_id)
        assert cluster.process("p1").state["count"] <= count_before_abort
        stats = manager.stats()
        assert stats["aborted"] == 1 and stats["total"] == 1


# ----------------------------------------------------------------------
# Rollback manager and the TimeMachine facade
# ----------------------------------------------------------------------
class TestRollbackAndFacade:
    def test_rollback_restores_states_and_cancels_events(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        policy = CommunicationInducedCheckpointing()
        cluster.add_hook(policy)
        cluster.run(max_events=6)
        line = compute_recovery_line(policy.store)
        manager = RollbackManager(cluster)
        result = manager.rollback(line)
        assert set(result.restored_pids) == {"p0", "p1"}
        assert result.max_rollback_distance >= 0
        assert manager.rollbacks_performed == 1

    def test_rollback_refuses_inconsistent_line(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.start()
        manager = RollbackManager(cluster)
        from repro.timemachine.recovery_line import RecoveryLine

        bad = RecoveryLine(
            checkpoints={
                "p0": checkpoint("p0", 1, 0.0, {"p0": 1, "p1": 9}),
                "p1": checkpoint("p1", 1, 0.0, {"p1": 1}),
            },
            rolled_back_steps={},
            iterations=1,
            domino_effect=False,
        )
        with pytest.raises(RecoveryLineError):
            manager.rollback(bad)

    def test_alternate_path_invoked_on_rollback(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        policy = CommunicationInducedCheckpointing()
        cluster.add_hook(policy)
        cluster.run(max_events=6)
        manager = RollbackManager(cluster)
        seen = []
        manager.register_alternate_path("p0", lambda process: seen.append(process.pid))
        manager.rollback(compute_recovery_line(policy.store))
        assert seen == ["p0"]

    def test_commit_frontier_must_advance(self):
        """Regression: commit accepted a line at or below the frontier, so a
        stale line (auto-committer racing a rollback, replayed commit) was
        flushed as the newest durable manifest and a later resume restored
        regressed state.  Stale commits must be rejected *before* any
        durable write happens."""
        from repro.timemachine.recovery_line import RecoveryLine

        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.start()

        def line_at(position: int, sequence: int) -> RecoveryLine:
            member = ProcessCheckpoint(
                pid="p0",
                sequence=sequence,
                time=float(sequence),
                state={"x": sequence},
                vt=VectorTimestamp.from_mapping({"p0": sequence}),
                lamport=sequence,
                rng_draws=0,
                sent_count=0,
                received_count=0,
                extra={"scroll_position": position},
            )
            return RecoveryLine(
                checkpoints={"p0": member},
                rolled_back_steps={},
                iterations=1,
                domino_effect=False,
                label=f"pos{position}",
            )

        class FlushRecorder:
            def __init__(self):
                self.flushed = []

            def flush_line(self, line, chunk_sources=None):
                self.flushed.append(line)
                return {}

            def flush_scroll(self, scroll, pending=None, now=0.0, committed_position=None):
                return {}

            def scroll_entries_pending(self, scroll):
                return 0

        durable = FlushRecorder()
        manager = RollbackManager(cluster, durable=durable)
        manager.commit(line_at(10, 2))
        assert len(durable.flushed) == 1
        with pytest.raises(RecoveryLineError, match="commits must advance"):
            manager.commit(line_at(10, 3))  # equal to the frontier: stale
        with pytest.raises(RecoveryLineError, match="commits must advance"):
            manager.commit(line_at(4, 4))  # below the frontier
        # rejected before anything durable was written
        assert len(durable.flushed) == 1
        assert len(manager.committed_lines) == 1
        manager.commit(line_at(11, 5))  # advancing is fine
        assert len(manager.committed_lines) == 2

    def test_time_machine_facade_end_to_end(self):
        cluster = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=3)
        tm = TimeMachine()
        tm.attach(cluster)
        cluster.run(max_events=30)
        stats = tm.stats()
        assert stats["checkpoints"] > 0
        assert stats["cow_logical_bytes"] >= stats["cow_stored_bytes"]
        result = tm.rollback_to_consistent_state()
        assert tm.stats()["rollbacks"] == 1
        assert set(result.restored_pids) == {"r0", "r1"}

    def test_time_machine_periodic_policy(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        tm = TimeMachine(TimeMachineConfig(policy=CheckpointPolicy.PERIODIC, periodic_interval=3))
        tm.attach(cluster)
        cluster.run()
        assert tm.stats()["policy"] == "periodic"
        assert tm.store.total_checkpoints() > 0

    def test_time_machine_coordinated_snapshot_on_demand(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        tm = TimeMachine(TimeMachineConfig(policy=CheckpointPolicy.COORDINATED))
        tm.attach(cluster)
        cluster.start()
        cluster.run(max_events=4)
        bundle = tm.snapshot_now()
        assert set(bundle.pids()) == {"p0", "p1"}

    def test_checkpoint_process_on_demand(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        tm = TimeMachine(TimeMachineConfig(policy=CheckpointPolicy.COORDINATED))
        tm.attach(cluster)
        cluster.start()
        tm.checkpoint_process("p0")
        assert tm.store.latest("p0") is not None

    def test_unattached_facade_raises(self):
        tm = TimeMachine()
        with pytest.raises(CheckpointError):
            _ = tm.cluster
        with pytest.raises(CheckpointError):
            _ = tm.rollback_manager
