"""Focused tests: channel-state reconstruction, invariant-aware recovery lines,
and the general-purpose environment models (the paper's Section 4.5 future work)."""

from __future__ import annotations

import pytest

from repro.core.faults import FaultDetector
from repro.core.protocol import FaultResponseCoordinator, reconstruct_in_flight
from repro.dsim.process import Process, handler, invariant
from repro.healer.patch import generate_patch
from repro.healer.strategies import invariant_satisfying_line
from repro.investigator.envmodels import DiskModel, EchoServiceModel, LossyNetworkModel
from repro.investigator.explorer import Explorer, SearchOrder
from repro.investigator.investigator import Investigator, InvestigatorConfig
from repro.investigator.models import DistributedSystemModel
from repro.scroll.recorder import ScrollRecorder
from repro.timemachine.time_machine import TimeMachine

from tests.conftest import BoundedCounterBuggy, BoundedCounterFixed, PingPong, make_cluster


# ----------------------------------------------------------------------
# reconstruct_in_flight: channel state at a recovery line
# ----------------------------------------------------------------------
class TestReconstructInFlight:
    def _instrumented_run(self, max_events):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2, halt_on_violation=False
        )
        recorder = ScrollRecorder()
        cluster.add_hook(recorder)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run(max_events=max_events)
        return cluster, recorder.scroll, time_machine

    def test_messages_received_after_the_line_are_in_flight(self):
        cluster, scroll, time_machine = self._instrumented_run(max_events=10)
        line = time_machine.latest_recovery_line()
        in_flight = reconstruct_in_flight(scroll, line)
        # Communication-induced checkpointing checkpoints *before* each receive,
        # so the message delivered right after the last checkpoint is in flight.
        assert len(in_flight) >= 1
        assert all(message.dst in line.checkpoints for message in in_flight)

    def test_in_flight_messages_replay_to_the_same_violation(self):
        cluster, scroll, time_machine = self._instrumented_run(max_events=20)
        detector_faults = [v for v in cluster.violations if v.invariant == "count-within-bound"]
        assert detector_faults
        line = time_machine.latest_recovery_line(
            not_after={detector_faults[0].pid: detector_faults[0].time}
        )
        in_flight = reconstruct_in_flight(scroll, line)
        report = Investigator(InvestigatorConfig(max_states=2000, max_depth=30)).investigate(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy},
            checkpoint=line.as_global_checkpoint(),
            in_flight=in_flight,
        )
        assert report.found_violation

    def test_rolled_back_sends_are_excluded(self):
        cluster, scroll, time_machine = self._instrumented_run(max_events=20)
        # Bound every process to its first checkpoint: almost all sends postdate it.
        first_times = {
            pid: time_machine.store.log_for(pid).earliest.time for pid in time_machine.store.pids()
        }
        line = time_machine.latest_recovery_line(not_after=first_times)
        in_flight = reconstruct_in_flight(scroll, line)
        later = reconstruct_in_flight(scroll, time_machine.latest_recovery_line())
        assert len(in_flight) <= len(later)


# ----------------------------------------------------------------------
# invariant_satisfying_line (Section 3.4: resume where invariants hold)
# ----------------------------------------------------------------------
class TestInvariantSatisfyingLine:
    def test_line_states_satisfy_patched_invariants(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2, halt_on_violation=False
        )
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run(max_events=30)   # counts run well past the bound
        patch = generate_patch(BoundedCounterBuggy, BoundedCounterFixed)
        line = invariant_satisfying_line(time_machine, patch)
        for checkpoint in line.checkpoints.values():
            assert checkpoint.state["count"] <= BoundedCounterBuggy.bound

    def test_untargeted_patch_falls_back_to_latest_line(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run()
        patch = generate_patch(PingPong, PingPong, target_pids=["somebody-else"])
        line = invariant_satisfying_line(time_machine, patch)
        latest = time_machine.latest_recovery_line()
        assert {pid: c.sequence for pid, c in line.checkpoints.items()} == {
            pid: c.sequence for pid, c in latest.checkpoints.items()
        }


# ----------------------------------------------------------------------
# Environment models (future work 4.5)
# ----------------------------------------------------------------------
class DiskClient(Process):
    """Writes one block, reads it back, and records what it saw."""

    def on_start(self):
        self.state["read_back"] = None
        self.send("disk", "DISK_WRITE", {"block": 7, "data": "payload"})

    @handler("DISK_WRITE_OK")
    def on_write_ok(self, msg):
        self.send("disk", "DISK_READ", {"block": 7})

    @handler("DISK_READ_REPLY")
    def on_read_reply(self, msg):
        self.state["read_back"] = msg.payload["data"]

    @invariant("read-back-is-what-was-written")
    def read_back_ok(self):
        return self.state["read_back"] in (None, "payload")


class ForwardingClient(Process):
    """Sends messages to a peer through the LossyNetworkModel relay."""

    sends: int = 4

    def on_start(self):
        self.state["received"] = 0
        if self.pid == "a":
            for index in range(self.sends):
                self.send("relay", "FORWARD", {"dst": "b", "kind": "DATA", "payload": index})

    @handler("DATA")
    def on_data(self, msg):
        self.state["received"] += 1


class TestEnvironmentModels:
    def test_disk_model_round_trip_in_simulation(self):
        cluster = make_cluster({"client": DiskClient, "disk": DiskModel}, seed=1)
        result = cluster.run()
        assert result.ok
        assert result.process_states["client"]["read_back"] == "payload"
        assert result.process_states["disk"]["writes"] == 1

    def test_disk_model_usable_by_the_investigator(self):
        report = Investigator(InvestigatorConfig(max_states=500, max_depth=30)).investigate(
            {"client": DiskClient, "disk": DiskModel}
        )
        assert not report.found_violation
        assert report.states_explored >= 3

    def test_echo_service_acknowledges_everything(self):
        class Caller(Process):
            def on_start(self):
                self.state["acks"] = 0
                self.send("service", "ANY_REQUEST", {"x": 1})

            @handler("ACK")
            def on_ack(self, msg):
                self.state["acks"] += 1

        cluster = make_cluster({"caller": Caller, "service": EchoServiceModel}, seed=1)
        result = cluster.run()
        assert result.process_states["caller"]["acks"] == 1
        assert result.process_states["service"]["requests_served"] == 1

    def test_lossy_network_model_drops_every_nth_forward(self):
        cluster = make_cluster(
            {"a": ForwardingClient, "b": ForwardingClient, "relay": lambda: LossyNetworkModel(drop_every=2)},
            seed=1,
        )
        result = cluster.run()
        relay = result.process_states["relay"]
        assert relay["dropped"] == 2 and relay["forwarded"] == 2
        assert result.process_states["b"]["received"] == 2

    def test_reliable_relay_forwards_everything(self):
        cluster = make_cluster(
            {"a": ForwardingClient, "b": ForwardingClient, "relay": LossyNetworkModel}, seed=1
        )
        result = cluster.run()
        assert result.process_states["b"]["received"] == ForwardingClient.sends

    def test_environment_model_registered_on_fixd_controller(self):
        from repro.core.fixd import FixD, FixDConfig

        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}, seed=2
        )
        fixd = FixD(FixDConfig(investigate_on_fault=False))
        fixd.register_environment_model("disk", DiskModel)
        fixd.attach(cluster)
        cluster.run(max_events=60)
        run = fixd.last_report.protocol_run
        assert "disk" in run.modeled_environment
        assert run.responses["disk"].is_environment_model
