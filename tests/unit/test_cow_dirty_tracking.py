"""Edge cases for CowPageStore's per-key dirty tracking and refcount GC."""

from __future__ import annotations

import pytest

from repro.errors import CheckpointError
from repro.timemachine.cow import CowPageStore
from repro.timemachine.speculation import SpeculationManager

from tests.conftest import PingPong, make_cluster


class TestDirtyTracking:
    def test_clean_scalar_keys_skip_hashing(self):
        store = CowPageStore(page_size=64)
        state = {"blob": "x" * 500, "counter": 0}
        store.capture("a", state, 0.0)
        hashed_first = store.hashed_bytes_total
        assert hashed_first > 0
        store.capture("a", state, 1.0)
        assert store.hashed_bytes_total == hashed_first  # nothing re-hashed

    def test_mutated_scalar_key_is_rehashed(self):
        store = CowPageStore(page_size=64)
        state = {"blob": "x" * 500, "counter": 0}
        store.capture("a", state, 0.0)
        hashed_first = store.hashed_bytes_total
        state["counter"] = 1
        second = store.capture("a", state, 1.0)
        assert store.hashed_bytes_total > hashed_first
        # only the small counter key was re-hashed, not the 500-byte blob
        assert store.hashed_bytes_total - hashed_first < 100
        assert store.restore(second) == state

    def test_key_deletion_restores_without_the_key(self):
        store = CowPageStore(page_size=32)
        state = {"keep": "v" * 100, "drop": "w" * 100}
        store.capture("a", state, 0.0)
        del state["drop"]
        second = store.capture("a", state, 1.0)
        assert store.restore(second) == {"keep": "v" * 100}

    def test_key_reappearing_after_deletion(self):
        store = CowPageStore(page_size=32)
        state = {"k": "v1"}
        store.capture("a", state, 0.0)
        del state["k"]
        store.capture("a", state, 1.0)
        state["k"] = "v2"
        third = store.capture("a", state, 2.0)
        assert store.restore(third) == {"k": "v2"}

    def test_nested_dict_mutation_is_detected(self):
        store = CowPageStore(page_size=32)
        state = {"cfg": {"retries": 1, "hosts": ["h1"]}}
        first = store.capture("a", state, 0.0)
        state["cfg"]["retries"] = 2
        state["cfg"]["hosts"].append("h2")
        second = store.capture("a", state, 1.0)
        assert store.restore(second) == {"cfg": {"retries": 2, "hosts": ["h1", "h2"]}}
        assert store.restore(first) == {"cfg": {"retries": 1, "hosts": ["h1"]}}

    def test_unchanged_mutable_key_reuses_pages_without_new_bytes(self):
        store = CowPageStore(page_size=32)
        state = {"cfg": {"retries": 1}}
        store.capture("a", state, 0.0)
        second = store.capture("a", state, 1.0)
        assert second.new_bytes == 0
        assert second.hashed_bytes == 0       # byte-identical pickle: hashes reused
        assert second.serialized_bytes > 0    # but the mutable key was re-pickled

    def test_bool_and_int_are_not_conflated(self):
        store = CowPageStore()
        state = {"flag": 1}
        store.capture("a", state, 0.0)
        state["flag"] = True  # 1 == True, but the restored value must be a bool
        second = store.capture("a", state, 1.0)
        restored = store.restore(second)
        assert restored["flag"] is True

    def test_negative_zero_is_not_conflated_with_zero(self):
        store = CowPageStore()
        state = {"x": 0.0}
        store.capture("a", state, 0.0)
        state["x"] = -0.0
        second = store.capture("a", state, 1.0)
        assert str(store.restore(second)["x"]) == "-0.0"

    def test_per_pid_caches_are_independent(self):
        store = CowPageStore(page_size=32)
        store.capture("a", {"v": "shared" * 20}, 0.0)
        hashed_after_a = store.hashed_bytes_total
        # same content for another pid: pages dedupe, but the capture still hashes
        checkpoint = store.capture("b", {"v": "shared" * 20}, 0.0)
        assert store.hashed_bytes_total > hashed_after_a
        assert checkpoint.new_bytes == 0  # content-addressing shares across pids


class TestTrustedScalarFastPath:
    """tuples and frozensets of scalars are immutable: equality with the
    cached value must skip re-pickling entirely (the old _SCALAR_TYPES
    fast path missed them and re-serialized clean keys every capture)."""

    def test_clean_tuple_of_scalars_skips_pickling(self):
        store = CowPageStore(page_size=64)
        state = {"pair": ("host", 8080), "nested": (1, ("a", 2.5), None)}
        store.capture("a", state, 0.0)
        serialized_first = store.serialized_bytes_total
        second = store.capture("a", state, 1.0)
        assert store.serialized_bytes_total == serialized_first  # no re-pickle
        assert second.serialized_bytes == 0
        assert store.restore(second) == state

    def test_clean_frozenset_of_scalars_skips_pickling(self):
        store = CowPageStore(page_size=64)
        state = {"members": frozenset({"a", "b", 3})}
        store.capture("a", state, 0.0)
        serialized_first = store.serialized_bytes_total
        second = store.capture("a", state, 1.0)
        assert store.serialized_bytes_total == serialized_first
        assert store.restore(second) == state

    def test_tuple_containing_mutable_is_not_trusted(self):
        store = CowPageStore(page_size=64)
        inner = [1, 2]
        state = {"t": ("tag", inner)}
        store.capture("a", state, 0.0)
        inner.append(3)  # mutation through the tuple must be captured
        second = store.capture("a", state, 1.0)
        assert store.restore(second) == {"t": ("tag", [1, 2, 3])}

    def test_replaced_tuple_is_detected(self):
        store = CowPageStore(page_size=64)
        state = {"pair": (1, 2)}
        store.capture("a", state, 0.0)
        state["pair"] = (1, 3)
        second = store.capture("a", state, 1.0)
        assert store.restore(second) == {"pair": (1, 3)}

    def test_frozenset_negative_zero_not_conflated(self):
        store = CowPageStore(page_size=64)
        state = {"s": frozenset({0.0})}
        store.capture("a", state, 0.0)
        state["s"] = frozenset({-0.0})  # equal sets, different pickles
        second = store.capture("a", state, 1.0)
        (member,) = store.restore(second)["s"]
        assert str(member) == "-0.0"

    def test_tuple_bool_vs_int_not_conflated(self):
        store = CowPageStore(page_size=64)
        state = {"t": (1,)}
        store.capture("a", state, 0.0)
        state["t"] = (True,)
        second = store.capture("a", state, 1.0)
        assert store.restore(second)["t"][0] is True


class TestChunkedCapture:
    """Delta-chunked large containers: captures scale with the element delta."""

    def test_large_list_single_mutation_pickles_one_chunk(self):
        store = CowPageStore(page_size=1024, chunk_threshold=100, chunk_elems=8)
        state = {"items": [f"value-{i:05d}" for i in range(1000)]}
        store.capture("a", state, 0.0)
        serialized_full = store.serialized_bytes_total
        state["items"][500] = "mutated!"
        second = store.capture("a", state, 1.0)
        # one dirty chunk of 8 elements, not the whole 1000-element key
        assert second.serialized_bytes < serialized_full / 20
        assert second.hashed_bytes < serialized_full / 20
        assert store.restore(second) == state

    def test_large_dict_mutation_value_and_order_preserved(self):
        store = CowPageStore(page_size=1024, chunk_threshold=100, chunk_elems=8)
        state = {"table": {f"k{i:04d}": i for i in range(500)}}
        store.capture("a", state, 0.0)
        state["table"]["k0250"] = -1
        second = store.capture("a", state, 1.0)
        restored = store.restore(second)
        assert restored == state
        # insertion order is part of dict identity and must round-trip
        assert list(restored["table"]) == list(state["table"])

    def test_large_dict_insert_and_delete(self):
        store = CowPageStore(page_size=1024, chunk_threshold=100, chunk_elems=8)
        state = {"table": {f"k{i:04d}": i for i in range(300)}}
        store.capture("a", state, 0.0)
        del state["table"]["k0123"]
        state["table"]["brand-new"] = 999
        second = store.capture("a", state, 1.0)
        restored = store.restore(second)
        assert restored == state
        assert list(restored["table"]) == list(state["table"])

    def test_dict_value_mutation_leaves_order_chunks_clean(self):
        store = CowPageStore(page_size=1024, chunk_threshold=100, chunk_elems=8)
        state = {"table": {f"k{i:04d}": i for i in range(500)}}
        store.capture("a", state, 0.0)
        clean_before = store.chunks_clean_total
        total_before = store.chunks_captured_total
        state["table"]["k0001"] = -5  # value-only mutation: order untouched
        store.capture("a", state, 1.0)
        captured = store.chunks_captured_total - total_before
        clean = store.chunks_clean_total - clean_before
        assert captured - clean <= 2  # the one dirty bucket (+ rounding slack)

    def test_large_set_add_and_remove(self):
        store = CowPageStore(page_size=1024, chunk_threshold=100, chunk_elems=8)
        state = {"seen": {f"id-{i:05d}" for i in range(400)}}
        store.capture("a", state, 0.0)
        state["seen"].discard("id-00123")
        state["seen"].add("id-99999")
        second = store.capture("a", state, 1.0)
        assert store.restore(second) == state

    def test_set_of_unhashable_reprs_falls_back_to_whole_value(self):
        # sets whose elements are not trusted scalars are captured whole
        store = CowPageStore(page_size=1024, chunk_threshold=10, chunk_elems=4)
        state = {"pairs": {(i, ("nested", i)) for i in range(50)}}
        checkpoint = store.capture("a", state, 0.0)
        assert store.restore(checkpoint) == state

    def test_below_threshold_containers_capture_whole(self):
        store = CowPageStore(page_size=64, chunk_threshold=100, chunk_elems=8)
        state = {"small": list(range(50))}
        checkpoint = store.capture("a", state, 0.0)
        assert checkpoint.key_layouts["small"].kind == "whole"
        assert store.restore(checkpoint) == state

    def test_chunking_disabled_with_none_threshold(self):
        store = CowPageStore(page_size=1024, chunk_threshold=None)
        state = {"items": list(range(1000))}
        checkpoint = store.capture("a", state, 0.0)
        assert checkpoint.key_layouts["items"].kind == "whole"
        assert store.restore(checkpoint) == state

    def test_list_growth_across_chunk_boundary(self):
        store = CowPageStore(page_size=1024, chunk_threshold=10, chunk_elems=4)
        state = {"log": [f"entry-{i}" for i in range(20)]}
        store.capture("a", state, 0.0)
        state["log"].extend(f"entry-{i}" for i in range(20, 35))
        second = store.capture("a", state, 1.0)
        assert store.restore(second) == state

    def test_dict_growth_across_bucket_doubling(self):
        store = CowPageStore(page_size=1024, chunk_threshold=10, chunk_elems=4)
        state = {"table": {f"k{i}": i for i in range(16)}}
        store.capture("a", state, 0.0)
        for i in range(16, 100):  # forces a power-of-two bucket re-chunk
            state["table"][f"k{i}"] = i
        second = store.capture("a", state, 1.0)
        restored = store.restore(second)
        assert restored == state
        assert list(restored["table"]) == list(state["table"])

    def test_gc_frees_chunked_pages_and_keeps_later_checkpoints(self):
        store = CowPageStore(page_size=256, chunk_threshold=50, chunk_elems=8)
        state = {"table": {f"k{i:04d}": f"v-{i}" for i in range(200)}}
        first = store.capture("a", state, 0.0)
        state["table"]["k0007"] = "mutated"
        second = store.capture("a", state, 1.0)
        freed = store.drop_before("a", second.sequence)
        assert freed >= 1  # the stale bucket's page(s)
        assert store.restore(second) == state
        with pytest.raises(CheckpointError):
            store.restore(first)

    def test_chunked_restore_after_many_rounds_matches(self):
        store = CowPageStore(page_size=1024, chunk_threshold=64, chunk_elems=8)
        state = {"table": {f"k{i:04d}": i for i in range(256)}, "round": 0}
        checkpoints = [store.capture("a", state, 0.0)]
        snapshots = [{k: dict(v) if isinstance(v, dict) else v for k, v in state.items()}]
        for round_index in range(1, 6):
            state["round"] = round_index
            for j in range(5):
                state["table"][f"k{(round_index * 37 + j * 11) % 256:04d}"] = round_index * 100 + j
            checkpoints.append(store.capture("a", state, float(round_index)))
            snapshots.append({k: dict(v) if isinstance(v, dict) else v for k, v in state.items()})
        for checkpoint, snapshot in zip(checkpoints, snapshots):
            restored = store.restore(checkpoint)
            assert restored == snapshot
            assert list(restored["table"]) == list(snapshot["table"])


class TestAliasedStates:
    def test_cross_key_aliasing_survives_restore(self):
        store = CowPageStore(page_size=32)
        shared = [1, 2, 3]
        state = {"a": shared, "b": shared, "n": 7}
        checkpoint = store.capture("p", state, 0.0)
        restored = store.restore(checkpoint)
        assert restored == state
        assert restored["a"] is restored["b"]  # identity sharing preserved

    def test_self_referential_state_survives_restore(self):
        store = CowPageStore(page_size=32)
        state = {"v": 1}
        state["self"] = state
        checkpoint = store.capture("p", state, 0.0)
        restored = store.restore(checkpoint)
        assert restored["self"] is restored
        assert restored["v"] == 1

    def test_aliased_capture_still_skips_rehash_when_unchanged(self):
        store = CowPageStore(page_size=32)
        shared = ["x"] * 50
        state = {"a": shared, "b": shared}
        store.capture("p", state, 0.0)
        hashed_first = store.hashed_bytes_total
        second = store.capture("p", state, 1.0)
        assert store.hashed_bytes_total == hashed_first  # blob unchanged: no re-hash
        assert second.new_bytes == 0
        restored = store.restore(second)
        assert restored["a"] is restored["b"]


class TestRefcountGC:
    def test_drop_checkpoint_leaves_interleaved_chain_restorable(self):
        # the speculation manager shares the store with periodic
        # checkpointing: dropping the speculation's own checkpoint must
        # not take the periodic ones with it
        store = CowPageStore(page_size=32)
        state = {"hot": "v1"}
        periodic = store.capture("p", state, 0.0)
        state["hot"] = "v2"
        spec_entry = store.capture("p", state, 1.0)
        state["hot"] = "v3"
        later = store.capture("p", state, 2.0)
        freed = store.drop_checkpoint("p", spec_entry.sequence)
        assert freed >= 1
        assert store.restore(periodic) == {"hot": "v1"}
        assert store.restore(later) == {"hot": "v3"}
        with pytest.raises(CheckpointError):
            store.restore(spec_entry)

    def test_drop_checkpoint_unknown_sequence_is_noop(self):
        store = CowPageStore(page_size=32)
        checkpoint = store.capture("p", {"v": 1}, 0.0)
        assert store.drop_checkpoint("p", checkpoint.sequence + 5) == 0
        assert store.drop_checkpoint("other", 1) == 0
        assert store.restore(checkpoint) == {"v": 1}

    def test_speculation_resolve_spares_other_policies_checkpoints(self):
        # A periodic-policy checkpoint taken before the speculation must
        # survive the speculation's commit-time GC of the shared store.
        store = CowPageStore(page_size=32)
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        manager = SpeculationManager(cow_store=store)
        cluster.add_hook(manager)
        cluster.start()
        process = cluster.process("p0")
        periodic = store.capture("p0", process.state, cluster.now, policy="periodic")
        spec = manager.begin("p0", "remote will ack")
        manager.commit(spec.spec_id)
        assert manager.cow_pages_freed >= 0
        assert store.restore(periodic) == process.state
        # the speculation's own entry checkpoint is gone from the chain
        remaining = [c.sequence for c in store.chain("p0")]
        assert spec.cow_checkpoints["p0"].sequence not in remaining
        assert periodic.sequence in remaining

    def test_drop_before_frees_only_unshared_pages(self):
        store = CowPageStore(page_size=32)
        state = {"stable": "s" * 200, "hot": "v1"}
        first = store.capture("a", state, 0.0)
        state["hot"] = "v2"
        second = store.capture("a", state, 1.0)
        pages_before = store.stored_pages()
        freed = store.drop_before("a", second.sequence)
        # only the old "hot" page goes; the shared "stable" pages survive
        assert freed >= 1
        assert store.stored_pages() == pages_before - freed
        assert store.restore(second) == state
        with pytest.raises(CheckpointError):
            store.restore(first)

    def test_restore_after_dropping_entire_chain(self):
        store = CowPageStore(page_size=32)
        state = {"v": "x" * 100}
        last = store.capture("a", state, 0.0)
        freed = store.drop_before("a", last.sequence + 1)
        assert freed > 0
        with pytest.raises(CheckpointError):
            store.restore(last)

    def test_capture_after_full_gc_rematerializes_clean_pages(self):
        store = CowPageStore(page_size=32)
        state = {"v": "x" * 100}
        last = store.capture("a", state, 0.0)
        store.drop_before("a", last.sequence + 1)  # frees every page
        # the key is clean in the cache, but its pages are gone: capture
        # must put them back rather than reference missing pages
        fresh = store.capture("a", state, 1.0)
        assert store.restore(fresh) == state

    def test_drop_before_is_per_pid(self):
        store = CowPageStore(page_size=32)
        a_ckpt = store.capture("a", {"v": "a" * 100}, 0.0)
        b_ckpt = store.capture("b", {"v": "b" * 100}, 0.0)
        store.drop_before("a", a_ckpt.sequence + 1)
        assert store.restore(b_ckpt) == {"v": "b" * 100}
        with pytest.raises(CheckpointError):
            store.restore(a_ckpt)

    def test_shared_pages_survive_until_last_reference(self):
        store = CowPageStore(page_size=32)
        state = {"v": "same" * 50}
        first = store.capture("a", state, 0.0)
        second = store.capture("a", state, 1.0)  # same pages, +1 ref each
        freed = store.drop_before("a", second.sequence)
        assert freed == 0  # second still references every page
        assert store.restore(second) == state
        freed = store.drop_before("a", second.sequence + 1)
        assert freed > 0

    def test_interleaved_capture_and_gc_accounting_stays_exact(self):
        store = CowPageStore(page_size=64)
        state = {f"k{i}": f"v0-{i}" * 10 for i in range(10)}
        checkpoints = [store.capture("a", state, 0.0)]
        for round_index in range(1, 8):
            state[f"k{round_index % 10}"] = f"v{round_index}" * 10
            checkpoints.append(store.capture("a", state, float(round_index)))
            if round_index % 3 == 0:
                store.drop_before("a", checkpoints[-2].sequence)
        latest = checkpoints[-1]
        assert store.restore(latest) == state
        # stored never exceeds logical (the COW invariant)
        assert store.stored_bytes() <= store.logical_bytes()
