"""Unit tests for the ``repro.api`` facade: registry, specs, scenarios,
experiments, suites — plus the FixD satellites that ride along with the
facade (idempotent-or-loud ``attach``, periodic recovery-line commit).
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    Cluster,
    ClusterConfig,
    Corrupt,
    Crash,
    Delay,
    Drop,
    Duplicate,
    Experiment,
    FaultSchedule,
    FixD,
    FixDConfig,
    Partition,
    Scenario,
    ScenarioError,
    UnknownAppError,
    apps,
    execute,
    load_suite,
    run_scenario,
    save_suite,
)
from repro.api.faults import apply_corruption_ops, spec_from_dict, spec_to_dict
from repro.errors import AttachmentError
from repro.scroll.interceptor import RecordingPolicy


class TestAppRegistry:
    def test_builtin_apps_registered(self):
        names = apps.app_names()
        for expected in (
            "bank",
            "kvstore",
            "leader_election",
            "token_ring",
            "two_phase_commit",
            "wordcount",
            "wordcount_burst",
        ):
            assert expected in names

    def test_unknown_app_lists_known_names(self):
        with pytest.raises(UnknownAppError) as excinfo:
            apps.app("does-not-exist")
        assert "kvstore" in str(excinfo.value)

    def test_register_rejects_silent_override(self):
        with pytest.raises(ScenarioError, match="already registered"):
            apps.register_app("kvstore", lambda cluster: None, checks={"default": lambda s: True})

    def test_register_requires_default_check(self):
        with pytest.raises(ScenarioError, match="default"):
            apps.register_app("no-check-app", lambda cluster: None, checks={})

    def test_build_merges_defaults_and_rejects_unknown_params(self):
        cluster = Cluster(ClusterConfig(seed=1))
        apps.build(cluster, "token_ring", nodes=4)
        assert len(cluster.pids) == 4
        with pytest.raises(ScenarioError, match="does not accept"):
            apps.build(Cluster(ClusterConfig(seed=1)), "token_ring", bogus=1)

    def test_exports_give_classes_without_internal_imports(self):
        bank = apps.app("bank")
        assert "BankBranch" in bank.exports and "total_balance" in bank.exports
        assert callable(bank.check("conservation"))
        with pytest.raises(ScenarioError, match="no consistency check"):
            bank.check("nope")


class TestFaultSpecs:
    def test_crash_validates_recovery_order(self):
        with pytest.raises(ScenarioError, match="strictly after"):
            Crash(pid="p0", at=5.0, recover_at=4.0)

    def test_delay_needs_positive_extra_delay(self):
        with pytest.raises(ScenarioError, match="positive"):
            Delay(match_kind="X", extra_delay=0.0)

    def test_partition_validates_shape(self):
        with pytest.raises(ScenarioError, match="two groups"):
            Partition(groups=(("a", "b"),), start=1.0, end=2.0)
        with pytest.raises(ScenarioError, match="after its start"):
            Partition(groups=(("a",), ("b",)), start=2.0, end=2.0)

    def test_corrupt_validates_ops(self):
        with pytest.raises(ScenarioError, match="at least one"):
            Corrupt(pid="p0", at=1.0, ops=())
        with pytest.raises(ScenarioError, match="unknown corruption op"):
            Corrupt(pid="p0", at=1.0, ops=(("frobnicate", ("k",), 1),))

    def test_corruption_ops_apply(self):
        state = {"a": 1, "nested": {"b": 2}, "log": [1]}
        apply_corruption_ops(
            state,
            (
                ("set", ("nested", "b"), 9),
                ("add", ("a",), 10),
                ("append", ("log",), 2),
            ),
        )
        assert state == {"a": 11, "nested": {"b": 9}, "log": [1, 2]}

    def test_corrupt_compiles_to_state_corruption_fault(self):
        spec = Corrupt(pid="p0", at=1.0, ops=(("set", ("k",), 5),), description="boom")
        fault = spec.to_fault()
        state = {"k": 0}
        fault.mutator(state)
        assert state["k"] == 5 and fault.pid == "p0"

    def test_spec_dict_round_trip(self):
        specs = [
            Crash(pid="p0", at=1.0, recover_at=2.0),
            Drop(match_kind="MSG", count=None, after=1.5),
            Duplicate(match_src="a", match_dst="b"),
            Delay(match_kind="MSG", extra_delay=2.5, count=3),
            Partition(groups=(("a", "b"), ("c",)), start=1.0, end=2.0),
            Corrupt(pid="p1", at=3.0, ops=(("append", ("xs",), 7),)),
        ]
        for spec in specs:
            payload = json.loads(json.dumps(spec_to_dict(spec)))
            assert spec_from_dict(payload) == spec

    def test_spec_from_dict_rejects_junk(self):
        with pytest.raises(ScenarioError, match="unknown fault kind"):
            spec_from_dict({"kind": "gremlin"})
        with pytest.raises(ScenarioError, match="unknown fields"):
            spec_from_dict({"kind": "crash", "pid": "p", "at": 1.0, "frob": 2})


class TestFaultSchedule:
    def test_composition_preserves_order(self):
        a = FaultSchedule.of(Drop(match_kind="A"))
        b = FaultSchedule.of(Delay(match_kind="B", extra_delay=1.0))
        combined = a + b
        chained = a.then(Delay(match_kind="B", extra_delay=1.0))
        assert combined == chained
        assert [spec.kind for spec in combined.faults] == ["drop", "delay"]
        assert combined.kinds == ("drop", "delay")
        assert combined.label == "drop+delay"
        assert FaultSchedule().label == "fault-free"

    def test_to_plan_categorizes(self):
        schedule = FaultSchedule.of(
            Crash(pid="p0", at=1.0),
            Drop(match_kind="A"),
            Partition(groups=(("a",), ("b",)), start=1.0, end=2.0),
            Corrupt(pid="p1", at=2.0, ops=(("set", ("k",), 1),)),
        )
        plan = schedule.to_plan()
        assert plan.summary() == {
            "crashes": 1,
            "message_faults": 1,
            "partitions": 1,
            "corruptions": 1,
        }
        assert schedule.message_specs() == [schedule.faults[1]]

    def test_rejects_non_spec_entries(self):
        with pytest.raises(ScenarioError, match="fault specs"):
            FaultSchedule.of("crash")


class TestScenario:
    def test_default_name_and_validation(self):
        scenario = Scenario(app="token_ring", faults=FaultSchedule.of(Drop(match_kind="TOKEN")))
        assert scenario.name == "token_ring-drop"
        with pytest.raises(ScenarioError, match="unknown backend"):
            Scenario(app="token_ring", backend="quantum")
        with pytest.raises(ScenarioError, match="until"):
            Scenario(app="token_ring", backend="mp")

    def test_json_round_trip_byte_identical(self):
        scenario = Scenario(
            app="bank",
            params={"branches": 3, "fixed": True},
            check="conservation",
            faults=FaultSchedule.of(
                Duplicate(match_kind="TRANSFER_ACK"),
                Corrupt(pid="branch1", at=3.5, ops=(("set", ("in_flight_debits",), -5),)),
            ),
            expect_violation=True,
            hot_window=32,
        )
        text = scenario.to_json()
        rebuilt = Scenario.from_json(text)
        assert rebuilt == scenario
        assert rebuilt.to_json().encode() == text.encode()

    def test_from_dict_rejects_unknown_fields(self):
        payload = Scenario(app="token_ring").to_dict()
        payload["surprise"] = 1
        with pytest.raises(ScenarioError, match="unknown fields"):
            Scenario.from_dict(payload)

    def test_transport_field_validated_and_serialized(self):
        scenario = Scenario(app="token_ring", backend="mp", until=60.0, transport="shm")
        assert scenario.name == "token_ring-fault-free-mp-shm"
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt == scenario and rebuilt.transport == "shm"
        # older artefacts without the field default to the pipe transport
        payload = scenario.to_dict()
        del payload["transport"]
        payload["name"] = ""
        assert Scenario.from_dict(payload).transport == "pipe"
        with pytest.raises(ScenarioError, match="unknown transport"):
            Scenario(app="token_ring", backend="mp", until=60.0, transport="carrier-pigeon")
        with pytest.raises(ScenarioError, match="mp-backend knob"):
            Scenario(app="token_ring", transport="shm")

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            Scenario.from_json("{nope")

    def test_run_unknown_app_fails_loudly(self):
        with pytest.raises(UnknownAppError):
            run_scenario(Scenario(app="made-up"))

    def test_run_unknown_check_fails_loudly(self):
        with pytest.raises(ScenarioError, match="consistency check"):
            run_scenario(Scenario(app="token_ring", check="nope"))


class TestExperiment:
    def test_grid_builds_cross_product_with_unique_names(self):
        experiment = Experiment.grid(
            apps=("token_ring", "wordcount"),
            faults=(FaultSchedule(), FaultSchedule.of(Drop(count=1))),
            seeds=(1, 2),
        )
        assert len(experiment.scenarios) == 8
        names = {scenario.name for scenario in experiment.scenarios}
        assert len(names) == 8
        assert "token_ring-fault-free-sim-s1" in names

    def test_duplicate_names_rejected(self):
        scenario = Scenario(app="token_ring", name="dup")
        with pytest.raises(ScenarioError, match="duplicate scenario name"):
            Experiment([scenario, scenario])

    def test_grid_requires_schedules(self):
        with pytest.raises(ScenarioError, match="FaultSchedule"):
            Experiment.grid(apps=("token_ring",), faults=(Drop(),))

    def test_grid_axes_may_be_generators(self):
        """Regression: grid len()-ed the seeds axis and then iterated it
        again, so a generator axis silently drained and produced either an
        empty grid or unsuffixed duplicate names.  Every axis is now
        materialized exactly once up front."""
        experiment = Experiment.grid(
            apps=(app for app in ("token_ring", "wordcount")),
            faults=iter((FaultSchedule(),)),
            seeds=(seed for seed in (1, 2, 3)),
        )
        assert len(experiment.scenarios) == 6
        names = {scenario.name for scenario in experiment.scenarios}
        assert len(names) == 6
        # multi-seed grids still get the per-seed name suffix
        assert "token_ring-fault-free-sim-s3" in names

    def test_grid_with_empty_axis_is_rejected(self):
        with pytest.raises(ScenarioError, match="empty"):
            Experiment.grid(apps=("token_ring",), seeds=())
        with pytest.raises(ScenarioError, match="empty"):
            Experiment.grid(apps=(), seeds=(1,))

    def test_grid_transport_axis_applies_to_mp_cells_only(self):
        experiment = Experiment.grid(
            apps=("token_ring",),
            backends=("sim", "mp"),
            transports=("pipe", "shm"),
            until=60.0,
        )
        names = [scenario.name for scenario in experiment.scenarios]
        # one sim cell (the simulator has no transport) + one mp cell per transport
        assert names == [
            "token_ring-fault-free-sim",
            "token_ring-fault-free-mp",
            "token_ring-fault-free-mp-shm",
        ]
        by_name = {s.name: s for s in experiment.scenarios}
        assert by_name["token_ring-fault-free-mp-shm"].transport == "shm"
        assert by_name["token_ring-fault-free-sim"].transport == "pipe"

    def test_run_preserves_order_and_collects_outcomes(self):
        experiment = Experiment.grid(
            apps=("token_ring",),
            faults=(FaultSchedule(), FaultSchedule.of(Drop(match_kind="TOKEN"))),
            params={"nodes": 3, "max_rounds": 3},
        )
        outcomes = experiment.run()
        assert [o.scenario_id for o in outcomes] == [s.name for s in experiment.scenarios]
        assert experiment.passed and not experiment.failures()
        assert "PASS" in experiment.describe()

    @pytest.mark.slow
    def test_process_pool_matches_serial_projections(self):
        def grid(processes):
            return Experiment.grid(
                apps=("token_ring", "leader_election"),
                faults=(FaultSchedule.of(Delay(count=1, extra_delay=2.0)),),
                processes=processes,
            )

        serial = [outcome.projection() for outcome in grid(None).run()]
        pooled = [outcome.projection() for outcome in grid(2).run()]
        assert serial == pooled


class TestOutcome:
    def test_crash_outcome_fields(self):
        scenario = Scenario(
            app="kvstore",
            params={"replicas": 2, "clients": 1},
            faults=FaultSchedule.of(Crash(pid="replica1", at=3.0, recover_at=8.0)),
            recovering=("replica1",),
        )
        outcome = run_scenario(scenario)
        assert outcome.passed and outcome.detected and outcome.consistent
        assert outcome.observed == {"crash": True}
        assert outcome.recovered == {"replica1": True}
        assert outcome.reported and "Injected faults" in outcome.incident
        assert outcome.final_states["replica1"]["store"] is not None
        assert outcome.scroll["entries"] > 0

    def test_violation_outcome_reports_and_rolls_back(self):
        scenario = Scenario(
            app="wordcount",
            params={"workers": 2, "chunks": 8},
            faults=FaultSchedule.of(Duplicate(match_kind="COUNTED")),
            expect_violation=True,
        )
        outcome = run_scenario(scenario)
        assert outcome.passed, outcome.failures
        assert outcome.reports >= 1 and outcome.rolled_back
        report = outcome.bug_reports[0]
        assert report["invariant"] and report["scroll_tail_entries"] > 0

    def test_failed_expectation_is_reported_not_raised(self):
        # a fault-free run that *claims* it provokes a violation must fail
        scenario = Scenario(app="token_ring", expect_violation=True)
        outcome = run_scenario(scenario)
        assert not outcome.passed
        assert any("violation" in failure for failure in outcome.failures)
        assert "FAIL" in outcome.summary()

    def test_execute_exposes_live_objects(self):
        run = execute(Scenario(app="kvstore", params={"replicas": 2, "clients": 1}))
        assert run.cluster.pids == ["client0", "replica0", "replica1"]
        assert len(run.fixd.scroll) == run.outcome.scroll["entries"]
        factories = run.replay_factories()
        assert set(factories) == set(run.cluster.pids)
        assert run.outcome.projection()["scenario"] == run.scenario.name


class TestSuiteFiles:
    def test_save_load_round_trip(self, tmp_path):
        scenarios = [
            Scenario(app="token_ring", name="a", faults=FaultSchedule.of(Drop(match_kind="TOKEN"))),
            Scenario(app="wordcount", name="b"),
        ]
        path = save_suite(scenarios, tmp_path / "suite.json")
        assert load_suite(path) == scenarios

    def test_load_missing_and_malformed(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            load_suite(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{]")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_suite(bad)
        empty = tmp_path / "empty.json"
        empty.write_text('{"version": 1, "scenarios": []}')
        with pytest.raises(ScenarioError, match="no scenarios"):
            load_suite(empty)
        versioned = tmp_path / "versioned.json"
        versioned.write_text('{"version": 99, "scenarios": [{}]}')
        with pytest.raises(ScenarioError, match="unsupported version"):
            load_suite(versioned)

    def test_main_runs_suite(self, tmp_path, capsys):
        from repro.api.__main__ import main

        path = save_suite([Scenario(app="token_ring", name="cli-run")], tmp_path / "s.json")
        assert main([str(path)]) == 0
        assert "cli-run" in capsys.readouterr().out
        assert main([]) == 2


class TestAttachIdempotence:
    def test_second_attach_raises(self):
        fixd = FixD(FixDConfig(investigate_on_fault=False))
        cluster = Cluster(ClusterConfig(seed=1))
        fixd.attach(cluster)
        with pytest.raises(AttachmentError, match="already attached"):
            fixd.attach(cluster)
        with pytest.raises(AttachmentError):
            fixd.attach(Cluster(ClusterConfig(seed=2)))
        # the hook chain holds exactly one recorder and one detector
        hooks = cluster.hooks.hooks
        assert hooks.count(fixd.recorder) == 1
        assert hooks.count(fixd.detector) == 1
        assert len(fixd.detector.responders) == 1

    def test_make_cluster_then_attach_raises(self):
        fixd = FixD(FixDConfig(investigate_on_fault=False))
        fixd.make_cluster(ClusterConfig(seed=1))
        with pytest.raises(AttachmentError):
            fixd.attach(Cluster(ClusterConfig(seed=2)))


class TestAutoCommit:
    def _run(self, interval):
        cluster = Cluster(ClusterConfig(seed=11, halt_on_violation=False))
        apps.build(cluster, "wordcount", workers=2, chunks=10)
        fixd = FixD(
            FixDConfig(
                investigate_on_fault=False,
                recording_policy=RecordingPolicy(hot_window=16),
                auto_commit_interval=interval,
            )
        )
        fixd.attach(cluster)
        result = cluster.run(max_events=8000)
        return cluster, fixd, result

    def test_auto_commit_bounds_scroll_storage(self):
        _cluster, fixd, result = self._run(interval=3.0)
        assert result.ok
        committer = fixd.auto_committer
        assert committer is not None and committer.commits >= 1
        assert committer.entries_collected > 0
        manager = fixd.time_machine.rollback_manager
        assert manager.committed_lines
        storage = fixd.scroll.storage_stats()
        assert storage["collected_entries"] == committer.entries_collected
        stats = fixd.stats()
        assert stats["auto_commits"] == committer.commits

    def test_disabled_by_default(self):
        _cluster, fixd, result = self._run(interval=None)
        assert result.ok
        assert fixd.auto_committer is None
        assert fixd.scroll.storage_stats()["collected_entries"] == 0

    def test_rollback_still_possible_with_auto_commit(self):
        # A provoked violation after commits must still roll back: the
        # age margin keeps the recovery line ahead of the commit frontier.
        scenario = Scenario(
            app="wordcount",
            name="wc-autocommit-rollback",
            params={"workers": 2, "chunks": 8},
            faults=FaultSchedule.of(Duplicate(match_kind="COUNTED")),
            expect_violation=True,
            hot_window=16,
            auto_commit_interval=2.0,
        )
        outcome = run_scenario(scenario)
        assert outcome.passed, outcome.failures
        assert outcome.rolled_back

    def test_interval_must_be_positive(self):
        from repro.core.fixd import PeriodicLineCommitter
        from repro.timemachine.time_machine import TimeMachine

        with pytest.raises(ValueError, match="positive"):
            PeriodicLineCommitter(TimeMachine(), 0.0)
