"""Tiered Scroll storage: segment store, spill behaviour, truncation, vt fast path."""

from __future__ import annotations

import pytest

from repro.core.fixd import FixD, FixDConfig
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.message import Message
from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.interceptor import InterceptionMode, RecordingPolicy
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.scroll import Scroll
from repro.scroll.storage import SegmentStore
from repro.timemachine.time_machine import TimeMachine

from tests.conftest import BoundedCounterBuggy, PingPong, RandomWorker, make_cluster


def make_entries(n: int, pids: int = 3):
    entries = []
    for index in range(n):
        pid = f"p{index % pids}"
        kind = [ActionKind.SEND, ActionKind.RECEIVE, ActionKind.RANDOM][index % 3]
        if kind is ActionKind.RANDOM:
            detail = {"method": "random", "value": index / 7.0}
        else:
            detail = {
                "message": {
                    "msg_id": index,
                    "src": pid,
                    "dst": "p0",
                    "kind": "X",
                    "payload": index,
                }
            }
        entries.append(ScrollEntry(pid=pid, kind=kind, time=index * 0.25, detail=detail))
    return entries


# ----------------------------------------------------------------------
# SegmentStore
# ----------------------------------------------------------------------
class TestSegmentStore:
    def test_round_trip_point_and_range_reads(self, tmp_path):
        entries = make_entries(40)
        store = SegmentStore(tmp_path / "segs")
        store.append_segment(entries[:25])
        store.append_segment(entries[25:])
        assert len(store) == 40
        assert store.get(0) == entries[0]
        assert store.get(39) == entries[39]
        assert store.get_many(range(10, 30)) == entries[10:30]
        assert list(store.iter_range(0, 40)) == entries
        assert list(store.iter_range(20, 28)) == entries[20:28]
        assert store.segment_count() == 2
        assert store.disk_bytes() > 0

    def test_empty_segment_rejected(self, tmp_path):
        store = SegmentStore(tmp_path)
        with pytest.raises(ValueError):
            store.append_segment([])

    def test_lru_cache_bounds_and_hits(self, tmp_path):
        entries = make_entries(20)
        store = SegmentStore(tmp_path, cache_size=4)
        store.append_segment(entries)
        for position in range(8):
            store.get(position)
        assert store.stats()["cache_entries"] == 4
        before = store.cache_hits
        store.get(7)  # most recent — must be a hit
        assert store.cache_hits == before + 1

    def test_truncate_drops_segments_and_index(self, tmp_path):
        entries = make_entries(30)
        store = SegmentStore(tmp_path / "t")
        first = store.append_segment(entries[:10])
        second = store.append_segment(entries[10:20])
        third = store.append_segment(entries[20:])
        assert store.truncate(15) == 15
        assert len(store) == 15
        # whole segment past the cut is unlinked; boundary file remains
        assert not third.path.exists()
        assert second.path.exists() and first.path.exists()
        assert list(store.iter_range(0, 15)) == entries[:15]
        with pytest.raises(IndexError):
            store.get(15)
        # appending after a truncate keeps positions contiguous
        store.append_segment(entries[15:18])
        assert store.get_many([14, 15, 16, 17]) == entries[14:18]

    def test_owned_tempdir_is_cleaned_on_close(self):
        store = SegmentStore()
        directory = store.directory
        store.append_segment(make_entries(5))
        assert directory.exists()
        store.close()
        assert not directory.exists()


# ----------------------------------------------------------------------
# tiered Scroll
# ----------------------------------------------------------------------
class TestTieredScroll:
    def test_spills_past_hot_window_and_preserves_queries(self, tmp_path):
        entries = make_entries(400)
        memory = Scroll(entries)
        tiered = Scroll(entries, hot_window=64, storage_dir=tmp_path / "cold")
        assert tiered.is_tiered
        assert tiered.spill_watermark > 0
        assert tiered.hot_entries <= 64
        assert len(tiered) == len(memory) == 400
        for pid in ("p0", "p1", "p2"):
            assert tiered.entries_for(pid) == memory.entries_for(pid)
            assert tiered.received_messages(pid) == memory.received_messages(pid)
            assert tiered.random_outcomes(pid) == memory.random_outcomes(pid)
            assert list(tiered.iter_entries_for(pid, batch=17)) == memory.entries_for(pid)
        assert tiered.of_kind(ActionKind.SEND) == memory.of_kind(ActionKind.SEND)
        assert tiered.nondeterministic() == memory.nondeterministic()
        assert tiered.between(3.0, 77.0) == memory.between(3.0, 77.0)
        assert list(tiered) == entries
        assert tiered.entries == memory.entries
        assert tiered[0] == entries[0] and tiered[-1] == entries[-1]
        assert tiered[10:50] == entries[10:50]
        assert tiered.last_entry("p1") == memory.last_entry("p1")

    def test_resident_memory_tracks_hot_window(self, tmp_path):
        entries = make_entries(2000)
        memory = Scroll(entries)
        tiered = Scroll(entries, hot_window=200, storage_dir=tmp_path / "cold")
        assert memory.resident_bytes() / tiered.resident_bytes() >= 4.0

    def test_truncate_inside_hot_tier(self):
        entries = make_entries(100)
        tiered = Scroll(entries, hot_window=60)
        oracle = Scroll(entries[:80])
        assert tiered.truncate(80) == 20
        assert list(tiered) == list(oracle)
        assert tiered.counts_by_kind() == oracle.counts_by_kind()

    def test_truncate_into_cold_tier_then_append(self):
        entries = make_entries(300)
        tiered = Scroll(entries, hot_window=32)
        assert tiered.spill_watermark > 40
        tiered.truncate(40)
        oracle = Scroll(entries[:40])
        assert list(tiered) == list(oracle)
        for entry in entries[40:90]:
            tiered.append(entry)
            oracle.append(entry)
        assert list(tiered) == list(oracle)
        assert tiered.entries_for("p2") == oracle.entries_for("p2")
        assert tiered.pids() == oracle.pids()

    def test_interleaved_iterators_share_segment_handles_safely(self):
        """Two live iterators over the same spilled segments must not corrupt
        each other's stream (the per-segment file handle is shared)."""
        entries = make_entries(50)
        tiered = Scroll(entries, hot_window=4)
        assert tiered.entries == tiered.entries  # two interleaved iterations
        paired = list(zip(iter(tiered), iter(tiered)))
        assert paired == [(entry, entry) for entry in entries]
        # a cache-missing point read in the middle of an iteration
        tiered._store.clear_cache()
        seen = []
        for index, entry in enumerate(tiered):
            if index % 7 == 0:
                tiered[index // 2]  # interleaved point get on the same segments
            seen.append(entry)
        assert seen == entries

    def test_iteration_survives_appends_that_spill(self):
        """Appending (and spilling) mid-iteration must never skip existing
        entries — recording while saving is a supported pattern."""
        entries = make_entries(16)
        tiered = Scroll(entries[:10], hot_window=4)
        extra = iter(entries[10:])
        seen = []
        for index, entry in enumerate(tiered._iter_tiered(chunk=2)):
            seen.append(entry)
            if index == 3:
                for late in extra:  # six appends -> at least one spill
                    tiered.append(late)
        assert seen == entries

    def test_iteration_survives_first_spill_mid_iteration(self):
        """Even a tiered Scroll that has not spilled yet must iterate
        append-safely: the FIRST spill shifts the hot list."""
        entries = make_entries(16)
        tiered = Scroll(entries[:8], hot_window=10)  # tiered, nothing spilled yet
        assert tiered.spill_watermark == 0
        seen = []
        appended = False
        for entry in tiered:
            seen.append(entry)
            if not appended:
                appended = True
                for late in entries[8:]:  # pushes past the window -> first spill
                    tiered.append(late)
        assert seen == entries

    def test_storage_stats_shape(self):
        tiered = Scroll(make_entries(100), hot_window=10)
        stats = tiered.storage_stats()
        assert stats["tiered"] and stats["entries"] == 100
        assert stats["spilled_entries"] + stats["hot_entries"] == 100
        assert stats["store"]["segments"] >= 1

    def test_hot_window_validation(self):
        with pytest.raises(ValueError):
            Scroll(hot_window=0)


# ----------------------------------------------------------------------
# recorder: tiered construction + vector timestamps in the hook payload
# ----------------------------------------------------------------------
class TestRecorderFastPath:
    def test_policy_hot_window_builds_tiered_scroll(self):
        recorder = ScrollRecorder(policy=RecordingPolicy(hot_window=128))
        assert recorder.scroll.is_tiered

    def test_recorder_uses_payload_vt_without_process_lookup(self, monkeypatch):
        recorder = ScrollRecorder()

        def boom(pid):  # the slow path must not run when vt is carried
            raise AssertionError("_vt_of consulted despite vt in payload")

        monkeypatch.setattr(recorder, "_vt_of", boom)
        cluster = make_cluster({"r0": RandomWorker, "r1": RandomWorker}, seed=3)
        cluster.add_hook(recorder)
        cluster.run(max_events=200)
        recorded = recorder.scroll
        assert len(recorded) > 0
        vt_kinds = (ActionKind.SEND, ActionKind.RECEIVE, ActionKind.RANDOM, ActionKind.TIMER)
        assert all(entry.vt is not None for entry in recorded.of_kind(*vt_kinds))

    def test_fallback_vt_lookup_still_works(self):
        recorder = ScrollRecorder()
        message = Message(src="a", dst="b", kind="X", payload=1)
        recorder.on_send("a", message, 1.0)  # no vt, no cluster -> vt stays None
        assert recorder.scroll.last_entry().vt is None

    def test_violation_entries_carry_vt(self):
        recorder = ScrollRecorder()
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy},
            seed=2,
            halt_on_violation=False,
        )
        cluster.add_hook(recorder)
        cluster.run(max_events=40)
        violations = recorder.scroll.violations()
        assert violations and all(entry.vt is not None for entry in violations)


# ----------------------------------------------------------------------
# checkpoints record the spill watermark; rollback truncates both tiers
# ----------------------------------------------------------------------
class TestRollbackTruncation:
    def _run_with_recorder(self, hot_window=None):
        policy = RecordingPolicy(InterceptionMode.SYSCALL, hot_window=hot_window)
        recorder = ScrollRecorder(policy=policy)
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.add_hook(recorder)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run()
        return cluster, recorder.scroll, time_machine

    def test_checkpoints_stamp_scroll_position(self):
        _, scroll, time_machine = self._run_with_recorder()
        positions = [
            checkpoint.extra.get("scroll_position")
            for pid in time_machine.store.pids()
            for checkpoint in time_machine.store.log_for(pid)
        ]
        assert positions and all(p is not None for p in positions)
        assert max(positions) <= len(scroll)
        line_position = time_machine.latest_recovery_line().scroll_position()
        assert line_position is not None

    def test_rollback_truncates_both_tiers(self):
        cluster, scroll, time_machine = self._run_with_recorder(hot_window=4)
        assert scroll.spill_watermark > 0
        line = time_machine.latest_recovery_line()
        expected = line.scroll_position()
        before = len(scroll)
        result = time_machine.rollback_to(line, truncate_scroll=True)
        assert result.scroll_entries_truncated == before - expected
        assert len(scroll) == expected
        assert cluster.scroll is scroll

    def test_rollback_without_flag_keeps_scroll(self):
        _, scroll, time_machine = self._run_with_recorder()
        before = len(scroll)
        result = time_machine.rollback_to(time_machine.latest_recovery_line())
        assert result.scroll_entries_truncated == 0
        assert len(scroll) == before

    def test_fixd_truncates_after_report_assembly(self):
        cluster = make_cluster(
            {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy},
            seed=2,
            halt_on_violation=False,
        )
        fixd = FixD(
            FixDConfig(
                investigate_on_fault=False,
                max_faults_handled=1,
                truncate_scroll_on_rollback=True,
            )
        )
        fixd.attach(cluster)
        cluster.run(max_events=60)
        assert fixd.reports
        report = fixd.reports[0]
        assert report.rollback is not None
        assert report.rollback.scroll_entries_truncated > 0
        # the report's tail was captured before truncation
        assert report.bug_report.scroll_tail
        assert len(fixd.scroll) <= report.rollback.recovery_line.scroll_position() + len(
            fixd.scroll.entries_for("c0")
        )


# ----------------------------------------------------------------------
# Segment garbage collection (committed recovery lines)
# ----------------------------------------------------------------------
class TestSegmentCollection:
    def _spilled_store(self, tmp_path, segments=4, per_segment=10):
        entries = make_entries(segments * per_segment)
        store = SegmentStore(tmp_path / "segs")
        for index in range(segments):
            store.append_segment(entries[index * per_segment:(index + 1) * per_segment])
        return store, entries

    def test_collect_unlinks_whole_prefix_segments(self, tmp_path):
        store, entries = self._spilled_store(tmp_path)
        files_before = sorted(store.directory.glob("*.seg"))
        assert len(files_before) == 4
        # position 25 sits inside segment 2: only segments 0 and 1 qualify
        removed = store.collect(25)
        assert removed == 20
        assert store.base == 20
        assert store.segment_count() == 2
        assert len(sorted(store.directory.glob("*.seg"))) == 2
        # reachable reads are untouched, collected positions fail loudly
        for position in range(20, 40):
            assert store.get(position) == entries[position]
        with pytest.raises(IndexError):
            store.get(19)
        assert store.get_many(list(range(20, 40))) == entries[20:40]
        assert list(store.iter_range(0, 40)) == entries[20:40]

    def test_collect_rebases_the_offset_index(self, tmp_path):
        store, _ = self._spilled_store(tmp_path)
        index_before = store.index_bytes()
        disk_before = store.disk_bytes()
        store.collect(20)
        assert store.index_bytes() < index_before
        assert store.disk_bytes() < disk_before
        assert store.stats()["collected_entries"] == 20
        assert len(store) == 40  # positions stay global

    def test_append_and_truncate_after_collect(self, tmp_path):
        store, entries = self._spilled_store(tmp_path)
        store.collect(20)
        extra = make_entries(50)[40:]
        store.append_segment(extra)
        assert len(store) == 50
        assert store.get(45) == extra[5]
        # truncation above the base still works row-accurately
        removed = store.truncate(42)
        assert removed == 8
        assert store.get(41) == extra[1]
        with pytest.raises(IndexError):
            store.get(42)
        # truncation cannot descend below the collected base
        assert store.truncate(5) == 42 - 20
        assert len(store) == 20

    def test_collect_is_noop_below_segment_boundary(self, tmp_path):
        store, _ = self._spilled_store(tmp_path)
        assert store.collect(9) == 0  # inside the first segment
        assert store.base == 0
        assert store.segment_count() == 4


class TestScrollCollection:
    def _tiered_scroll(self, n=60, hot_window=10):
        return Scroll(make_entries(n), hot_window=hot_window)

    def test_collect_trims_indexes_and_keeps_later_queries(self):
        scroll = self._tiered_scroll()
        watermark = scroll.spill_watermark
        assert watermark > 0
        all_entries = list(scroll)
        removed = scroll.collect(watermark // 2)
        assert removed > 0
        base = scroll.collected_base
        assert 0 < base <= watermark // 2
        assert len(scroll) == 60  # positions stay global
        # per-pid / per-kind queries only return reachable entries
        for pid in ("p0", "p1", "p2"):
            expected = [e for i, e in enumerate(all_entries) if i >= base and e.pid == pid]
            assert scroll.entries_for(pid) == expected
        expected_random = [
            e for i, e in enumerate(all_entries)
            if i >= base and e.kind is ActionKind.RANDOM
        ]
        assert scroll.of_kind(ActionKind.RANDOM) == expected_random
        # iteration and ranges skip the collected prefix
        assert list(scroll) == all_entries[base:]
        assert scroll[base] == all_entries[base]
        with pytest.raises(IndexError):
            scroll[base - 1]
        # contiguous and stepped slices agree: both silently skip the prefix
        assert scroll[0:base + 4] == all_entries[base:base + 4]
        assert scroll[0:base + 4:2] == [
            e for i, e in enumerate(all_entries[:base + 4]) if i % 2 == 0 and i >= base
        ]

    def test_collect_never_touches_the_hot_tier(self):
        scroll = self._tiered_scroll()
        removed = scroll.collect(len(scroll))  # ask for everything
        assert scroll.collected_base <= scroll.spill_watermark
        assert scroll.hot_entries > 0
        assert removed <= scroll.spill_watermark

    def test_untiered_scroll_collect_is_noop(self):
        scroll = Scroll(make_entries(20))
        assert scroll.collect(10) == 0
        assert scroll.collected_base == 0

    def test_append_after_collect_keeps_global_positions(self):
        scroll = self._tiered_scroll()
        scroll.collect(scroll.spill_watermark)
        entry = ScrollEntry(pid="p9", kind=ActionKind.TIMER, time=99.0, detail={"name": "t"})
        scroll.append(entry)
        assert scroll.last_entry("p9") == entry
        assert scroll.entries_for("p9") == [entry]

    def test_between_and_times_survive_collect(self):
        scroll = self._tiered_scroll()
        all_entries = list(scroll)
        scroll.collect(scroll.spill_watermark)
        base = scroll.collected_base
        # time-range queries bisect correctly through the re-based times column
        expected = [e for i, e in enumerate(all_entries) if i >= base and 5.0 <= e.time < 10.0]
        assert scroll.between(5.0, 10.0) == expected
        # appends after collection keep the time column aligned
        entry = ScrollEntry(pid="p0", kind=ActionKind.TIMER, time=200.0, detail={"name": "t"})
        scroll.append(entry)
        assert scroll.between(199.0, 201.0) == [entry]


class TestRollbackCommitCollectsSegments:
    def test_committed_line_unlinks_unreachable_segments(self):
        policy = RecordingPolicy(InterceptionMode.SYSCALL, hot_window=4)
        recorder = ScrollRecorder(policy=policy)
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.add_hook(recorder)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run()
        scroll = recorder.scroll
        assert scroll.spill_watermark > 0
        line = time_machine.latest_recovery_line()
        manager = time_machine.rollback_manager
        collected = manager.commit(line)
        assert manager.committed_lines == [line]
        assert collected >= 0
        assert scroll.collected_base <= (line.scroll_position() or 0)
        # the line itself and everything after it stay reachable
        for entry in scroll.entries_for("p0"):
            assert entry.pid == "p0"
        # a later rollback with truncation still works above the base
        result = time_machine.rollback_to(line, truncate_scroll=True)
        assert len(scroll) == line.scroll_position()
        assert result.restored_pids

    def test_commit_without_scroll_is_safe(self):
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        cluster.run()
        line = time_machine.latest_recovery_line()
        assert time_machine.rollback_manager.commit(line) == 0


class TestCommittedLineEnforcement:
    def test_rollback_past_committed_line_is_refused(self):
        from repro.errors import RecoveryLineError

        policy = RecordingPolicy(InterceptionMode.SYSCALL, hot_window=4)
        recorder = ScrollRecorder(policy=policy)
        cluster = make_cluster({"p0": PingPong, "p1": PingPong}, seed=1)
        cluster.add_hook(recorder)
        time_machine = TimeMachine()
        time_machine.attach(cluster)
        # capture an early line mid-run, then a later one at the end
        cluster.run(max_events=4)
        early_line = time_machine.latest_recovery_line()
        cluster.resume()
        cluster.run()
        late_line = time_machine.latest_recovery_line()
        manager = time_machine.rollback_manager
        manager.commit(late_line)
        early = early_line.scroll_position()
        late = late_line.scroll_position()
        if early is not None and late is not None and early < late:
            with pytest.raises(RecoveryLineError, match="committed line"):
                manager.rollback(early_line)
        # rolling back to the committed line itself stays legal
        result = manager.rollback(late_line)
        assert result.restored_pids

    def test_storage_stats_agree_after_collect(self):
        scroll = Scroll(make_entries(60), hot_window=10)
        scroll.collect(scroll.spill_watermark)
        stats = scroll.storage_stats()
        assert stats["collected_entries"] == scroll.collected_base
        assert stats["spilled_entries"] == scroll.spill_watermark - scroll.collected_base
        assert stats["spilled_entries"] == stats["store"]["spilled_entries"]
