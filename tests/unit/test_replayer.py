"""Unit tests for deterministic replay (the liblog-style local playback)."""

from __future__ import annotations

import pytest

from repro.dsim.message import Message
from repro.dsim.process import Process, handler
from repro.errors import ReplayDivergenceError
from repro.scroll.entry import ActionKind
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.replayer import Replayer

from tests.conftest import BoundedCounterBuggy, PingPong, RandomWorker, make_cluster


def record_run(factories, seed=3, **config):
    cluster = make_cluster(factories, seed=seed, **config)
    recorder = ScrollRecorder()
    cluster.add_hook(recorder)
    result = cluster.run(max_events=500)
    return cluster, result, recorder.scroll


class TestReplayer:
    def test_replay_reproduces_final_state(self):
        factories = {"p0": PingPong, "p1": PingPong}
        cluster, result, scroll = record_run(factories, seed=1)
        report = Replayer(scroll, factories).replay_all()
        assert report.ok
        for pid, replay in report.processes.items():
            assert replay.final_state == result.process_states[pid]

    def test_replay_reproduces_random_draws(self):
        factories = {"r0": RandomWorker, "r1": RandomWorker}
        cluster, result, scroll = record_run(factories, seed=5)
        report = Replayer(scroll, factories).replay_all()
        assert report.ok
        for pid, replay in report.processes.items():
            assert replay.final_state["draws"] == result.process_states[pid]["draws"]

    def test_replay_reproduces_every_send(self):
        factories = {"p0": PingPong, "p1": PingPong}
        _, _, scroll = record_run(factories, seed=1)
        report = Replayer(scroll, factories).replay_all()
        for replay in report.processes.values():
            assert replay.sends_replayed == replay.sends_recorded

    def test_replay_with_wrong_code_diverges(self):
        class SilentPing(PingPong):
            @handler("PING")
            def on_ping(self, msg: Message):
                self.state["count"] += 1  # never replies: fewer sends than recorded

        factories = {"p0": PingPong, "p1": PingPong}
        _, _, scroll = record_run(factories, seed=1)
        report = Replayer(scroll, {"p0": SilentPing, "p1": SilentPing}).replay_all()
        assert not report.ok
        assert report.diverged_processes()

    def test_strict_mode_raises_on_divergence(self):
        class ChattyPing(PingPong):
            @handler("PING")
            def on_ping(self, msg: Message):
                self.state["count"] += 1
                self.send(msg.src, "PING", 0)
                self.send(msg.src, "PING", 0)   # extra send

        factories = {"p0": PingPong, "p1": PingPong}
        _, _, scroll = record_run(factories, seed=1)
        with pytest.raises(ReplayDivergenceError):
            Replayer(scroll, {"p0": ChattyPing, "p1": ChattyPing}, strict=True).replay_all()

    def test_replay_process_requires_factory(self):
        factories = {"p0": PingPong, "p1": PingPong}
        _, _, scroll = record_run(factories, seed=1)
        with pytest.raises(KeyError):
            Replayer(scroll, {}).replay_process("p0")

    def test_replay_all_skips_processes_without_factories(self):
        factories = {"p0": PingPong, "p1": PingPong}
        _, _, scroll = record_run(factories, seed=1)
        report = Replayer(scroll, {"p0": PingPong}).replay_all()
        assert set(report.processes) == {"p0"}

    def test_replay_until_violation_stops_before_the_fault(self):
        factories = {"c0": BoundedCounterBuggy, "c1": BoundedCounterBuggy}
        _, result, scroll = record_run(factories, seed=2)
        assert scroll.violations(), "the buggy counter should violate its invariant"
        report, violating_pid = Replayer(scroll, factories).replay_until_violation()
        assert violating_pid in factories
        assert report.ok
        # The replayed prefix stops before the violating state is reached.
        for replay in report.processes.values():
            assert replay.final_state["count"] <= BoundedCounterBuggy.bound + 1

    def test_replay_until_violation_without_violation(self):
        factories = {"p0": PingPong, "p1": PingPong}
        _, _, scroll = record_run(factories, seed=1)
        report, violating_pid = Replayer(scroll, factories).replay_until_violation()
        assert violating_pid is None
        assert report.ok

    def test_total_events_counts_replayed_deliveries(self):
        factories = {"p0": PingPong, "p1": PingPong}
        _, _, scroll = record_run(factories, seed=1)
        report = Replayer(scroll, factories).replay_all()
        timers = len(scroll.of_kind(ActionKind.TIMER))
        receives = len(scroll.of_kind(ActionKind.RECEIVE))
        assert report.total_events() == timers + receives

    def test_timer_payloads_reconstructed_during_replay(self):
        factories = {"r0": RandomWorker, "r1": RandomWorker}
        cluster, result, scroll = record_run(factories, seed=4)
        report = Replayer(scroll, factories).replay_all()
        assert report.ok
        for pid, replay in report.processes.items():
            assert replay.final_state["timer_fired"] == result.process_states[pid]["timer_fired"]
