"""Shared fixtures: small applications and cluster builders used across the suite."""

from __future__ import annotations

import pytest

from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.message import Message
from repro.dsim.process import Process, handler, invariant, timer_handler


class PingPong(Process):
    """Two processes bounce a PING message ``rounds`` times each."""

    rounds: int = 5

    def on_start(self):
        self.state["count"] = 0
        if self.pid.endswith("0"):
            self.send(self._other(), "PING", 1)

    def _other(self) -> str:
        return self.peers[0]

    @handler("PING")
    def on_ping(self, msg: Message):
        self.state["count"] += 1
        if self.state["count"] < self.rounds:
            self.send(msg.src, "PING", msg.payload + 1)

    @invariant("count-bounded")
    def count_bounded(self):
        return self.state["count"] <= self.rounds


class BoundedCounterBuggy(Process):
    """Counts TICKs without respecting its declared bound (used to trigger faults)."""

    bound: int = 3

    def on_start(self):
        self.state["count"] = 0
        if self.pid.endswith("0"):
            self.send(self.peers[0], "TICK", None)

    @handler("TICK")
    def on_tick(self, msg: Message):
        self.state["count"] += 1
        self.send(msg.src, "TICK", None)

    @invariant("count-within-bound")
    def count_within_bound(self):
        return self.state["count"] <= self.bound


class BoundedCounterFixed(BoundedCounterBuggy):
    """The corrected counter: stops ticking at the bound."""

    @handler("TICK")
    def on_tick(self, msg: Message):
        if self.state["count"] < self.bound:
            self.state["count"] += 1
            self.send(msg.src, "TICK", None)


class RandomWorker(Process):
    """A process that uses every nondeterministic primitive (for Scroll tests)."""

    def on_start(self):
        self.state["draws"] = []
        self.state["timer_fired"] = 0
        self.set_timer("work", 2.0, {"batch": 1})
        if self.pid.endswith("0"):
            self.send(self.peers[0], "WORK", 1)

    @handler("WORK")
    def on_work(self, msg: Message):
        value = self.randint(0, 100)
        self.state["draws"].append(value)
        self.state.setdefault("clock_reads", []).append(self.now())
        if len(self.state["draws"]) < 3:
            self.send(msg.src, "WORK", value)

    @timer_handler("work")
    def on_timer(self, payload):
        self.state["timer_fired"] += 1


@pytest.fixture
def ping_cluster():
    """A started two-process PingPong cluster (not yet run)."""
    cluster = Cluster(ClusterConfig(seed=1))
    cluster.add_process("p0", PingPong)
    cluster.add_process("p1", PingPong)
    return cluster


@pytest.fixture
def buggy_counter_cluster():
    """A two-process cluster that will violate its invariant when run."""
    cluster = Cluster(ClusterConfig(seed=2))
    cluster.add_process("c0", BoundedCounterBuggy)
    cluster.add_process("c1", BoundedCounterBuggy)
    return cluster


@pytest.fixture
def random_worker_cluster():
    """A cluster exercising random draws, clock reads and timers."""
    cluster = Cluster(ClusterConfig(seed=3))
    cluster.add_process("r0", RandomWorker)
    cluster.add_process("r1", RandomWorker)
    return cluster


def make_cluster(factories, seed: int = 0, **config_kwargs) -> Cluster:
    """Helper used by many tests: build a cluster from a pid->factory mapping."""
    cluster = Cluster(ClusterConfig(seed=seed, **config_kwargs))
    for pid, factory in factories.items():
        cluster.add_process(pid, factory)
    return cluster


@pytest.fixture
def store_path(tmp_path):
    """A scratch durable-checkpoint-store root, so `durable` tests never
    touch a shared directory and tier-1 stays hermetic."""
    return str(tmp_path / "checkpoint-store")


@pytest.fixture(params=["sync", "pipelined"])
def durable_flush_mode(request, monkeypatch):
    """Run a durable-store test in both flush modes.

    In pipelined mode every :class:`DurableCheckpointStore` the test
    constructs gets ``flush_mode="pipelined"`` and every flush is
    followed by a hard :meth:`drain`, so tests that read the store right
    back observe landed writes — and ``pytest.raises`` around a flush
    still sees the worker's error, because the drain re-raises it.
    """
    mode = request.param
    if mode == "pipelined":
        from repro.timemachine import DurableCheckpointStore

        orig_init = DurableCheckpointStore.__init__

        def pipelined_init(self, *args, **kwargs):
            kwargs.setdefault("flush_mode", "pipelined")
            orig_init(self, *args, **kwargs)

        monkeypatch.setattr(DurableCheckpointStore, "__init__", pipelined_init)

        def drained(method):
            def wrapper(self, *args, **kwargs):
                try:
                    return method(self, *args, **kwargs)
                finally:
                    self.drain()

            return wrapper

        monkeypatch.setattr(
            DurableCheckpointStore,
            "flush_line",
            drained(DurableCheckpointStore.flush_line),
        )
        monkeypatch.setattr(
            DurableCheckpointStore,
            "flush_scroll",
            drained(DurableCheckpointStore.flush_scroll),
        )
    return mode
