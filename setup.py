"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so
that environments without the ``wheel`` package can still do a legacy
editable install (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
