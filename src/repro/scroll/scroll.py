"""The Scroll itself: an append-only log of recorded actions with queries.

A single Scroll can hold the actions of every process in the system (the
"common Scroll" of Figure 1) or of a single process; :meth:`Scroll.merge`
combines per-process Scrolls into one, re-establishing a causally
consistent global order using the recorded vector timestamps and falling
back to recorded times and sequence numbers for concurrent entries.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.dsim.clock import VectorTimestamp
from repro.scroll.entry import ActionKind, ScrollEntry


class Scroll:
    """Append-only, queryable log of :class:`ScrollEntry` records."""

    def __init__(self, entries: Optional[Iterable[ScrollEntry]] = None) -> None:
        self._entries: List[ScrollEntry] = list(entries or [])

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def append(self, entry: ScrollEntry) -> ScrollEntry:
        """Append one entry and return it."""
        self._entries.append(entry)
        return entry

    def record(
        self,
        pid: str,
        kind: ActionKind,
        time: float,
        detail: Optional[Dict] = None,
        vt: Optional[VectorTimestamp] = None,
    ) -> ScrollEntry:
        """Convenience constructor + append."""
        entry = ScrollEntry(pid=pid, kind=kind, time=time, detail=dict(detail or {}), vt=vt)
        return self.append(entry)

    def annotate(self, pid: str, time: float, text: str) -> ScrollEntry:
        """Record a free-form annotation (application log line)."""
        return self.record(pid, ActionKind.ANNOTATION, time, {"text": text})

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScrollEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ScrollEntry:
        return self._entries[index]

    @property
    def entries(self) -> List[ScrollEntry]:
        """All entries in record order (a copy)."""
        return list(self._entries)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def entries_for(self, pid: str) -> List[ScrollEntry]:
        """All entries belonging to one process, in record order."""
        return [entry for entry in self._entries if entry.pid == pid]

    def of_kind(self, *kinds: ActionKind) -> List[ScrollEntry]:
        """All entries whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [entry for entry in self._entries if entry.kind in wanted]

    def nondeterministic(self) -> List[ScrollEntry]:
        """Only the entries required for deterministic replay."""
        return [entry for entry in self._entries if entry.is_nondeterministic]

    def between(self, start: float, end: float) -> List[ScrollEntry]:
        """Entries whose recorded time falls in ``[start, end)``."""
        return [entry for entry in self._entries if start <= entry.time < end]

    def filter(self, predicate: Callable[[ScrollEntry], bool]) -> List[ScrollEntry]:
        """Entries matching an arbitrary predicate."""
        return [entry for entry in self._entries if predicate(entry)]

    def pids(self) -> List[str]:
        """Sorted list of process ids appearing in the Scroll."""
        return sorted({entry.pid for entry in self._entries})

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of entries per action kind (kind value -> count)."""
        counts: Dict[str, int] = defaultdict(int)
        for entry in self._entries:
            counts[entry.kind.value] += 1
        return dict(counts)

    def counts_by_process(self) -> Dict[str, int]:
        """Number of entries per process."""
        counts: Dict[str, int] = defaultdict(int)
        for entry in self._entries:
            counts[entry.pid] += 1
        return dict(counts)

    def last_entry(self, pid: Optional[str] = None) -> Optional[ScrollEntry]:
        """The most recently recorded entry (optionally restricted to one process)."""
        candidates = self._entries if pid is None else self.entries_for(pid)
        return candidates[-1] if candidates else None

    def violations(self) -> List[ScrollEntry]:
        """All recorded invariant violations."""
        return self.of_kind(ActionKind.VIOLATION)

    # ------------------------------------------------------------------
    # per-process replay material
    # ------------------------------------------------------------------
    def received_messages(self, pid: str) -> List[Dict]:
        """The serialized messages delivered to ``pid``, in delivery order."""
        return [
            entry.detail["message"]
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.RECEIVE and "message" in entry.detail
        ]

    def sent_messages(self, pid: str) -> List[Dict]:
        """The serialized messages sent by ``pid``, in send order."""
        return [
            entry.detail["message"]
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.SEND and "message" in entry.detail
        ]

    def random_outcomes(self, pid: str) -> List[Dict]:
        """Recorded random draws of ``pid``: ``{"method", "value"}`` in draw order."""
        return [
            {"method": entry.detail.get("method"), "value": entry.detail.get("value")}
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.RANDOM
        ]

    def clock_reads(self, pid: str) -> List[float]:
        """Recorded clock reads of ``pid`` in read order."""
        return [
            entry.detail.get("value", entry.time)
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.CLOCK_READ
        ]

    def timer_firings(self, pid: str) -> List[Dict]:
        """Recorded timer firings of ``pid``: ``{"name", "time"}`` in order."""
        return [
            {"name": entry.detail.get("name"), "time": entry.time}
            for entry in self._entries
            if entry.pid == pid and entry.kind is ActionKind.TIMER
        ]

    # ------------------------------------------------------------------
    # slicing and merging
    # ------------------------------------------------------------------
    def slice_for(self, pids: Sequence[str]) -> "Scroll":
        """A new Scroll containing only the entries of the given processes."""
        wanted = set(pids)
        return Scroll(entry for entry in self._entries if entry.pid in wanted)

    def prefix_until(self, predicate: Callable[[ScrollEntry], bool]) -> "Scroll":
        """The prefix of the Scroll up to (excluding) the first entry matching ``predicate``."""
        prefix: List[ScrollEntry] = []
        for entry in self._entries:
            if predicate(entry):
                break
            prefix.append(entry)
        return Scroll(prefix)

    @staticmethod
    def merge(scrolls: Iterable["Scroll"]) -> "Scroll":
        """Merge several Scrolls into one causally consistent Scroll.

        Entries are ordered primarily by causal order (vector timestamps
        when both entries carry them), then by recorded time, then by
        the original sequence number.  Because vector-timestamp order is
        partial, the sort key uses the *sum* of the vector components as
        a linear extension — this preserves happens-before (a causally
        later event always has a strictly larger component sum) while
        giving concurrent events a deterministic order.
        """
        combined: List[ScrollEntry] = []
        for scroll in scrolls:
            combined.extend(scroll.entries)

        def key(entry: ScrollEntry):
            causal_weight = sum(entry.vt.as_dict().values()) if entry.vt is not None else 0
            return (entry.time, causal_weight, entry.seq)

        return Scroll(sorted(combined, key=key))

    def to_records(self) -> List[Dict]:
        """Serialize the whole Scroll to a list of plain dictionaries."""
        return [entry.to_record() for entry in self._entries]

    @staticmethod
    def from_records(records: Iterable[Dict]) -> "Scroll":
        """Rebuild a Scroll from :meth:`to_records` output."""
        return Scroll(ScrollEntry.from_record(record) for record in records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scroll(entries={len(self._entries)}, pids={self.pids()})"
