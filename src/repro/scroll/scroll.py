"""The Scroll itself: an append-only log of recorded actions with queries.

A single Scroll can hold the actions of every process in the system (the
"common Scroll" of Figure 1) or of a single process; :meth:`Scroll.merge`
combines per-process Scrolls into one, re-establishing a causally
consistent global order using the recorded vector timestamps and falling
back to recorded times and sequence numbers for concurrent entries.

Because the Scroll sits on the recording hot path (every nondeterministic
action of every process lands here) and on the replay hot path (the
Replayer queries per-process views once per process), the log maintains
positional indexes as it grows:

* a per-process index, a per-kind index and a per-``(pid, kind)`` index,
  each a sorted list of positions into the backing entry list — so
  ``entries_for``/``of_kind``/``received_messages`` and friends are
  O(k) in the result size instead of O(n) scans;
* a parallel list of record times, so :meth:`between` can bisect when the
  log is time-monotone (the common case for live recordings);
* :meth:`merge` streams already-ordered per-process logs through a heap
  (O(n log p)) instead of concatenating and re-sorting (O(n log n)).

Appends stay O(1) amortized; all query results are materialized lists
except :attr:`entries`, which is a zero-copy read-only view.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections.abc import Sequence as _SequenceABC
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.dsim.clock import VectorTimestamp
from repro.scroll.entry import ActionKind, ScrollEntry


class ScrollView(_SequenceABC):
    """A zero-copy, read-only view over a Scroll's backing entry list.

    Supports the full read-only sequence protocol (len, indexing,
    slicing, iteration, containment) and equality against other sequences
    of entries; it never copies the underlying list.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: List[ScrollEntry]) -> None:
        self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        return self._entries[index]

    def __iter__(self) -> Iterator[ScrollEntry]:
        return iter(self._entries)

    def __reversed__(self) -> Iterator[ScrollEntry]:
        return reversed(self._entries)

    def __contains__(self, item: object) -> bool:
        return item in self._entries

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ScrollView):
            return self._entries == other._entries
        if isinstance(other, (list, tuple)):
            return len(self._entries) == len(other) and all(
                mine == theirs for mine, theirs in zip(self._entries, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScrollView({len(self._entries)} entries)"


class Scroll:
    """Append-only, queryable log of :class:`ScrollEntry` records."""

    def __init__(self, entries: Optional[Iterable[ScrollEntry]] = None) -> None:
        self._entries: List[ScrollEntry] = []
        #: positions (into _entries) per process, per kind and per (pid, kind)
        self._by_pid: Dict[str, List[int]] = {}
        self._by_kind: Dict[ActionKind, List[int]] = {}
        self._by_pid_kind: Dict[Tuple[str, ActionKind], List[int]] = {}
        self._nondet: List[int] = []
        #: record times in append order; bisectable while monotone
        self._times: List[float] = []
        self._time_monotone = True
        for entry in entries or ():
            self.append(entry)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def append(self, entry: ScrollEntry) -> ScrollEntry:
        """Append one entry, updating the positional indexes, and return it."""
        position = len(self._entries)
        self._entries.append(entry)
        self._by_pid.setdefault(entry.pid, []).append(position)
        self._by_kind.setdefault(entry.kind, []).append(position)
        self._by_pid_kind.setdefault((entry.pid, entry.kind), []).append(position)
        if entry.is_nondeterministic:
            self._nondet.append(position)
        if self._time_monotone and self._times and entry.time < self._times[-1]:
            self._time_monotone = False
        self._times.append(entry.time)
        return entry

    def record(
        self,
        pid: str,
        kind: ActionKind,
        time: float,
        detail: Optional[Dict] = None,
        vt: Optional[VectorTimestamp] = None,
    ) -> ScrollEntry:
        """Convenience constructor + append."""
        entry = ScrollEntry(pid=pid, kind=kind, time=time, detail=dict(detail or {}), vt=vt)
        return self.append(entry)

    def annotate(self, pid: str, time: float, text: str) -> ScrollEntry:
        """Record a free-form annotation (application log line)."""
        return self.record(pid, ActionKind.ANNOTATION, time, {"text": text})

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScrollEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ScrollEntry:
        return self._entries[index]

    @property
    def entries(self) -> ScrollView:
        """All entries in record order (a zero-copy read-only view)."""
        return ScrollView(self._entries)

    # ------------------------------------------------------------------
    # queries (index-backed: O(k) in the result size)
    # ------------------------------------------------------------------
    def _at(self, positions: Iterable[int]) -> List[ScrollEntry]:
        entries = self._entries
        return [entries[position] for position in positions]

    def entries_for(self, pid: str) -> List[ScrollEntry]:
        """All entries belonging to one process, in record order."""
        return self._at(self._by_pid.get(pid, ()))

    def of_kind(self, *kinds: ActionKind) -> List[ScrollEntry]:
        """All entries whose kind is one of ``kinds``, in record order."""
        unique = list(dict.fromkeys(kinds))
        if len(unique) == 1:
            return self._at(self._by_kind.get(unique[0], ()))
        runs = [self._by_kind.get(kind, ()) for kind in unique]
        return self._at(heapq.merge(*runs))

    def nondeterministic(self) -> List[ScrollEntry]:
        """Only the entries required for deterministic replay."""
        return self._at(self._nondet)

    def between(self, start: float, end: float) -> List[ScrollEntry]:
        """Entries whose recorded time falls in ``[start, end)``.

        O(log n + k) via bisection while the log is time-monotone (live
        recordings always are); falls back to a linear scan when entries
        were appended out of time order.
        """
        if self._time_monotone:
            lo = bisect_left(self._times, start)
            hi = bisect_left(self._times, end)
            return self._entries[lo:hi]
        return [entry for entry in self._entries if start <= entry.time < end]

    def filter(self, predicate: Callable[[ScrollEntry], bool]) -> List[ScrollEntry]:
        """Entries matching an arbitrary predicate."""
        return [entry for entry in self._entries if predicate(entry)]

    def pids(self) -> List[str]:
        """Sorted list of process ids appearing in the Scroll."""
        return sorted(self._by_pid)

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of entries per action kind (kind value -> count)."""
        return {kind.value: len(positions) for kind, positions in self._by_kind.items()}

    def counts_by_process(self) -> Dict[str, int]:
        """Number of entries per process."""
        return {pid: len(positions) for pid, positions in self._by_pid.items()}

    def last_entry(self, pid: Optional[str] = None) -> Optional[ScrollEntry]:
        """The most recently recorded entry (optionally restricted to one process)."""
        if pid is None:
            return self._entries[-1] if self._entries else None
        positions = self._by_pid.get(pid)
        return self._entries[positions[-1]] if positions else None

    def violations(self) -> List[ScrollEntry]:
        """All recorded invariant violations."""
        return self.of_kind(ActionKind.VIOLATION)

    # ------------------------------------------------------------------
    # per-process replay material (all O(k) via the (pid, kind) index)
    # ------------------------------------------------------------------
    def _for_pid_kind(self, pid: str, kind: ActionKind) -> List[ScrollEntry]:
        return self._at(self._by_pid_kind.get((pid, kind), ()))

    def received_messages(self, pid: str) -> List[Dict]:
        """The serialized messages delivered to ``pid``, in delivery order."""
        return [
            entry.detail["message"]
            for entry in self._for_pid_kind(pid, ActionKind.RECEIVE)
            if "message" in entry.detail
        ]

    def sent_messages(self, pid: str) -> List[Dict]:
        """The serialized messages sent by ``pid``, in send order."""
        return [
            entry.detail["message"]
            for entry in self._for_pid_kind(pid, ActionKind.SEND)
            if "message" in entry.detail
        ]

    def random_outcomes(self, pid: str) -> List[Dict]:
        """Recorded random draws of ``pid``: ``{"method", "value"}`` in draw order."""
        return [
            {"method": entry.detail.get("method"), "value": entry.detail.get("value")}
            for entry in self._for_pid_kind(pid, ActionKind.RANDOM)
        ]

    def clock_reads(self, pid: str) -> List[float]:
        """Recorded clock reads of ``pid`` in read order."""
        return [
            entry.detail.get("value", entry.time)
            for entry in self._for_pid_kind(pid, ActionKind.CLOCK_READ)
        ]

    def timer_firings(self, pid: str) -> List[Dict]:
        """Recorded timer firings of ``pid``: ``{"name", "time"}`` in order."""
        return [
            {"name": entry.detail.get("name"), "time": entry.time}
            for entry in self._for_pid_kind(pid, ActionKind.TIMER)
        ]

    # ------------------------------------------------------------------
    # slicing and merging
    # ------------------------------------------------------------------
    def slice_for(self, pids: Sequence[str]) -> "Scroll":
        """A new Scroll containing only the entries of the given processes."""
        runs = [self._by_pid.get(pid, ()) for pid in dict.fromkeys(pids)]
        return Scroll(self._at(heapq.merge(*runs)))

    def prefix_until(self, predicate: Callable[[ScrollEntry], bool]) -> "Scroll":
        """The prefix of the Scroll up to (excluding) the first entry matching ``predicate``."""
        prefix: List[ScrollEntry] = []
        for entry in self._entries:
            if predicate(entry):
                break
            prefix.append(entry)
        return Scroll(prefix)

    @staticmethod
    def merge(scrolls: Iterable["Scroll"]) -> "Scroll":
        """Merge several Scrolls into one globally ordered Scroll.

        Entries are ordered by the composite key ``(time, causal_weight,
        seq)``: recorded time first, then the sum of the entry's vector
        timestamp components, then the original sequence number.  The
        causal weight is a linear extension of the (partial)
        vector-timestamp order — a causally later event always has a
        strictly larger component sum — so among entries with equal
        recorded times the key preserves happens-before while giving
        concurrent entries a deterministic order.

        Per-process Scrolls are recorded in nondecreasing key order, so
        the merge streams them through a heap (O(n log p) for p scrolls)
        instead of concatenating and re-sorting; inputs that are not
        key-sorted fall back to a stable sort with identical output.
        """

        def key(entry: ScrollEntry):
            causal_weight = sum(entry.vt.as_dict().values()) if entry.vt is not None else 0
            return (entry.time, causal_weight, entry.seq)

        # Decorate each run with (key, run index, position) so heap order
        # matches a stable sort of the concatenation exactly.
        decorated: List[List[tuple]] = []
        presorted = True
        for run_index, scroll in enumerate(scrolls):
            run = []
            previous = None
            for position, entry in enumerate(scroll):
                entry_key = key(entry)
                if previous is not None and entry_key < previous:
                    presorted = False
                previous = entry_key
                run.append((entry_key, run_index, position, entry))
            decorated.append(run)

        if presorted:
            return Scroll(item[3] for item in heapq.merge(*decorated))
        combined = [item for run in decorated for item in run]
        combined.sort()
        return Scroll(item[3] for item in combined)

    def to_records(self) -> List[Dict]:
        """Serialize the whole Scroll to a list of plain dictionaries."""
        return [entry.to_record() for entry in self._entries]

    @staticmethod
    def from_records(records: Iterable[Dict]) -> "Scroll":
        """Rebuild a Scroll from :meth:`to_records` output."""
        return Scroll(ScrollEntry.from_record(record) for record in records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scroll(entries={len(self._entries)}, pids={self.pids()})"
