"""The Scroll itself: an append-only log of recorded actions with queries.

A single Scroll can hold the actions of every process in the system (the
"common Scroll" of Figure 1) or of a single process; :meth:`Scroll.merge`
combines per-process Scrolls into one, re-establishing a causally
consistent global order using the recorded vector timestamps and falling
back to recorded times and sequence numbers for concurrent entries.

Because the Scroll sits on the recording hot path (every nondeterministic
action of every process lands here) and on the replay hot path (the
Replayer queries per-process views once per process), the log maintains
positional indexes as it grows:

* a per-process index, a per-kind index and a per-``(pid, kind)`` index,
  each a sorted list of positions into the log — so
  ``entries_for``/``of_kind``/``received_messages`` and friends are
  O(k) in the result size instead of O(n) scans;
* a parallel list of record times, so :meth:`between` can bisect when the
  log is time-monotone (the common case for live recordings);
* :meth:`merge` streams already-ordered per-process logs through a heap
  (O(n log p)) instead of concatenating and re-sorting (O(n log n)).

**Tiered storage.**  A Scroll constructed with a ``hot_window`` spills
cold entries to disk so long production runs don't hold the whole log in
memory.  Entries live in two tiers:

* the *hot tier* — the most recent entries, plain Python objects in a
  list;
* the *cold tier* — everything older, serialized into immutable on-disk
  segments managed by a :class:`~repro.scroll.storage.SegmentStore`
  whose in-memory index maps each spilled position to its segment and
  byte offset.

Whenever the hot tier exceeds ``hot_window`` entries, the oldest
``segment_size`` of them (half the window by default) are written out as
one segment and dropped from memory; the *spill watermark* — the count
of spilled entries — separates the tiers.  All positional indexes store
global positions, so every query contract is preserved: index hits below
the watermark are served by seek-reads (with an LRU decode cache), hits
above come straight from the hot list, and both appends and queries keep
their amortized costs.  :meth:`truncate` cuts both tiers (and the
indexes) at a position, which is how a Time-Machine rollback discards
log suffixes that are in the rolled-back future.
"""

from __future__ import annotations

import heapq
import sys
from bisect import bisect_left
from collections.abc import Sequence as _SequenceABC
from itertools import islice
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.dsim.clock import VectorTimestamp
from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.storage import PathLike, SegmentStore


class ScrollView(_SequenceABC):
    """A zero-copy, read-only sequence view over a Scroll's entries.

    Supports the full read-only sequence protocol (len, indexing,
    slicing, iteration, containment) and equality against other
    sequences of entries.  It holds no entries of its own: hot entries
    are read through the Scroll, spilled entries are fetched on access.
    """

    __slots__ = ("_source",)

    def __init__(self, source) -> None:
        self._source = source

    def __len__(self) -> int:
        return len(self._source)

    def __getitem__(self, index):
        return self._source[index]

    def __iter__(self) -> Iterator[ScrollEntry]:
        return iter(self._source)

    def __reversed__(self) -> Iterator[ScrollEntry]:
        for index in range(len(self._source) - 1, -1, -1):
            yield self._source[index]

    def __contains__(self, item: object) -> bool:
        return any(entry == item for entry in self._source)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (ScrollView, list, tuple)):
            return len(self) == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScrollView({len(self._source)} entries)"


def _entry_resident_bytes(entry: ScrollEntry) -> int:
    """Rough resident size of one in-memory entry (benchmark accounting)."""
    size = sys.getsizeof(entry) + sys.getsizeof(entry.pid) + sys.getsizeof(entry.time)
    size += sys.getsizeof(entry.detail)
    for key, value in entry.detail.items():
        size += sys.getsizeof(key) + sys.getsizeof(value)
        if isinstance(value, dict):
            for inner_key, inner_value in value.items():
                size += sys.getsizeof(inner_key) + sys.getsizeof(inner_value)
    if entry.vt is not None:
        size += sys.getsizeof(entry.vt) + 16 * len(entry.vt.entries)
    return size


class Scroll:
    """Append-only, queryable log of :class:`ScrollEntry` records.

    Parameters
    ----------
    entries:
        Initial entries to append.
    hot_window:
        When given, enables tiered storage: the hot tier is kept at or
        below this many entries by spilling the oldest to disk.
    storage_dir:
        Directory for the cold tier's segment files; a private temporary
        directory (removed with the Scroll) is used when omitted.
    segment_size:
        Entries per spilled segment; defaults to half the hot window.
    store:
        An explicit :class:`SegmentStore` to spill into (overrides
        ``storage_dir``).
    base:
        Global position of the Scroll's first entry.  Non-zero when the
        Scroll is rebuilt from a persisted window (resume continuation):
        the entries passed in carry on from position ``base``, so every
        recorded checkpoint position and positional query stays valid
        against the rebuilt log.  Positions below ``base`` behave like a
        garbage-collected prefix.
    """

    def __init__(
        self,
        entries: Optional[Iterable[ScrollEntry]] = None,
        *,
        hot_window: Optional[int] = None,
        storage_dir: Optional[PathLike] = None,
        segment_size: Optional[int] = None,
        store: Optional[SegmentStore] = None,
        base: int = 0,
    ) -> None:
        if hot_window is not None and hot_window < 1:
            raise ValueError("hot_window must be at least 1")
        if base < 0:
            raise ValueError("base must be non-negative")
        self._hot: List[ScrollEntry] = []
        self._hot_window = hot_window
        self._segment_size = segment_size
        self._storage_dir = storage_dir
        self._store = store
        #: number of entries below the hot tier (spilled or rebased-away);
        #: global positions below the watermark are on disk, the rest are
        #: in ``_hot``.
        self._watermark = int(base)
        #: the rebased start position (collected_base floor without a store)
        self._base = int(base)
        #: positions (global) per process, per kind and per (pid, kind)
        self._by_pid: Dict[str, List[int]] = {}
        self._by_kind: Dict[ActionKind, List[int]] = {}
        self._by_pid_kind: Dict[Tuple[str, ActionKind], List[int]] = {}
        self._nondet: List[int] = []
        #: record times in append order; bisectable while monotone.  The
        #: list is trimmed by :meth:`collect` along with the cold tier, so
        #: ``self._times[p - self._times_base]`` is position ``p``'s time.
        self._times: List[float] = []
        self._times_base = int(base)
        self._time_monotone = True
        for entry in entries or ():
            self.append(entry)

    # ------------------------------------------------------------------
    # tiering
    # ------------------------------------------------------------------
    @property
    def is_tiered(self) -> bool:
        """True when this Scroll spills cold entries to disk."""
        return self._hot_window is not None or self._store is not None

    @property
    def spill_watermark(self) -> int:
        """Number of entries currently in the cold tier."""
        return self._watermark

    @property
    def hot_entries(self) -> int:
        """Number of entries currently resident in the hot tier."""
        return len(self._hot)

    def _ensure_store(self) -> SegmentStore:
        if self._store is None:
            # Sized to hold one process's replay material (the replayer
            # issues several queries over the same positions back to
            # back) while staying small next to the hot window.  The
            # store starts at the current watermark so a base-rebased
            # Scroll (resume) spills at the right global positions.
            cache = max(1024, (self._hot_window or 0) // 2)
            self._store = SegmentStore(
                self._storage_dir, cache_size=cache, base=self._watermark
            )
        return self._store

    def _spill(self) -> None:
        """Move the oldest hot entries into one new on-disk segment."""
        segment_size = self._segment_size or max(1, (self._hot_window or 2) // 2)
        count = min(segment_size, len(self._hot) - 1)  # keep the newest hot
        if count <= 0:
            return
        store = self._ensure_store()
        store.append_segment(self._hot[:count])
        del self._hot[:count]
        self._watermark += count

    def storage_stats(self) -> Dict[str, object]:
        """Tier occupancy and cold-store statistics (for FixD stats/reports)."""
        stats: Dict[str, object] = {
            "entries": len(self),
            "hot_entries": len(self._hot),
            # reachable spill only, agreeing with the store's own stats;
            # the GC'd prefix is reported separately
            "spilled_entries": self._watermark - self.collected_base,
            "collected_entries": self.collected_base,
            "tiered": self.is_tiered,
        }
        if self._store is not None:
            stats["store"] = self._store.stats()
            stats["disk_bytes"] = self._store.disk_bytes()
        return stats

    def resident_bytes(self) -> int:
        """Approximate memory held by entry storage (hot tier + cold index).

        Positional indexes are excluded: both tiered and in-memory
        Scrolls maintain identical index structures, so this number
        isolates what tiering actually changes — entry objects resident
        in RAM versus a 24-byte-per-entry offset index.
        """
        total = sys.getsizeof(self._hot) + sum(
            _entry_resident_bytes(entry) for entry in self._hot
        )
        if self._store is not None:
            total += self._store.index_bytes()
            total += sum(
                _entry_resident_bytes(entry) for entry in self._store.cached_entries()
            )
        return total

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def append(self, entry: ScrollEntry) -> ScrollEntry:
        """Append one entry, updating the positional indexes, and return it."""
        position = self._watermark + len(self._hot)
        self._hot.append(entry)
        self._by_pid.setdefault(entry.pid, []).append(position)
        self._by_kind.setdefault(entry.kind, []).append(position)
        self._by_pid_kind.setdefault((entry.pid, entry.kind), []).append(position)
        if entry.is_nondeterministic:
            self._nondet.append(position)
        if self._time_monotone and self._times and entry.time < self._times[-1]:
            self._time_monotone = False
        self._times.append(entry.time)
        if self._hot_window is not None and len(self._hot) > self._hot_window:
            self._spill()
        return entry

    def record(
        self,
        pid: str,
        kind: ActionKind,
        time: float,
        detail: Optional[Dict] = None,
        vt: Optional[VectorTimestamp] = None,
    ) -> ScrollEntry:
        """Convenience constructor + append."""
        entry = ScrollEntry(pid=pid, kind=kind, time=time, detail=dict(detail or {}), vt=vt)
        return self.append(entry)

    def annotate(self, pid: str, time: float, text: str) -> ScrollEntry:
        """Record a free-form annotation (application log line)."""
        return self.record(pid, ActionKind.ANNOTATION, time, {"text": text})

    # ------------------------------------------------------------------
    # garbage collection (committed recovery lines)
    # ------------------------------------------------------------------
    @property
    def collected_base(self) -> int:
        """Global position of the first still-reachable entry.

        ``0`` for a fresh log with no GC; the rebased start position for
        a Scroll rebuilt from a persisted window.
        """
        return self._store.base if self._store is not None else self._base

    def collect(self, min_position: int) -> int:
        """Garbage-collect the log prefix below ``min_position``.

        Called when a recovery line is *committed*: the system can never
        roll back past the line, so entries before its recorded Scroll
        position are unreachable for recovery and their cold segments
        can be unlinked from disk.  Only whole segments at or below the
        spill watermark are dropped (the hot tier is never collected),
        and the positional indexes are trimmed so queries stop mapping
        the collected range.  Positions stay global: ``len(self)`` is
        unchanged and later entries keep their positions; indexing into
        the collected prefix raises ``IndexError``.  Returns the number
        of entries collected.
        """
        if self._store is None:
            return 0
        removed = self._store.collect(min(min_position, self._watermark))
        if not removed:
            return 0
        base = self._store.base
        for index_map in (self._by_pid, self._by_kind, self._by_pid_kind):
            dead = []
            for key, positions in index_map.items():
                cut = bisect_left(positions, base)
                if cut:
                    del positions[:cut]
                if not positions:
                    dead.append(key)
            for key in dead:
                del index_map[key]
        del self._nondet[:bisect_left(self._nondet, base)]
        # the times column is per-position too: reclaim the collected
        # prefix so resident cost tracks the reachable window
        del self._times[:base - self._times_base]
        self._times_base = base
        return removed

    # ------------------------------------------------------------------
    # truncation (rollback support)
    # ------------------------------------------------------------------
    def truncate(self, length: int) -> int:
        """Forget every entry at position >= ``length`` in both tiers.

        Called when the Time Machine rolls the system back to a recovery
        line whose checkpoints recorded the Scroll position (the spill
        watermark plus the hot length at capture time): entries after
        the line describe a future that no longer exists.  Cuts the hot
        list, drops or shrinks cold segments, and trims every positional
        index.  Returns the number of entries discarded.
        """
        length = max(self.collected_base, min(length, len(self)))
        removed = len(self) - length
        if removed == 0:
            return 0
        for index_map in (self._by_pid, self._by_kind, self._by_pid_kind):
            dead = []
            for key, positions in index_map.items():
                cut = bisect_left(positions, length)
                if cut < len(positions):
                    del positions[cut:]
                if not positions:
                    dead.append(key)
            for key in dead:
                del index_map[key]
        del self._nondet[bisect_left(self._nondet, length):]
        del self._times[length - self._times_base:]
        if length >= self._watermark:
            del self._hot[length - self._watermark:]
        else:
            self._store.truncate(length)
            self._watermark = length
            self._hot = []
        return removed

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._watermark + len(self._hot)

    def __iter__(self) -> Iterator[ScrollEntry]:
        # Any tiered Scroll gets the append-safe path, spilled yet or
        # not: the first spill during iteration would otherwise shift
        # the hot list under a live list iterator.
        if self.is_tiered:
            return self._iter_tiered()
        return iter(self._hot)

    def _iter_tiered(self, chunk: int = 1024) -> Iterator[ScrollEntry]:
        # Iterate by global position in materialized chunks rather than
        # holding live iterators over the tiers: an append between
        # yields may spill hot entries (moving the watermark), which
        # would make a snapshot-of-the-tiers iterator silently skip the
        # newly cold positions.  Fetching each chunk atomically through
        # the position-addressed path keeps iteration append-safe, like
        # iterating the plain backing list used to be.
        position = self.collected_base
        while position < len(self):
            position = max(position, self.collected_base)  # GC between yields
            batch = self._range(position, min(position + chunk, len(self)))
            if not batch:
                return
            yield from batch
            position += len(batch)

    def _entry_at(self, position: int) -> ScrollEntry:
        if position >= self._watermark:
            return self._hot[position - self._watermark]
        return self._store.get(position)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                return self._range(start, stop)
            # skip the collected prefix like the contiguous path does
            base = self.collected_base
            return [
                self._entry_at(position)
                for position in range(start, stop, step)
                if position >= base
            ]
        position = index
        if position < 0:
            position += len(self)
        if not 0 <= position < len(self):
            raise IndexError("Scroll index out of range")
        return self._entry_at(position)

    @property
    def entries(self) -> ScrollView:
        """All entries in record order (a zero-copy read-only view)."""
        return ScrollView(self)

    # ------------------------------------------------------------------
    # queries (index-backed: O(k) in the result size)
    # ------------------------------------------------------------------
    def _at(self, positions: Iterable[int]) -> List[ScrollEntry]:
        """Materialize entries for sorted global positions, tier-aware."""
        positions = list(positions)
        watermark = self._watermark
        if not watermark:
            hot = self._hot
            return [hot[position] for position in positions]
        split = bisect_left(positions, watermark)
        cold = self._store.get_many(positions[:split]) if split else []
        hot = self._hot
        cold.extend(hot[position - watermark] for position in islice(positions, split, None))
        return cold

    def _range(self, start: int, stop: int) -> List[ScrollEntry]:
        """Materialize the contiguous position range ``[start, stop)``.

        Positions below a garbage-collected base are silently skipped —
        they no longer exist on any tier.
        """
        stop = min(stop, len(self))
        start = max(self.collected_base, start)
        if start >= stop:
            return []
        watermark = self._watermark
        if start >= watermark:
            return self._hot[start - watermark:stop - watermark]
        cold = list(self._store.iter_range(start, min(stop, watermark)))
        if stop > watermark:
            cold.extend(self._hot[:stop - watermark])
        return cold

    def entries_between(self, start: int, stop: int) -> List[ScrollEntry]:
        """Materialize the global position range ``[start, stop)``, tier-aware.

        Positions below the garbage-collected base are skipped (they no
        longer exist on any tier).  Durable Scroll persistence uses this
        to frame the not-yet-flushed tail into a segment blob.
        """
        return self._range(start, stop)

    def entries_for(self, pid: str) -> List[ScrollEntry]:
        """All entries belonging to one process, in record order."""
        return self._at(self._by_pid.get(pid, ()))

    def iter_entries_for(
        self, pid: str, batch: int = 1024, start: int = 0
    ) -> Iterator[ScrollEntry]:
        """Stream one process's entries without materializing them all.

        The replay driver uses this so replaying one process of a
        heavily spilled log keeps at most ``batch`` cold entries alive
        at a time.  ``start`` restricts the stream to entries at global
        position >= ``start`` (replay-forward from a checkpoint).
        """
        positions = self._by_pid.get(pid, ())
        first = bisect_left(positions, start) if start else 0
        for index in range(first, len(positions), batch):
            yield from self._at(positions[index:index + batch])

    def of_kind(self, *kinds: ActionKind) -> List[ScrollEntry]:
        """All entries whose kind is one of ``kinds``, in record order."""
        unique = list(dict.fromkeys(kinds))
        if len(unique) == 1:
            return self._at(self._by_kind.get(unique[0], ()))
        runs = [self._by_kind.get(kind, ()) for kind in unique]
        return self._at(heapq.merge(*runs))

    def nondeterministic(self) -> List[ScrollEntry]:
        """Only the entries required for deterministic replay."""
        return self._at(self._nondet)

    def between(self, start: float, end: float) -> List[ScrollEntry]:
        """Entries whose recorded time falls in ``[start, end)``.

        O(log n + k) via bisection while the log is time-monotone (live
        recordings always are); falls back to a linear scan when entries
        were appended out of time order.
        """
        if self._time_monotone:
            lo = self._times_base + bisect_left(self._times, start)
            hi = self._times_base + bisect_left(self._times, end)
            return self._range(lo, hi)
        return [entry for entry in self if start <= entry.time < end]

    def filter(self, predicate: Callable[[ScrollEntry], bool]) -> List[ScrollEntry]:
        """Entries matching an arbitrary predicate."""
        return [entry for entry in self if predicate(entry)]

    def pids(self) -> List[str]:
        """Sorted list of process ids appearing in the Scroll."""
        return sorted(self._by_pid)

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of entries per action kind (kind value -> count)."""
        return {kind.value: len(positions) for kind, positions in self._by_kind.items()}

    def counts_by_process(self) -> Dict[str, int]:
        """Number of entries per process."""
        return {pid: len(positions) for pid, positions in self._by_pid.items()}

    def last_entry(self, pid: Optional[str] = None) -> Optional[ScrollEntry]:
        """The most recently recorded entry (optionally restricted to one process)."""
        if pid is None:
            return self._entry_at(len(self) - 1) if len(self) else None
        positions = self._by_pid.get(pid)
        return self._entry_at(positions[-1]) if positions else None

    def violations(self) -> List[ScrollEntry]:
        """All recorded invariant violations."""
        return self.of_kind(ActionKind.VIOLATION)

    # ------------------------------------------------------------------
    # per-process replay material (all O(k) via the (pid, kind) index)
    # ------------------------------------------------------------------
    def _for_pid_kind(self, pid: str, kind: ActionKind, start: int = 0) -> List[ScrollEntry]:
        positions = self._by_pid_kind.get((pid, kind), ())
        if start:
            positions = positions[bisect_left(positions, start):]
        return self._at(positions)

    def received_messages(self, pid: str, start: int = 0) -> List[Dict]:
        """The serialized messages delivered to ``pid``, in delivery order.

        ``start`` (here and on the sibling replay-material queries)
        restricts the result to entries at global position >= ``start``,
        which is how replay-forward resumes from a checkpoint's recorded
        Scroll position instead of the beginning of the log.
        """
        return [
            entry.detail["message"]
            for entry in self._for_pid_kind(pid, ActionKind.RECEIVE, start)
            if "message" in entry.detail
        ]

    def sent_messages(self, pid: str, start: int = 0) -> List[Dict]:
        """The serialized messages sent by ``pid``, in send order."""
        return [
            entry.detail["message"]
            for entry in self._for_pid_kind(pid, ActionKind.SEND, start)
            if "message" in entry.detail
        ]

    def random_outcomes(self, pid: str, start: int = 0) -> List[Dict]:
        """Recorded random draws of ``pid``: ``{"method", "value"}`` in draw order."""
        return [
            {"method": entry.detail.get("method"), "value": entry.detail.get("value")}
            for entry in self._for_pid_kind(pid, ActionKind.RANDOM, start)
        ]

    def clock_reads(self, pid: str, start: int = 0) -> List[float]:
        """Recorded clock reads of ``pid`` in read order."""
        return [
            entry.detail.get("value", entry.time)
            for entry in self._for_pid_kind(pid, ActionKind.CLOCK_READ, start)
        ]

    def timer_firings(self, pid: str, start: int = 0) -> List[Dict]:
        """Recorded timer firings of ``pid``: ``{"name", "time"}`` in order."""
        return [
            {"name": entry.detail.get("name"), "time": entry.time}
            for entry in self._for_pid_kind(pid, ActionKind.TIMER, start)
        ]

    # ------------------------------------------------------------------
    # slicing and merging
    # ------------------------------------------------------------------
    def slice_for(self, pids: Sequence[str]) -> "Scroll":
        """A new Scroll containing only the entries of the given processes."""
        runs = [self._by_pid.get(pid, ()) for pid in dict.fromkeys(pids)]
        return Scroll(self._at(heapq.merge(*runs)))

    def prefix_until(self, predicate: Callable[[ScrollEntry], bool]) -> "Scroll":
        """The prefix of the Scroll up to (excluding) the first entry matching ``predicate``."""
        prefix: List[ScrollEntry] = []
        for entry in self:
            if predicate(entry):
                break
            prefix.append(entry)
        return Scroll(prefix)

    @staticmethod
    def merge(scrolls: Iterable["Scroll"]) -> "Scroll":
        """Merge several Scrolls into one globally ordered Scroll.

        Entries are ordered by the composite key ``(time, causal_weight,
        seq)``: recorded time first, then the sum of the entry's vector
        timestamp components, then the original sequence number.  The
        causal weight is a linear extension of the (partial)
        vector-timestamp order — a causally later event always has a
        strictly larger component sum — so among entries with equal
        recorded times the key preserves happens-before while giving
        concurrent entries a deterministic order.

        Per-process Scrolls are recorded in nondecreasing key order, so
        the merge streams them through a heap (O(n log p) for p scrolls)
        instead of concatenating and re-sorting; inputs that are not
        key-sorted fall back to a stable sort with identical output.
        """

        def key(entry: ScrollEntry):
            causal_weight = sum(entry.vt.as_dict().values()) if entry.vt is not None else 0
            return (entry.time, causal_weight, entry.seq)

        # Decorate each run with (key, run index, position) so heap order
        # matches a stable sort of the concatenation exactly.
        decorated: List[List[tuple]] = []
        presorted = True
        for run_index, scroll in enumerate(scrolls):
            run = []
            previous = None
            for position, entry in enumerate(scroll):
                entry_key = key(entry)
                if previous is not None and entry_key < previous:
                    presorted = False
                previous = entry_key
                run.append((entry_key, run_index, position, entry))
            decorated.append(run)

        if presorted:
            return Scroll(item[3] for item in heapq.merge(*decorated))
        combined = [item for run in decorated for item in run]
        combined.sort()
        return Scroll(item[3] for item in combined)

    def to_records(self) -> List[Dict]:
        """Serialize the whole Scroll to a list of plain dictionaries."""
        return [entry.to_record() for entry in self]

    @staticmethod
    def from_records(records: Iterable[Dict]) -> "Scroll":
        """Rebuild a Scroll from :meth:`to_records` output."""
        return Scroll(ScrollEntry.from_record(record) for record in records)

    def close(self) -> None:
        """Release the cold tier (file handles and any owned directory)."""
        if self._store is not None:
            self._store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scroll(entries={len(self)}, hot={len(self._hot)}, "
            f"spilled={self._watermark}, pids={self.pids()})"
        )
