"""Interception modes and replay-side substitutes for nondeterminism.

The paper proposes two concrete implementations of the Scroll with
different interception granularity: liblog (library-level: record libc
interactions) and Flashback (syscall-level: record everything that
crosses the kernel boundary, language agnostic).  In this reproduction
the distinction maps onto *which* simulator notifications are recorded:

* :attr:`InterceptionMode.LIBRARY` — message sends/receives, drops,
  duplications, timer firings and the process's random draws (the
  application-visible library surface: everything libc would mediate);
* :attr:`InterceptionMode.SYSCALL` — everything in LIBRARY plus clock
  reads and checkpoint markers (the full "kernel" surface of the simulator);
* :attr:`InterceptionMode.BLACKBOX` — only interactions with *remote*
  components (receives and sends), treating the remote side as a black
  box defined by the interaction, as suggested in Section 2.2.

:class:`ReplayRandomStream` is the replay-time substitute for a process's
random stream: instead of drawing fresh values it returns the recorded
outcomes, raising :class:`~repro.errors.ReplayDivergenceError` if the
replayed code asks for more (or differently typed) randomness than was
recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReplayDivergenceError
from repro.scroll.entry import ActionKind


class InterceptionMode(Enum):
    """Which class of actions the recorder intercepts."""

    LIBRARY = "library"    # liblog-style
    SYSCALL = "syscall"    # Flashback-style
    BLACKBOX = "blackbox"  # record only remote interactions


@dataclass(frozen=True)
class RecordingPolicy:
    """Maps an interception mode to the set of action kinds recorded.

    ``record_payloads`` controls whether full message payloads are
    stored (needed for replay) or only metadata (cheaper, enough for
    tracing).

    ``hot_window`` and ``spill_dir`` configure *where* the recording
    lives: when ``hot_window`` is set, the recorder builds a tiered
    :class:`~repro.scroll.scroll.Scroll` that keeps at most that many
    entries in memory and spills cold segments to ``spill_dir`` (a
    private temporary directory when unset).  ``None`` keeps the whole
    log in memory — the right choice for short runs and unit tests.
    """

    mode: InterceptionMode = InterceptionMode.SYSCALL
    record_payloads: bool = True
    hot_window: Optional[int] = None
    spill_dir: Optional[str] = None

    def recorded_kinds(self) -> frozenset:
        """The action kinds this policy records."""
        return _KINDS_BY_MODE[self.mode]

    def should_record(self, kind: ActionKind) -> bool:
        """True when entries of ``kind`` are recorded under this policy.

        Called once per intercepted action, so it must not rebuild the
        kind set; the per-mode sets are precomputed at import time.
        """
        return kind in _KINDS_BY_MODE[self.mode]


_LIBRARY_KINDS = frozenset(
    {
        ActionKind.SEND,
        ActionKind.RECEIVE,
        ActionKind.DROP,
        ActionKind.DUPLICATE,
        ActionKind.RANDOM,
        ActionKind.TIMER,
        ActionKind.VIOLATION,
        ActionKind.CRASH,
        ActionKind.RECOVER,
        ActionKind.CORRUPTION,
    }
)

#: Recorded kind set per interception mode, computed once.
_KINDS_BY_MODE = {
    InterceptionMode.BLACKBOX: frozenset({ActionKind.SEND, ActionKind.RECEIVE}),
    InterceptionMode.LIBRARY: _LIBRARY_KINDS,
    InterceptionMode.SYSCALL: _LIBRARY_KINDS
    | frozenset({ActionKind.CLOCK_READ, ActionKind.CHECKPOINT}),
}


class ReplayRandomStream:
    """A drop-in replacement for :class:`~repro.dsim.rng.DeterministicRNG` during replay.

    The stream returns exactly the recorded outcomes, in order.  Any
    mismatch — running out of recorded values or the replayed code using
    a different draw method — is a divergence, the same condition liblog
    detects when replay leaves the recorded path.
    """

    def __init__(self, pid: str, outcomes: Sequence[Dict[str, Any]]) -> None:
        self.pid = pid
        self._outcomes: List[Dict[str, Any]] = list(outcomes)
        self._cursor = 0

    @property
    def draws(self) -> int:
        """Number of values handed out so far (mirrors DeterministicRNG.draws)."""
        return self._cursor

    @property
    def remaining(self) -> int:
        return len(self._outcomes) - self._cursor

    def _next(self, method: str) -> Any:
        if self._cursor >= len(self._outcomes):
            raise ReplayDivergenceError(self.pid, "<end of recorded randomness>", method)
        outcome = self._outcomes[self._cursor]
        if outcome.get("method") != method:
            raise ReplayDivergenceError(self.pid, outcome.get("method"), method)
        self._cursor += 1
        return outcome.get("value")

    # The subset of the DeterministicRNG surface that application code uses.
    def random(self) -> float:
        return self._next("random")

    def randint(self, low: int, high: int) -> int:
        return self._next("randint")

    def choice(self, items: Sequence[Any]) -> Any:
        return self._next("choice")

    def shuffle(self, items: List[Any]) -> List[Any]:
        return self._next("shuffle")

    def sample(self, items: Sequence[Any], k: int) -> List[Any]:
        return self._next("sample")

    def expovariate(self, rate: float) -> float:
        return self._next("expovariate")

    def state_marker(self) -> int:
        return self._cursor

    def restore(self, draws: int) -> None:
        """Rewind the replay cursor (used when re-exploring from a checkpoint)."""
        if draws < 0 or draws > len(self._outcomes):
            raise ReplayDivergenceError(self.pid, f"cursor in [0,{len(self._outcomes)}]", draws)
        self._cursor = draws


class ReplayClock:
    """Replay-time substitute for clock reads: returns the recorded values."""

    def __init__(self, pid: str, readings: Sequence[float], fallback: float = 0.0) -> None:
        self.pid = pid
        self._readings = list(readings)
        self._cursor = 0
        self._fallback = fallback

    def read(self) -> float:
        """Return the next recorded clock value (or the last known one).

        Only *application* clock reads (:meth:`Process.now`) consume the
        recorded stream; runtime bookkeeping reads :meth:`ambient`.
        """
        if self._cursor < len(self._readings):
            value = self._readings[self._cursor]
            self._cursor += 1
            self._fallback = value
            return value
        return self._fallback

    def ambient(self) -> float:
        """The current replay time, without consuming a recorded reading.

        Used as the context's ``now_fn`` during replay so internal
        timestamping (e.g. ``send_time`` on outgoing messages) does not
        steal recorded clock outcomes from the application.
        """
        return self._fallback

    def advance_fallback(self, value: float) -> None:
        """Update the value returned after recorded readings are exhausted."""
        self._fallback = max(self._fallback, value)
