"""Deterministic replay of recorded executions (liblog-style local playback).

The replayer re-executes each process *locally* from its initial state,
feeding it the recorded message deliveries and timer firings in the
recorded order and substituting recorded outcomes for every source of
nondeterminism (random draws, clock reads).  The remote side of every
interaction is therefore "played" from the Scroll — the black-box view of
Section 2.2 — so no other process needs to run.

Replay serves two purposes in FixD:

* **bug reporting** — the developer gets a precise, re-executable trace
  of what each process did before a violation;
* **validation** — a replay whose sends differ from the recorded sends
  (a *divergence*) means the recorded log is not sufficient to explain
  the execution, exactly the condition liblog flags.

Replaying every process of a global Scroll is O(n) in the log size: the
per-process views the replayer consumes (``iter_entries_for``,
``sent_messages``, ``random_outcomes``, ``clock_reads``) are backed by
the Scroll's ``(pid, kind)`` indexes, so each process's replay touches
only its own entries instead of rescanning the whole log once per
process.  The views are tier-transparent: against a spilled Scroll the
per-process history is streamed in batches from the on-disk segments
(see :mod:`repro.scroll.storage`), so replaying a log much larger than
memory holds only one batch of cold entries at a time.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dsim.message import Message
from repro.dsim.process import Process, ProcessContext
from repro.errors import ReplayDivergenceError
from repro.scroll.entry import ActionKind
from repro.scroll.interceptor import ReplayClock, ReplayRandomStream
from repro.scroll.scroll import Scroll

ProcessFactory = Callable[[], Process]


@dataclass
class ProcessReplay:
    """Outcome of replaying one process."""

    pid: str
    events_replayed: int
    sends_recorded: int
    sends_replayed: int
    diverged: bool
    divergence_detail: Optional[str]
    final_state: Dict[str, Any]
    replayed_sends: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diverged


@dataclass
class ForwardReplay:
    """Outcome of replaying one live process forward from a checkpoint."""

    pid: str
    from_position: int
    events_replayed: int
    draws_consumed: int
    diverged: bool
    divergence_detail: Optional[str]
    last_time: float

    @property
    def ok(self) -> bool:
        return not self.diverged


@dataclass
class ReplayReport:
    """Outcome of replaying every process recorded on a Scroll."""

    processes: Dict[str, ProcessReplay]

    @property
    def ok(self) -> bool:
        return all(replay.ok for replay in self.processes.values())

    def diverged_processes(self) -> List[str]:
        return sorted(pid for pid, replay in self.processes.items() if replay.diverged)

    def total_events(self) -> int:
        return sum(replay.events_replayed for replay in self.processes.values())


class _ReplaySendChecker:
    """Compares replayed sends against the recorded ones in order."""

    def __init__(self, pid: str, recorded: List[Dict[str, Any]], strict: bool) -> None:
        self.pid = pid
        self.recorded = recorded
        self.strict = strict
        self.observed: List[Dict[str, Any]] = []
        self.divergence: Optional[str] = None

    def observe(self, message: Message) -> None:
        index = len(self.observed)
        record = message.to_record()
        self.observed.append(record)
        if self.divergence is not None:
            return
        if index >= len(self.recorded):
            self._diverge(f"extra send #{index}: {message.describe()}", "<no recorded send>", record)
            return
        expected = self.recorded[index]
        for key in ("dst", "kind", "payload"):
            if expected.get(key) != record.get(key):
                self._diverge(
                    f"send #{index} field {key!r} differs: recorded {expected.get(key)!r}, "
                    f"replayed {record.get(key)!r}",
                    expected,
                    record,
                )
                return

    def finish(self) -> None:
        if self.divergence is None and len(self.observed) < len(self.recorded):
            self._diverge(
                f"replay produced {len(self.observed)} sends but {len(self.recorded)} were recorded",
                self.recorded[len(self.observed)],
                "<no replayed send>",
            )

    def _diverge(self, detail: str, expected: Any, actual: Any) -> None:
        self.divergence = detail
        if self.strict:
            raise ReplayDivergenceError(self.pid, expected, actual)


class Replayer:
    """Replays processes recorded on a Scroll from fresh instances."""

    def __init__(
        self,
        scroll: Scroll,
        factories: Dict[str, ProcessFactory],
        strict: bool = False,
    ) -> None:
        """
        Parameters
        ----------
        scroll:
            The recorded execution (a global Scroll or a per-process slice).
        factories:
            A zero-argument factory per process id; the replayer builds a
            fresh instance so replay starts from the initial state.
        strict:
            When true, the first divergence raises
            :class:`ReplayDivergenceError`; when false (default) the
            divergence is recorded in the report and replay continues.
        """
        self.scroll = scroll
        self.factories = dict(factories)
        self.strict = strict

    # ------------------------------------------------------------------
    # single-process replay
    # ------------------------------------------------------------------
    def replay_process(self, pid: str) -> ProcessReplay:
        """Replay one process against the Scroll and report the outcome."""
        if pid not in self.factories:
            raise KeyError(f"no factory registered for process {pid!r}")
        process = self.factories[pid]()

        # Index-backed per-process views: each is O(k) in the process's
        # own entry count, independent of the global log size.  The
        # history is streamed so spilled logs are not rematerialized.
        history = self.scroll.iter_entries_for(pid)
        recorded_sends = self.scroll.sent_messages(pid)
        checker = _ReplaySendChecker(pid, recorded_sends, self.strict)
        rng = ReplayRandomStream(pid, self.scroll.random_outcomes(pid))
        clock = ReplayClock(pid, self.scroll.clock_reads(pid))
        pending_timer_payloads: Dict[str, deque] = defaultdict(deque)

        def send_fn(message: Message) -> None:
            checker.observe(message)

        def timer_fn(name: str, delay: float, payload: Any) -> None:
            pending_timer_payloads[name].append(payload)

        def cancel_timer_fn(name: str) -> None:
            pending_timer_payloads[name].clear()

        all_pids = tuple(self.scroll.pids()) or (pid,)
        ctx = ProcessContext(
            pid=pid,
            peers=all_pids,
            send_fn=send_fn,
            timer_fn=timer_fn,
            cancel_timer_fn=cancel_timer_fn,
            # the ambient clock timestamps runtime artefacts; only
            # Process.now() consumes the recorded reads (read_clock_fn)
            now_fn=clock.ambient,
            rng=rng,  # type: ignore[arg-type] — same draw interface as DeterministicRNG
            read_clock_fn=clock.read,
        )
        process.bind(ctx)

        divergence: Optional[str] = None
        events_replayed = 0
        try:
            process.on_start()
            for entry in history:
                clock.advance_fallback(entry.time)
                if entry.kind is ActionKind.RECEIVE and "message" in entry.detail:
                    message = Message.from_record(entry.detail["message"])
                    process.deliver(message)
                    events_replayed += 1
                elif entry.kind is ActionKind.TIMER:
                    name = entry.detail.get("name")
                    queue = pending_timer_payloads.get(name)
                    payload = queue.popleft() if queue else None
                    process.fire_timer(name, payload)
                    events_replayed += 1
            checker.finish()
        except ReplayDivergenceError as error:
            if self.strict:
                raise
            divergence = str(error)

        divergence = divergence or checker.divergence
        return ProcessReplay(
            pid=pid,
            events_replayed=events_replayed,
            sends_recorded=len(recorded_sends),
            sends_replayed=len(checker.observed),
            diverged=divergence is not None,
            divergence_detail=divergence,
            final_state=dict(process.state),
            replayed_sends=list(checker.observed),
        )

    # ------------------------------------------------------------------
    # replay-forward (resume continuation)
    # ------------------------------------------------------------------
    def replay_forward(
        self,
        pid: str,
        process: Process,
        *,
        from_position: int,
        start_time: float = 0.0,
        rng_draws_base: Optional[int] = None,
        run_on_start: bool = False,
    ) -> ForwardReplay:
        """Drive a *live, already-restored* process forward through the log.

        Unlike :meth:`replay_process`, which rebuilds a fresh instance
        and replays from the initial state, this method takes a process
        just restored from a checkpoint and re-applies only the recorded
        history *after* the checkpoint's Scroll position
        (``from_position``): deliveries and timer firings are fed in
        recorded order, random draws and clock reads substitute their
        recorded outcomes, and replayed sends are checked against the
        recorded ones.  The process's state, vector clock and counters
        evolve exactly as they did in the original run, which is how
        ``Experiment.resume`` closes the gap between the last committed
        recovery line and the crash point.

        The process's original context is restored afterwards; when
        ``rng_draws_base`` is given (the checkpoint's ``rng_draws``),
        the live context's deterministic RNG is fast-forwarded to
        ``rng_draws_base + draws consumed during replay`` so post-replay
        execution continues the original random stream.

        ``run_on_start=True`` re-executes the process's ``on_start``
        under the replay context first: a *genesis* checkpoint (taken at
        ``on_run_start``, before any handler ran) precedes the recorded
        effects of ``on_start`` — its state initialization, random draws
        and timer registrations — so the window can only replay cleanly
        if ``on_start`` runs again, consuming the recorded outcomes.
        """
        original_ctx = process.swap_context(None)

        recorded_sends = self.scroll.sent_messages(pid, start=from_position)
        checker = _ReplaySendChecker(pid, recorded_sends, self.strict)
        rng = ReplayRandomStream(pid, self.scroll.random_outcomes(pid, start=from_position))
        clock = ReplayClock(
            pid, self.scroll.clock_reads(pid, start=from_position), fallback=start_time
        )
        pending_timer_payloads: Dict[str, deque] = defaultdict(deque)

        def send_fn(message: Message) -> None:
            checker.observe(message)

        def timer_fn(name: str, delay: float, payload: Any) -> None:
            pending_timer_payloads[name].append(payload)

        def cancel_timer_fn(name: str) -> None:
            pending_timer_payloads[name].clear()

        all_pids = tuple(self.scroll.pids()) or (pid,)
        ctx = ProcessContext(
            pid=pid,
            peers=original_ctx.peers if original_ctx is not None else all_pids,
            send_fn=send_fn,
            timer_fn=timer_fn,
            cancel_timer_fn=cancel_timer_fn,
            now_fn=clock.ambient,
            rng=rng,  # type: ignore[arg-type] — same draw interface as DeterministicRNG
            read_clock_fn=clock.read,
        )
        process.swap_context(ctx)

        divergence: Optional[str] = None
        events_replayed = 0
        last_time = start_time
        try:
            if run_on_start:
                process.on_start()
            for entry in self.scroll.iter_entries_for(pid, start=from_position):
                clock.advance_fallback(entry.time)
                last_time = max(last_time, entry.time)
                if entry.kind is ActionKind.RECEIVE and "message" in entry.detail:
                    if process.crashed:
                        continue  # dead-lettered in the original run too
                    process.deliver(Message.from_record(entry.detail["message"]))
                    events_replayed += 1
                elif entry.kind is ActionKind.TIMER:
                    if process.crashed:
                        continue
                    name = entry.detail.get("name")
                    queue = pending_timer_payloads.get(name)
                    # a timer set before the replay window carries no
                    # queued payload here — fall back to the recorded one
                    payload = queue.popleft() if queue else entry.detail.get("payload")
                    process.fire_timer(name, payload)
                    events_replayed += 1
                elif entry.kind is ActionKind.CRASH:
                    process.mark_crashed()
                elif entry.kind is ActionKind.RECOVER:
                    process.mark_recovered()
            checker.finish()
        except ReplayDivergenceError as error:
            if self.strict:
                raise
            divergence = str(error)
        finally:
            process.swap_context(original_ctx)

        if rng_draws_base is not None and original_ctx is not None:
            original_ctx.rng.restore(rng_draws_base + rng.draws)

        divergence = divergence or checker.divergence
        return ForwardReplay(
            pid=pid,
            from_position=from_position,
            events_replayed=events_replayed,
            draws_consumed=rng.draws,
            diverged=divergence is not None,
            divergence_detail=divergence,
            last_time=last_time,
        )

    # ------------------------------------------------------------------
    # whole-system replay
    # ------------------------------------------------------------------
    def replay_all(self) -> ReplayReport:
        """Replay every process that both appears on the Scroll and has a factory."""
        results: Dict[str, ProcessReplay] = {}
        for pid in self.scroll.pids():
            if pid in self.factories:
                results[pid] = self.replay_process(pid)
        return ReplayReport(processes=results)

    def replay_until_violation(self) -> Tuple[ReplayReport, Optional[str]]:
        """Replay only the prefix that precedes the first recorded violation.

        Returns the report and the pid of the violating process (or None
        if the Scroll records no violation).
        """
        violations = self.scroll.violations()
        if not violations:
            return self.replay_all(), None
        first = violations[0]
        prefix = self.scroll.prefix_until(lambda entry: entry.seq == first.seq)
        report = Replayer(prefix, self.factories, strict=self.strict).replay_all()
        return report, first.pid
