"""The Scroll: FixD's logging component (paper Section 3.1 / 4.1, Figure 1).

The Scroll is the common log where every component of the distributed
application records its *nondeterministic* actions and their outcomes —
message sends and receipts, random draws, clock reads, timer firings and
injected channel faults.  From the Scroll the library can

* reconstruct a globally consistent trace of a run
  (:class:`repro.scroll.scroll.Scroll`),
* replay a process deterministically and detect divergence
  (:class:`repro.scroll.replayer.Replayer`), and
* feed the Investigator with the execution prefix that preceded a fault.

Two interception granularities are provided, mirroring the paper's two
implementation proposals: *library-level* recording in the style of
liblog and *syscall-level* recording in the style of Flashback, plus a
*black-box* mode that only records interactions with remote components.

For long runs the Scroll is *tiered*: constructed with a ``hot_window``
it keeps only the most recent entries in memory and spills cold entries
to immutable on-disk segments indexed by an in-memory offset table
(:class:`repro.scroll.storage.SegmentStore`), preserving every query
contract — and replay equivalence — while resident memory tracks the
hot window instead of the run length.
"""

from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.interceptor import InterceptionMode, RecordingPolicy, ReplayRandomStream
from repro.scroll.recorder import ScrollRecorder
from repro.scroll.replayer import ProcessReplay, Replayer, ReplayReport
from repro.scroll.scroll import Scroll, ScrollView
from repro.scroll.storage import SegmentStore, load_scroll, save_scroll

__all__ = [
    "ActionKind",
    "ScrollEntry",
    "InterceptionMode",
    "RecordingPolicy",
    "ReplayRandomStream",
    "ScrollRecorder",
    "ProcessReplay",
    "Replayer",
    "ReplayReport",
    "Scroll",
    "ScrollView",
    "SegmentStore",
    "load_scroll",
    "save_scroll",
]
