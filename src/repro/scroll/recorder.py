"""The Scroll recorder: a runtime hook that populates a Scroll during a run."""

from __future__ import annotations

from typing import Optional

from repro.dsim.hooks import RuntimeHook
from repro.dsim.message import Message
from repro.scroll.entry import ActionKind
from repro.scroll.interceptor import InterceptionMode, RecordingPolicy
from repro.scroll.scroll import Scroll


class ScrollRecorder(RuntimeHook):
    """Records the cluster's nondeterministic actions onto a :class:`Scroll`.

    The recorder is installed on a cluster with
    ``cluster.add_hook(ScrollRecorder(...))`` — application code does not
    change at all, which is the transparency requirement of Section 3.2.

    Parameters
    ----------
    scroll:
        The Scroll to append to; a fresh one is created if omitted.
    policy:
        Which actions to record (see :class:`RecordingPolicy`).  The
        default records the full syscall-level surface so replay and
        investigation are always possible.
    """

    def __init__(
        self,
        scroll: Optional[Scroll] = None,
        policy: Optional[RecordingPolicy] = None,
    ) -> None:
        self.scroll = scroll if scroll is not None else Scroll()
        self.policy = policy or RecordingPolicy(InterceptionMode.SYSCALL)
        self._cluster = None

    def attach(self, cluster) -> None:
        self._cluster = cluster

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _message_detail(self, message: Message) -> dict:
        record = message.to_record()
        if not self.policy.record_payloads:
            record = dict(record)
            record["payload"] = None
        return {"message": record}

    def _vt_of(self, pid: str):
        if self._cluster is None:
            return None
        try:
            return self._cluster.process(pid).vector_timestamp
        except Exception:
            return None

    def _record(self, pid: str, kind: ActionKind, time: float, detail: dict) -> None:
        if not self.policy.should_record(kind):
            return
        self.scroll.record(pid, kind, time, detail, vt=self._vt_of(pid))

    # ------------------------------------------------------------------
    # hook notifications
    # ------------------------------------------------------------------
    def on_send(self, pid, message, time):
        self._record(pid, ActionKind.SEND, time, self._message_detail(message))

    def on_receive(self, pid, message, time):
        self._record(pid, ActionKind.RECEIVE, time, self._message_detail(message))

    def on_drop(self, message, time):
        self._record(message.src, ActionKind.DROP, time, self._message_detail(message))

    def on_duplicate(self, message, time):
        self._record(message.src, ActionKind.DUPLICATE, time, self._message_detail(message))

    def on_timer(self, pid, name, time):
        self._record(pid, ActionKind.TIMER, time, {"name": name})

    def on_random(self, pid, method, value, time):
        self._record(pid, ActionKind.RANDOM, time, {"method": method, "value": value})

    def on_clock_read(self, pid, value):
        time = self._cluster.now if self._cluster is not None else value
        self._record(pid, ActionKind.CLOCK_READ, time, {"value": value})

    def on_crash(self, pid, time):
        self._record(pid, ActionKind.CRASH, time, {})

    def on_recover(self, pid, time):
        self._record(pid, ActionKind.RECOVER, time, {})

    def on_corruption(self, pid, description, time):
        self._record(pid, ActionKind.CORRUPTION, time, {"description": description})

    def on_invariant_violation(self, pid, name, detail, time):
        self._record(pid, ActionKind.VIOLATION, time, {"invariant": name, "detail": detail})
        return None

    def record_checkpoint(self, pid: str, sequence: int, time: float) -> None:
        """Record that a local checkpoint was taken (called by checkpoint policies)."""
        self._record(pid, ActionKind.CHECKPOINT, time, {"sequence": sequence})
