"""The Scroll recorder: a runtime hook that populates a Scroll during a run."""

from __future__ import annotations

from typing import Optional

from repro.dsim.hooks import RuntimeHook
from repro.dsim.message import Message
from repro.scroll.entry import ActionKind
from repro.scroll.interceptor import InterceptionMode, RecordingPolicy
from repro.scroll.scroll import Scroll


class ScrollRecorder(RuntimeHook):
    """Records the cluster's nondeterministic actions onto a :class:`Scroll`.

    The recorder is installed on a cluster with
    ``cluster.add_hook(ScrollRecorder(...))`` — application code does not
    change at all, which is the transparency requirement of Section 3.2.

    The cluster carries each acting process's vector timestamp in the
    hook payload, so the recording fast path never goes back through the
    process table; :meth:`_vt_of` remains only as a fallback for
    environments that invoke the hook interface without timestamps.

    Parameters
    ----------
    scroll:
        The Scroll to append to; when omitted one is created according
        to the policy — tiered (spill-to-disk) when the policy sets a
        ``hot_window``, fully in-memory otherwise.
    policy:
        Which actions to record and how the log is stored (see
        :class:`RecordingPolicy`).  The default records the full
        syscall-level surface so replay and investigation are always
        possible.
    """

    def __init__(
        self,
        scroll: Optional[Scroll] = None,
        policy: Optional[RecordingPolicy] = None,
    ) -> None:
        self.policy = policy or RecordingPolicy(InterceptionMode.SYSCALL)
        if scroll is None:
            scroll = Scroll(
                hot_window=self.policy.hot_window,
                storage_dir=self.policy.spill_dir,
            )
        self.scroll = scroll
        self._cluster = None

    def attach(self, cluster) -> None:
        self._cluster = cluster
        register = getattr(cluster, "register_scroll", None)
        if register is not None:
            register(self.scroll)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _message_detail(self, message: Message) -> dict:
        record = message.to_record()
        if not self.policy.record_payloads:
            record = dict(record)
            record["payload"] = None
        return {"message": record}

    def _vt_of(self, pid: str):
        """Slow-path timestamp lookup for callers that pass no ``vt``."""
        if self._cluster is None:
            return None
        try:
            return self._cluster.process(pid).vector_timestamp
        except Exception:
            return None

    def _record(self, pid: str, kind: ActionKind, time: float, detail: dict, vt=None) -> None:
        if not self.policy.should_record(kind):
            return
        if vt is None:
            vt = self._vt_of(pid)
        self.scroll.record(pid, kind, time, detail, vt=vt)

    # ------------------------------------------------------------------
    # hook notifications
    # ------------------------------------------------------------------
    def on_send(self, pid, message, time, vt=None):
        self._record(pid, ActionKind.SEND, time, self._message_detail(message), vt)

    def on_receive(self, pid, message, time, vt=None):
        self._record(pid, ActionKind.RECEIVE, time, self._message_detail(message), vt)

    def on_drop(self, message, time, vt=None):
        self._record(message.src, ActionKind.DROP, time, self._message_detail(message), vt)

    def on_duplicate(self, message, time, vt=None):
        self._record(message.src, ActionKind.DUPLICATE, time, self._message_detail(message), vt)

    def on_timer(self, pid, name, time, vt=None, payload=None):
        # The payload rides along (when recorded) so replay-forward can
        # fire timers whose set_timer predates the replay window; the
        # common payload-less timer keeps its compact detail shape.
        detail = {"name": name}
        if payload is not None and self.policy.record_payloads:
            detail["payload"] = payload
        self._record(pid, ActionKind.TIMER, time, detail, vt)

    def on_random(self, pid, method, value, time, vt=None):
        self._record(pid, ActionKind.RANDOM, time, {"method": method, "value": value}, vt)

    def on_clock_read(self, pid, value, vt=None):
        time = self._cluster.now if self._cluster is not None else value
        self._record(pid, ActionKind.CLOCK_READ, time, {"value": value}, vt)

    def on_crash(self, pid, time, vt=None):
        self._record(pid, ActionKind.CRASH, time, {}, vt)

    def on_recover(self, pid, time, vt=None):
        self._record(pid, ActionKind.RECOVER, time, {}, vt)

    def on_corruption(self, pid, description, time, vt=None):
        self._record(pid, ActionKind.CORRUPTION, time, {"description": description}, vt)

    def on_invariant_violation(self, pid, name, detail, time, vt=None):
        self._record(pid, ActionKind.VIOLATION, time, {"invariant": name, "detail": detail}, vt)
        return None

    def record_checkpoint(self, pid: str, sequence: int, time: float) -> None:
        """Record that a local checkpoint was taken (called by checkpoint policies)."""
        self._record(pid, ActionKind.CHECKPOINT, time, {"sequence": sequence})
