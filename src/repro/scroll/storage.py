"""Tiered Scroll storage: on-disk entry segments behind an in-memory index.

The Scroll's cold tier lives here.  Entries are grouped into immutable
*segments* — one file per segment, one compact pickled tuple per entry —
and the store keeps an in-memory index mapping every spilled position to
``(segment, byte offset, byte length)``.  The index is three parallel
``array('q')`` columns (24 bytes per spilled entry), so a log can spill
millions of entries while the resident cost of the cold tier stays two
orders of magnitude below the entries themselves.

The segment payload is a pickled ``(pid, kind, time, detail, vt, seq)``
tuple rather than the JSON line format :func:`save_scroll` uses:
decoding sits on the replay hot path (every cold entry a query touches
must be rebuilt), and the tuple pickle decodes 2-3x faster than JSON +
:meth:`~repro.scroll.entry.ScrollEntry.from_record` while preserving
payload types (tuples, bytes) exactly.  Framing comes from the offset
index, not from separators, so the files are not line-oriented; use
:func:`save_scroll` when a human-readable artefact is needed.

Reads go through the index: a point lookup seeks to the recorded offset
and decodes one entry; a dense run of wanted positions is served by one
span read; range iteration seeks once per segment and streams.  Decoded
entries pass through a small LRU cache so the replay access pattern —
several per-process queries touching the same positions back to back —
decodes each spilled entry once.

Segments are append-only and immutable; :meth:`SegmentStore.truncate`
(rollback support) drops whole segments past the cut and shrinks the
index into a boundary segment without rewriting its file.  The mirror
operation, :meth:`SegmentStore.collect` (garbage collection), unlinks
whole segments *before* a position: once a recovery line is committed
the system can never roll back past it, so the log prefix below the
line's recorded position is unreachable for recovery and its segments
can be deleted.  Collection re-bases the offset index — the dropped
rows are removed and every later position maps through a ``base``
offset — so positions stay *global* and disk plus index cost stay
proportional to the reachable window, not the whole history.

The original whole-Scroll helpers (:func:`save_scroll`,
:func:`load_scroll`, :func:`iter_scroll_records`, :func:`append_entry`)
keep the append-friendly, diff-able JSONL format for snapshot-style
persistence and interchange.
"""

from __future__ import annotations

import io
import json
import pickle
import shutil
import tempfile
import weakref
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.dsim.clock import VectorTimestamp
from repro.scroll.entry import ActionKind, ScrollEntry

PathLike = Union[str, Path]

#: File name pattern for segment files inside a store directory.
SEGMENT_PATTERN = "segment-{:06d}.seg"

_KIND_BY_VALUE = {kind.value: kind for kind in ActionKind}


def encode_entry(entry: ScrollEntry) -> bytes:
    """Serialize one entry to its on-disk segment framing (pickled tuple)."""
    return pickle.dumps(
        (
            entry.pid,
            entry.kind.value,
            entry.time,
            entry.detail,
            entry.vt.entries if entry.vt is not None else None,
            entry.seq,
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_entry(blob: bytes) -> ScrollEntry:
    """Rebuild an entry from :func:`encode_entry` output."""
    pid, kind, time, detail, vt, seq = pickle.loads(blob)
    return ScrollEntry(
        pid=pid,
        kind=_KIND_BY_VALUE[kind],
        time=time,
        detail=detail,
        vt=VectorTimestamp(vt) if vt is not None else None,
        seq=seq,
    )


def encode_segment(entries: Sequence[ScrollEntry]) -> bytes:
    """Serialize a run of entries to one segment payload.

    The payload is simply the concatenation of :func:`encode_entry`
    frames — the exact byte layout a :class:`SegmentStore` segment file
    uses — so durable scroll-segment blobs share the store's framing and
    identical entry runs address identical blobs.  Pickle frames are
    self-delimiting, so no separate offset index is needed to decode.
    """
    return b"".join(encode_entry(entry) for entry in entries)


def decode_segment(blob: bytes) -> List[ScrollEntry]:
    """Rebuild the entry run from :func:`encode_segment` output."""
    entries: List[ScrollEntry] = []
    buffer = io.BytesIO(blob)
    end = len(blob)
    while buffer.tell() < end:
        pid, kind, time, detail, vt, seq = pickle.load(buffer)
        entries.append(
            ScrollEntry(
                pid=pid,
                kind=_KIND_BY_VALUE[kind],
                time=time,
                detail=detail,
                vt=VectorTimestamp(vt) if vt is not None else None,
                seq=seq,
            )
        )
    return entries


@dataclass
class SegmentInfo:
    """Metadata for one immutable on-disk segment."""

    segment_id: int
    path: Path
    first_position: int  # global position of the segment's first entry
    count: int           # entries currently indexed in this segment
    byte_size: int       # bytes written (diagnostics only)

    @property
    def end_position(self) -> int:
        return self.first_position + self.count


def _cleanup_store(handles: Dict[int, IO[bytes]], directory: Optional[str]) -> None:
    """Finalizer: close open segment handles and remove an owned directory."""
    for handle in handles.values():
        try:
            handle.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    handles.clear()
    if directory is not None:
        shutil.rmtree(directory, ignore_errors=True)


class SegmentStore:
    """The cold tier: spilled Scroll entries in segment files + offset index.

    Parameters
    ----------
    directory:
        Where segment files live.  When omitted the store creates (and
        owns) a temporary directory that is removed when the store is
        garbage collected or :meth:`close` d.
    cache_size:
        Capacity of the decoded-entry LRU cache.  Sized to cover one
        process's replay material by default; ``0`` disables caching.
    base:
        Global position of the store's first entry.  Non-zero when the
        store backs a Scroll rebuilt from a persisted window (resume):
        positions stay global, so a store created at ``base=N`` indexes
        its first spilled entry at global position ``N``.
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        cache_size: int = 8192,
        base: int = 0,
    ) -> None:
        owned: Optional[str] = None
        if directory is None:
            owned = tempfile.mkdtemp(prefix="scroll-segments-")
            directory = owned
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.cache_size = cache_size
        self._segments: List[SegmentInfo] = []
        #: global position of the first still-reachable (uncollected) entry;
        #: index row for global position p is ``p - _base``.
        self._base = int(base)
        # Parallel index columns, one slot per reachable spilled position.
        self._seg_ids = array("q")
        self._offsets = array("q")
        self._lengths = array("q")
        self._handles: Dict[int, IO[bytes]] = {}
        self._cache: "OrderedDict[int, ScrollEntry]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self._finalizer = weakref.finalize(self, _cleanup_store, self._handles, owned)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append_segment(self, entries: Sequence[ScrollEntry]) -> SegmentInfo:
        """Write ``entries`` as one new immutable segment and index them."""
        if not entries:
            raise ValueError("cannot write an empty segment")
        segment_id = self._segments[-1].segment_id + 1 if self._segments else 0
        path = self.directory / SEGMENT_PATTERN.format(segment_id)
        first_position = self._base + len(self._seg_ids)
        # Index the segment only after every byte is written: a failed
        # write (full disk) must not leave phantom index rows pointing
        # into a segment that was never registered.
        offsets = array("q")
        lengths = array("q")
        offset = 0
        with path.open("wb") as handle:
            for entry in entries:
                blob = encode_entry(entry)
                handle.write(blob)
                offsets.append(offset)
                lengths.append(len(blob))
                offset += len(blob)
        self._seg_ids.extend([segment_id] * len(offsets))
        self._offsets.extend(offsets)
        self._lengths.extend(lengths)
        info = SegmentInfo(
            segment_id=segment_id,
            path=path,
            first_position=first_position,
            count=len(entries),
            byte_size=offset,
        )
        self._segments.append(info)
        return info

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """End position of the store (collected prefix included in the count)."""
        return self._base + len(self._seg_ids)

    @property
    def base(self) -> int:
        """Global position of the first still-reachable entry (GC watermark)."""
        return self._base

    def _handle_for(self, segment_id: int) -> IO[bytes]:
        handle = self._handles.get(segment_id)
        if handle is None:
            info = self._segment_by_id(segment_id)
            handle = info.path.open("rb")
            self._handles[segment_id] = handle
        return handle

    def _segment_by_id(self, segment_id: int) -> SegmentInfo:
        # Segment ids are strictly increasing but not necessarily dense
        # after truncation; the list stays small, scan from the back.
        for info in reversed(self._segments):
            if info.segment_id == segment_id:
                return info
        raise KeyError(f"no segment with id {segment_id}")

    def _read_position(self, position: int) -> ScrollEntry:
        row = position - self._base
        handle = self._handle_for(self._seg_ids[row])
        handle.seek(self._offsets[row])
        return decode_entry(handle.read(self._lengths[row]))

    def _cache_put(self, position: int, entry: ScrollEntry) -> None:
        if self.cache_size <= 0:
            return
        self._cache[position] = entry
        self._cache.move_to_end(position)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def get(self, position: int) -> ScrollEntry:
        """Fetch one spilled entry by its global position."""
        if position < self._base:
            raise IndexError(
                f"spilled position {position} was garbage-collected (base {self._base})"
            )
        if position >= len(self):
            raise IndexError(f"spilled position {position} out of range")
        cached = self._cache.get(position)
        if cached is not None:
            self._cache.move_to_end(position)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        entry = self._read_position(position)
        self._cache_put(position, entry)
        return entry

    #: span-read heuristic: bulk-read a run of positions when the bytes
    #: fetched per wanted entry stay below this (i.e. the run is dense
    #: enough that one big read beats one seek+read per entry).
    _SPAN_BYTES_PER_HIT = 4096

    def get_many(self, positions: Sequence[int]) -> List[ScrollEntry]:
        """Fetch several spilled entries, preserving the given order.

        Positions are expected in nondecreasing order (Scroll indexes are
        position-sorted).  Runs of wanted positions that land densely in
        one segment are served by a single span read — one syscall for
        the whole run instead of one seek+read per entry — which is what
        keeps replay-material queries on a heavily spilled log within
        the same order of magnitude as the in-memory path.
        """
        out: List[Optional[ScrollEntry]] = [None] * len(positions)
        misses: List[Tuple[int, int]] = []  # (output index, position)
        for index, position in enumerate(positions):
            if position < self._base:
                # must fail as loudly as get(): a negative row would
                # silently alias into the live index
                raise IndexError(
                    f"spilled position {position} was garbage-collected (base {self._base})"
                )
            cached = self._cache.get(position)
            if cached is not None:
                self._cache.move_to_end(position)
                self.cache_hits += 1
                out[index] = cached
            else:
                self.cache_misses += 1
                misses.append((index, position))
        run: List[Tuple[int, int]] = []
        rebase = self._base

        def flush_run() -> None:
            if not run:
                return
            first, last = run[0][1] - rebase, run[-1][1] - rebase
            span = self._offsets[last] + self._lengths[last] - self._offsets[first]
            if len(run) >= 4 and span <= len(run) * self._SPAN_BYTES_PER_HIT:
                handle = self._handle_for(self._seg_ids[first])
                base = self._offsets[first]
                handle.seek(base)
                blob = handle.read(span)
                for index, position in run:
                    row = position - rebase
                    start = self._offsets[row] - base
                    entry = decode_entry(blob[start:start + self._lengths[row]])
                    out[index] = entry
                    self._cache_put(position, entry)
            else:
                for index, position in run:
                    entry = self._read_position(position)
                    out[index] = entry
                    self._cache_put(position, entry)
            run.clear()

        for index, position in misses:
            if run and (
                self._seg_ids[position - rebase] != self._seg_ids[run[0][1] - rebase]
                or position < run[-1][1]
            ):
                flush_run()
            run.append((index, position))
        flush_run()
        return out

    def iter_range(self, start: int, stop: int) -> Iterator[ScrollEntry]:
        """Stream entries for global positions ``[start, stop)``.

        Each read seeks to its own indexed offset first: segment handles
        are shared per store, and arbitrary code may run between yields
        (another iterator over the same segment, a point ``get``), so
        the stream must never depend on the implicit file position.
        Sequential seeks land inside the reader's buffer, keeping the
        whole-log iteration path (merge, to_records, filter) one
        buffered pass per segment.
        """
        stop = min(stop, len(self))
        position = max(self._base, start)
        while position < stop:
            row = position - self._base
            handle = self._handle_for(self._seg_ids[row])
            handle.seek(self._offsets[row])
            yield decode_entry(handle.read(self._lengths[row]))
            position += 1

    # ------------------------------------------------------------------
    # truncation (rollback support)
    # ------------------------------------------------------------------
    def truncate(self, new_length: int) -> int:
        """Forget every entry at position >= ``new_length``.

        Whole segments past the cut are deleted from disk; a boundary
        segment keeps its file (immutable) and only the index shrinks,
        so the discarded tail bytes become unreachable.  Returns the
        number of entries dropped.
        """
        new_length = max(self._base, new_length)
        removed = len(self) - new_length
        if removed <= 0:
            return 0
        cut_row = new_length - self._base
        del self._seg_ids[cut_row:]
        del self._offsets[cut_row:]
        del self._lengths[cut_row:]
        kept: List[SegmentInfo] = []
        for info in self._segments:
            if info.first_position >= new_length:
                handle = self._handles.pop(info.segment_id, None)
                if handle is not None:
                    handle.close()
                info.path.unlink(missing_ok=True)
            else:
                info.count = min(info.count, new_length - info.first_position)
                kept.append(info)
        self._segments = kept
        for position in [p for p in self._cache if p >= new_length]:
            del self._cache[position]
        return removed

    # ------------------------------------------------------------------
    # garbage collection (committed recovery lines)
    # ------------------------------------------------------------------
    def collect(self, min_position: int) -> int:
        """Unlink whole segments whose entries all precede ``min_position``.

        The caller asserts that no future read will ask for a position
        below ``min_position`` — in FixD that assertion is a *committed*
        recovery line: the system can never roll back past it, so the
        log prefix below the line's recorded position is unreachable.
        Only whole segments are dropped (a boundary segment keeps its
        immutable file); the offset index is re-based so the resident
        index cost shrinks with the collected prefix.  Returns the
        number of entries collected.
        """
        min_position = min(min_position, len(self))
        removed = 0
        kept_from = 0
        for info in self._segments:
            if info.end_position > min_position:
                break
            handle = self._handles.pop(info.segment_id, None)
            if handle is not None:
                handle.close()
            info.path.unlink(missing_ok=True)
            removed += info.count
            kept_from += 1
        if removed == 0:
            return 0
        self._segments = self._segments[kept_from:]
        del self._seg_ids[:removed]
        del self._offsets[:removed]
        del self._lengths[:removed]
        new_base = self._base + removed
        for position in [p for p in self._cache if p < new_base]:
            del self._cache[position]
        self._base = new_base
        return removed

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def index_bytes(self) -> int:
        """Resident cost of the offset index (the price of the cold tier)."""
        return sum(
            column.buffer_info()[1] * column.itemsize
            for column in (self._seg_ids, self._offsets, self._lengths)
        )

    def disk_bytes(self) -> int:
        """Bytes currently reachable on disk across all segments."""
        total = 0
        for info in self._segments:
            if info.count:
                last = info.first_position + info.count - 1 - self._base
                total += self._offsets[last] + self._lengths[last]
        return total

    def segment_count(self) -> int:
        return len(self._segments)

    def cached_entries(self) -> List[ScrollEntry]:
        """The decoded entries currently resident in the LRU cache.

        Exposed so memory accounting (``Scroll.resident_bytes``) can
        charge the cache without depending on its representation.
        """
        return list(self._cache.values())

    def clear_cache(self) -> None:
        """Drop decoded entries (used by memory benchmarks)."""
        self._cache.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "spilled_entries": len(self._seg_ids),
            "collected_entries": self._base,
            "segments": len(self._segments),
            "index_bytes": self.index_bytes(),
            "cache_entries": len(self._cache),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def close(self) -> None:
        """Close handles and remove the directory if the store owns it."""
        self._finalizer()

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# whole-Scroll snapshot persistence (original JSONL helpers)
# ----------------------------------------------------------------------
def encode_record(entry: ScrollEntry) -> bytes:
    """Serialize one entry to its JSONL interchange line (no newline)."""
    return json.dumps(entry.to_record(), sort_keys=True, default=str).encode("utf-8")


def save_scroll(scroll, path: PathLike) -> int:
    """Write ``scroll`` to ``path`` as JSON lines; returns the entry count."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("wb") as handle:
        for entry in scroll:
            handle.write(encode_record(entry))
            handle.write(b"\n")
            count += 1
    return count


def iter_scroll_records(path: PathLike) -> Iterator[dict]:
    """Yield raw entry records from a Scroll file without building a Scroll."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def load_scroll(path: PathLike):
    """Load a Scroll previously written by :func:`save_scroll`."""
    from repro.scroll.scroll import Scroll

    return Scroll(ScrollEntry.from_record(record) for record in iter_scroll_records(path))


def append_entry(path: PathLike, entry: ScrollEntry) -> None:
    """Append a single entry to an existing Scroll JSONL file (creating it if needed)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("ab") as handle:
        handle.write(encode_record(entry))
        handle.write(b"\n")
