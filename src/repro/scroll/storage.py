"""Persisting Scrolls to disk as JSON lines.

The on-disk format is one JSON object per line (the
:meth:`~repro.scroll.entry.ScrollEntry.to_record` shape), which keeps the
files append-friendly, diff-able and loadable without reading everything
into memory at once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

from repro.scroll.entry import ScrollEntry
from repro.scroll.scroll import Scroll

PathLike = Union[str, Path]


def save_scroll(scroll: Scroll, path: PathLike) -> int:
    """Write ``scroll`` to ``path`` as JSON lines; returns the entry count."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w", encoding="utf-8") as handle:
        for entry in scroll:
            handle.write(json.dumps(entry.to_record(), sort_keys=True, default=str))
            handle.write("\n")
            count += 1
    return count


def iter_scroll_records(path: PathLike) -> Iterator[dict]:
    """Yield raw entry records from a Scroll file without building a Scroll."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def load_scroll(path: PathLike) -> Scroll:
    """Load a Scroll previously written by :func:`save_scroll`."""
    return Scroll(ScrollEntry.from_record(record) for record in iter_scroll_records(path))


def append_entry(path: PathLike, entry: ScrollEntry) -> None:
    """Append a single entry to an existing Scroll file (creating it if needed)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry.to_record(), sort_keys=True, default=str))
        handle.write("\n")
