"""Scroll entries: one recorded nondeterministic action and its outcome."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from repro.dsim.clock import VectorTimestamp


class ActionKind(Enum):
    """The kinds of actions a Scroll can record.

    ``SEND``/``RECEIVE``/``DROP``/``DUPLICATE`` describe interactions
    with other components (the actions Figure 1 depicts).  ``RANDOM``,
    ``CLOCK_READ`` and ``TIMER`` are the local sources of
    nondeterminism.  The remaining kinds are bookkeeping that makes bug
    reports and recovery-line computation easier but is not strictly
    required for replay.
    """

    SEND = "send"
    RECEIVE = "receive"
    DROP = "drop"
    DUPLICATE = "duplicate"
    RANDOM = "random"
    CLOCK_READ = "clock_read"
    TIMER = "timer"
    CRASH = "crash"
    RECOVER = "recover"
    CORRUPTION = "corruption"
    VIOLATION = "violation"
    CHECKPOINT = "checkpoint"
    ANNOTATION = "annotation"


#: Kinds that are outcomes of nondeterministic choices and therefore must be
#: recorded for deterministic replay to be possible.
NONDETERMINISTIC_KINDS = frozenset(
    {
        ActionKind.RECEIVE,
        ActionKind.RANDOM,
        ActionKind.CLOCK_READ,
        ActionKind.TIMER,
        ActionKind.DROP,
        ActionKind.DUPLICATE,
    }
)

_entry_counter = itertools.count(1)


def _next_entry_seq() -> int:
    return next(_entry_counter)


def reset_entry_seq(start: int = 1) -> None:
    """Reset the global entry counter (test isolation; resume continuation).

    A resumed run that keeps appending to a rebuilt Scroll rebases the
    counter past the persisted history (``start``) so entry ``seq``
    numbers stay a total order across the crash.
    """
    global _entry_counter
    _entry_counter = itertools.count(start)


@dataclass(frozen=True)
class ScrollEntry:
    """One recorded action.

    Attributes
    ----------
    seq:
        Global, monotonically increasing sequence number assigned at
        record time.  Within one Scroll it is a total order consistent
        with the observation order.
    pid:
        The process the action belongs to.
    kind:
        What happened (see :class:`ActionKind`).
    time:
        Simulation time of the action.
    detail:
        Action-specific payload: the serialized message for
        SEND/RECEIVE, ``{"method": ..., "value": ...}`` for RANDOM, the
        timer name for TIMER, and so on.
    vt:
        Vector timestamp of the process at record time when available;
        used to merge per-process logs into a causally consistent order.
    """

    pid: str
    kind: ActionKind
    time: float
    detail: Dict[str, Any] = field(default_factory=dict)
    vt: Optional[VectorTimestamp] = None
    seq: int = field(default_factory=_next_entry_seq)

    @property
    def is_nondeterministic(self) -> bool:
        """True when this entry must be present for deterministic replay."""
        return self.kind in NONDETERMINISTIC_KINDS

    def describe(self) -> str:
        """One-line human-readable rendering used in bug reports."""
        inner = ", ".join(f"{key}={value!r}" for key, value in sorted(self.detail.items()))
        return f"[{self.seq}] t={self.time:.3f} {self.pid} {self.kind.value} {inner}"

    def to_record(self) -> Dict[str, Any]:
        """Serialize to a plain JSON-compatible dictionary."""
        return {
            "seq": self.seq,
            "pid": self.pid,
            "kind": self.kind.value,
            "time": self.time,
            "detail": self.detail,
            "vt": self.vt.as_dict() if self.vt is not None else None,
        }

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "ScrollEntry":
        """Rebuild an entry from :meth:`to_record` output."""
        vt = record.get("vt")
        return ScrollEntry(
            pid=record["pid"],
            kind=ActionKind(record["kind"]),
            time=record["time"],
            detail=dict(record.get("detail", {})),
            # An empty mapping is a real (empty) timestamp; only an
            # absent/null field means "not recorded".
            vt=VectorTimestamp.from_mapping(vt) if vt is not None else None,
            seq=record["seq"],
        )
