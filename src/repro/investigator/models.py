"""Turning real process implementations into explorable models.

Figure 4 of the paper: when a process detects a fault, its peers reply
with a checkpoint of their state *and a model of their behaviour* — and
"this model does not have to be abstract; it could simply be the
implementation of the process itself".  This module is the adapter that
makes that work: a :class:`DistributedSystemModel` wraps a set of
:class:`~repro.dsim.process.Process` implementations (or hand-written
:class:`EnvironmentModel` stand-ins for components outside FixD's
control, such as the network or a third-party service) into a
guarded-command model whose actions are message deliveries and timer
firings.

State representation
--------------------
A :class:`SystemState` is the global state of the modelled system:

* one state dictionary per process (the same ``self.state`` the
  application maintains),
* per-process random-stream cursors (so replayed randomness is
  deterministic during exploration),
* per-channel FIFO queues of in-flight messages, and
* per-process FIFO queues of pending timers.

Actions
-------
* ``deliver:src->dst`` — deliver the oldest in-flight message on the
  ``src -> dst`` channel (guards keep per-channel FIFO order, while the
  interleaving *across* channels is what the explorer enumerates);
* ``timer:pid`` — fire the oldest pending timer at ``pid``.

Both kinds of action execute the *real handler code* of the destination
process in a sandbox: the process instance's state is loaded from the
model state, the handler runs, and the sends/timers it performs are
captured into the successor state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dsim.message import Message
from repro.dsim.process import Process, ProcessContext
from repro.dsim.rng import DeterministicRNG, derive_seed
from repro.errors import InvariantViolation, ModelCheckingError
from repro.investigator.guarded import Action, GuardedModel
from repro.investigator.invariants import InvariantSpec
from repro.investigator.state import fingerprint
from repro.timemachine.checkpoint import GlobalCheckpoint

ProcessFactory = Callable[[], Process]


@dataclass(frozen=True)
class SystemState:
    """The global state of the modelled distributed system (treated as immutable)."""

    process_states: Tuple[Tuple[str, Any], ...]
    rng_cursors: Tuple[Tuple[str, int], ...]
    channels: Tuple[Tuple[Tuple[str, str], Tuple[Any, ...]], ...]
    timers: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    step: int = 0

    # -- constructors ----------------------------------------------------
    @staticmethod
    def build(
        process_states: Dict[str, Dict[str, Any]],
        rng_cursors: Dict[str, int],
        channels: Dict[Tuple[str, str], Sequence[Dict[str, Any]]],
        timers: Dict[str, Sequence[Tuple[str, Any]]],
        step: int = 0,
    ) -> "SystemState":
        return SystemState(
            process_states=tuple(sorted((pid, copy.deepcopy(state)) for pid, state in process_states.items())),
            rng_cursors=tuple(sorted(rng_cursors.items())),
            channels=tuple(
                sorted(
                    (channel, tuple(copy.deepcopy(list(queue))))
                    for channel, queue in channels.items()
                    if queue
                )
            ),
            timers=tuple(
                sorted((pid, tuple(copy.deepcopy(list(queue)))) for pid, queue in timers.items() if queue)
            ),
            step=step,
        )

    # -- views -----------------------------------------------------------
    def state_of(self, pid: str) -> Dict[str, Any]:
        for key, state in self.process_states:
            if key == pid:
                return state
        raise KeyError(pid)

    def states(self) -> Dict[str, Dict[str, Any]]:
        return {pid: state for pid, state in self.process_states}

    def rng_cursor(self, pid: str) -> int:
        for key, cursor in self.rng_cursors:
            if key == pid:
                return cursor
        return 0

    def channel_queue(self, src: str, dst: str) -> Tuple[Any, ...]:
        for channel, queue in self.channels:
            if channel == (src, dst):
                return queue
        return ()

    def timer_queue(self, pid: str) -> Tuple[Any, ...]:
        for key, queue in self.timers:
            if key == pid:
                return queue
        return ()

    def pending_messages(self) -> int:
        return sum(len(queue) for _, queue in self.channels)

    def pending_timers(self) -> int:
        return sum(len(queue) for _, queue in self.timers)

    @property
    def quiescent(self) -> bool:
        """True when no message and no timer is pending."""
        return self.pending_messages() == 0 and self.pending_timers() == 0

    def fingerprint(self) -> str:
        # The step counter is excluded: two identical configurations reached
        # after a different number of steps are the same state.
        return fingerprint(
            (self.process_states, self.rng_cursors, self.channels, self.timers)
        )

    def describe(self) -> str:
        states = ", ".join(f"{pid}:{state}" for pid, state in self.process_states)
        return f"msgs={self.pending_messages()} timers={self.pending_timers()} {states}"


class EnvironmentModel(Process):
    """A hand-written model of a component outside FixD's control.

    Section 4.3: "certain parts of the environment ... are not under the
    direct control of the FixD environment and must be modeled
    internally".  An :class:`EnvironmentModel` is simply a process whose
    behaviour is given by a response function instead of real code:
    every incoming message is answered according to ``respond``.
    """

    def __init__(self, respond: Optional[Callable[[Process, Message], None]] = None) -> None:
        super().__init__()
        self._respond = respond

    def on_unhandled(self, message: Message) -> None:
        if self._respond is not None:
            self._respond(self, message)
        # Unlike a real process, an environment model silently ignores
        # messages it has no scripted response for.


class _SandboxContext:
    """Captures the sends and timers a handler performs during model execution."""

    def __init__(self, pid: str, peers: Tuple[str, ...], rng: DeterministicRNG, now: float) -> None:
        self.sent: List[Message] = []
        self.timers_set: List[Tuple[str, Any]] = []
        self.timers_cancelled: List[str] = []
        self.context = ProcessContext(
            pid=pid,
            peers=peers,
            send_fn=self.sent.append,
            timer_fn=lambda name, delay, payload: self.timers_set.append((name, payload)),
            cancel_timer_fn=self.timers_cancelled.append,
            now_fn=lambda: now,
            rng=rng,
        )


class DistributedSystemModel:
    """A guarded-command model whose actions run real process handlers."""

    def __init__(
        self,
        factories: Dict[str, ProcessFactory],
        seed: int = 0,
        global_invariants: Optional[Dict[str, Callable[[Dict[str, Dict[str, Any]]], bool]]] = None,
        check_process_invariants: bool = True,
    ) -> None:
        if not factories:
            raise ModelCheckingError("a distributed system model needs at least one process")
        self.factories = dict(factories)
        self.seed = seed
        self.global_invariants = dict(global_invariants or {})
        self.check_process_invariants = check_process_invariants
        self._pids = tuple(sorted(self.factories))
        # One scratch instance per process, reused across action executions.
        self._scratch: Dict[str, Process] = {}

    # ------------------------------------------------------------------
    # scratch process management
    # ------------------------------------------------------------------
    def _scratch_process(self, pid: str) -> Process:
        if pid not in self._scratch:
            self._scratch[pid] = self.factories[pid]()
        return self._scratch[pid]

    def _fresh_rng(self, pid: str, cursor: int) -> DeterministicRNG:
        rng = DeterministicRNG(derive_seed(self.seed, "model", pid))
        rng.restore(cursor)
        return rng

    # ------------------------------------------------------------------
    # initial states
    # ------------------------------------------------------------------
    def initial_state(self) -> SystemState:
        """Run every process's ``on_start`` in a sandbox and collect the resulting state."""
        states: Dict[str, Dict[str, Any]] = {}
        cursors: Dict[str, int] = {}
        channels: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
        timers: Dict[str, List[Tuple[str, Any]]] = {}
        for pid in self._pids:
            process = self.factories[pid]()
            rng = self._fresh_rng(pid, 0)
            sandbox = _SandboxContext(pid, self._pids, rng, now=0.0)
            process.bind(sandbox.context)
            process.on_start()
            states[pid] = copy.deepcopy(process.state)
            cursors[pid] = rng.draws
            for message in sandbox.sent:
                channels.setdefault((message.src, message.dst), []).append(message.to_record())
            timers[pid] = list(sandbox.timers_set)
        return SystemState.build(states, cursors, channels, timers)

    def state_from_checkpoint(
        self,
        checkpoint: GlobalCheckpoint,
        in_flight: Optional[Sequence[Message]] = None,
    ) -> SystemState:
        """Build the model's starting state from a global checkpoint (Figure 4)."""
        states: Dict[str, Dict[str, Any]] = {}
        cursors: Dict[str, int] = {}
        for pid in self._pids:
            if pid in checkpoint:
                states[pid] = copy.deepcopy(checkpoint[pid].state)
                cursors[pid] = checkpoint[pid].rng_draws
            else:
                # Processes without a checkpoint start from their initial state.
                process = self.factories[pid]()
                rng = self._fresh_rng(pid, 0)
                sandbox = _SandboxContext(pid, self._pids, rng, now=0.0)
                process.bind(sandbox.context)
                process.on_start()
                states[pid] = copy.deepcopy(process.state)
                cursors[pid] = rng.draws
        channels: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
        for message in in_flight or ():
            channels.setdefault((message.src, message.dst), []).append(message.to_record())
        return SystemState.build(states, cursors, channels, {})

    # ------------------------------------------------------------------
    # action execution
    # ------------------------------------------------------------------
    def _execute_handler(
        self,
        state: SystemState,
        pid: str,
        run: Callable[[Process], None],
    ) -> SystemState:
        """Run ``run(process)`` against ``pid``'s implementation and build the successor."""
        process = self._scratch_process(pid)
        rng = self._fresh_rng(pid, state.rng_cursor(pid))
        sandbox = _SandboxContext(pid, self._pids, rng, now=float(state.step + 1))
        process.bind(sandbox.context)
        process.state = copy.deepcopy(state.state_of(pid))

        run(process)

        states = state.states()
        states[pid] = copy.deepcopy(process.state)
        cursors = {p: state.rng_cursor(p) for p in self._pids}
        cursors[pid] = rng.draws
        channels: Dict[Tuple[str, str], List[Dict[str, Any]]] = {
            channel: list(queue) for channel, queue in state.channels
        }
        for message in sandbox.sent:
            channels.setdefault((message.src, message.dst), []).append(message.to_record())
        timers: Dict[str, List[Tuple[str, Any]]] = {p: list(state.timer_queue(p)) for p in self._pids}
        for name in sandbox.timers_cancelled:
            timers[pid] = [entry for entry in timers[pid] if entry[0] != name]
        timers[pid] = list(timers.get(pid, [])) + list(sandbox.timers_set)
        return SystemState.build(states, cursors, channels, timers, step=state.step + 1)

    def _deliver_effect(self, src: str, dst: str) -> Callable[[SystemState], SystemState]:
        def effect(state: SystemState) -> SystemState:
            queue = state.channel_queue(src, dst)
            if not queue:
                raise ModelCheckingError(f"deliver action fired with empty channel {src}->{dst}")
            record = queue[0]
            message = Message.from_record(dict(record))
            # Remove the message from the channel before executing the handler.
            trimmed = {channel: list(q) for channel, q in state.channels}
            trimmed[(src, dst)] = list(queue[1:])
            pre = SystemState.build(
                state.states(),
                {p: state.rng_cursor(p) for p in self._pids},
                trimmed,
                {p: list(state.timer_queue(p)) for p in self._pids},
                step=state.step,
            )
            return self._execute_handler(pre, dst, lambda process: process.deliver(message))

        return effect

    def _timer_effect(self, pid: str) -> Callable[[SystemState], SystemState]:
        def effect(state: SystemState) -> SystemState:
            queue = state.timer_queue(pid)
            if not queue:
                raise ModelCheckingError(f"timer action fired with no pending timer at {pid}")
            name, payload = queue[0]
            trimmed_timers = {p: list(state.timer_queue(p)) for p in self._pids}
            trimmed_timers[pid] = list(queue[1:])
            pre = SystemState.build(
                state.states(),
                {p: state.rng_cursor(p) for p in self._pids},
                {channel: list(q) for channel, q in state.channels},
                trimmed_timers,
                step=state.step,
            )
            return self._execute_handler(pre, pid, lambda process: process.fire_timer(name, payload))

        return effect

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _process_invariant_spec(self, pid: str) -> InvariantSpec:
        def predicate(state: SystemState) -> bool:
            process = self._scratch_process(pid)
            rng = self._fresh_rng(pid, state.rng_cursor(pid))
            sandbox = _SandboxContext(pid, self._pids, rng, now=float(state.step))
            process.bind(sandbox.context)
            process.state = copy.deepcopy(state.state_of(pid))
            try:
                process.check_invariants()
            except InvariantViolation:
                return False
            return True

        return InvariantSpec(
            name=f"process:{pid}",
            predicate=predicate,
            description=f"all invariants declared by process {pid} hold",
        )

    def _global_invariant_spec(self, name: str, predicate) -> InvariantSpec:
        return InvariantSpec(
            name=f"global:{name}",
            predicate=lambda state: predicate(state.states()),
            description=f"global invariant {name}",
        )

    # ------------------------------------------------------------------
    # model construction
    # ------------------------------------------------------------------
    def build_model(self, initial: Optional[SystemState] = None) -> GuardedModel:
        """Construct the guarded-command model to hand to ModelD / the explorer."""
        actions: List[Action] = []
        for src in self._pids:
            for dst in self._pids:
                if src == dst:
                    continue
                actions.append(
                    Action(
                        name=f"deliver:{src}->{dst}",
                        effect=self._deliver_effect(src, dst),
                        guard=lambda state, _s=src, _d=dst: bool(state.channel_queue(_s, _d)),
                        tags=frozenset({"communication"}),
                    )
                )
        for pid in self._pids:
            actions.append(
                Action(
                    name=f"timer:{pid}",
                    effect=self._timer_effect(pid),
                    guard=lambda state, _p=pid: bool(state.timer_queue(_p)),
                    tags=frozenset({"timer"}),
                )
            )
        invariants: List[InvariantSpec] = []
        if self.check_process_invariants:
            invariants.extend(self._process_invariant_spec(pid) for pid in self._pids)
        invariants.extend(
            self._global_invariant_spec(name, predicate)
            for name, predicate in sorted(self.global_invariants.items())
        )
        return GuardedModel(
            initial_state=initial if initial is not None else self.initial_state(),
            actions=actions,
            invariants=invariants,
        )

    @staticmethod
    def terminal_predicate(state: SystemState) -> bool:
        """Quiescent states are legitimate end states, not deadlocks."""
        return state.quiescent
