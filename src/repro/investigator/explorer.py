"""State-space exploration with pluggable search order (ModelD back-end).

The explorer performs the actual work the paper assigns to ModelD's
back-end: "performing the actual state transitions, keeping track of the
visited execution paths (calculating the reachability graph), and
verifying that no user-specified invariants are violated."

Search orders
-------------
* ``BFS`` — breadth-first; finds shortest counterexamples.
* ``DFS`` — depth-first; low frontier memory, long counterexamples.
* ``HEURISTIC`` — priority queue ordered by action priority plus an
  optional user-provided state scoring function (the "heuristic search"
  the paper says the dynamic-action machinery was originally built for).
* ``SINGLE_PATH`` — follows exactly one enabled action per state (the
  first, or the one a provided ``schedule`` callback picks).  This is how
  the engine runs a "conventional" execution of the implementation.
* ``RANDOM`` — uniform random walk with restarts, a cheap bug-finding
  baseline for the ablation benchmark.

Limits
------
``max_states`` and ``max_depth`` bound the exploration; hitting the state
budget either raises :class:`~repro.errors.StateSpaceLimitExceeded`
(``strict_budget=True``) or marks the result as truncated.  The
state-blow-up benchmark (claim-2.1-blowup) uses these bounds to show the
exponential growth the paper warns about.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ModelCheckingError, StateSpaceLimitExceeded
from repro.investigator.guarded import Action, GuardedModel
from repro.investigator.invariants import DEADLOCK_INVARIANT
from repro.investigator.trails import Trail, TrailStep, deduplicate_trails


class SearchOrder(Enum):
    BFS = "bfs"
    DFS = "dfs"
    HEURISTIC = "heuristic"
    SINGLE_PATH = "single-path"
    RANDOM = "random"


def _summarise(state: Any, limit: int = 160) -> str:
    describe = getattr(state, "describe", None)
    text = describe() if callable(describe) else repr(state)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass
class ExplorationResult:
    """Everything the explorer learned about the model."""

    states_explored: int
    transitions: int
    max_depth_reached: int
    violations: List[Trail]
    deadlocks: List[Trail]
    truncated: bool
    search_order: SearchOrder
    reachability_graph: Dict[str, List[Tuple[str, str]]] = field(default_factory=dict)
    unique_states: int = 0

    @property
    def ok(self) -> bool:
        """True when no invariant violation and no deadlock was found."""
        return not self.violations and not self.deadlocks

    @property
    def all_trails(self) -> List[Trail]:
        return list(self.violations) + list(self.deadlocks)

    def shortest_violation(self) -> Optional[Trail]:
        trails = self.violations or self.deadlocks
        if not trails:
            return None
        return min(trails, key=lambda trail: trail.length)


@dataclass(order=True)
class _Frontier:
    """Priority-queue entry for heuristic search."""

    score: float
    tiebreak: int
    state: Any = field(compare=False)
    path: Tuple[Tuple[str, str, str], ...] = field(compare=False)
    depth: int = field(compare=False)


class Explorer:
    """Explores a :class:`GuardedModel` under a configurable search order."""

    def __init__(
        self,
        model: GuardedModel,
        search_order: SearchOrder = SearchOrder.BFS,
        max_states: int = 100_000,
        max_depth: int = 10_000,
        stop_at_first_violation: bool = False,
        strict_budget: bool = False,
        check_deadlocks: bool = True,
        terminal_predicate: Optional[Callable[[Any], bool]] = None,
        heuristic: Optional[Callable[[Any], float]] = None,
        schedule: Optional[Callable[[Any, List[Action]], Action]] = None,
        random_seed: int = 0,
        build_graph: bool = False,
    ) -> None:
        self.model = model
        self.search_order = search_order
        self.max_states = max_states
        self.max_depth = max_depth
        self.stop_at_first_violation = stop_at_first_violation
        self.strict_budget = strict_budget
        self.check_deadlocks = check_deadlocks
        self.terminal_predicate = terminal_predicate
        self.heuristic = heuristic
        self.schedule = schedule
        self.build_graph = build_graph
        self._random = random.Random(random_seed)

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def explore(self) -> ExplorationResult:
        """Run the exploration and return the result."""
        if self.search_order is SearchOrder.SINGLE_PATH:
            return self._explore_single_path()
        if self.search_order is SearchOrder.RANDOM:
            return self._explore_random_walks()
        return self._explore_graph_search()

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _check_state(
        self,
        state: Any,
        path: Tuple[Tuple[str, str, str], ...],
        violations: List[Trail],
        deadlocks: List[Trail],
        enabled: Optional[List[Action]] = None,
    ) -> bool:
        """Check invariants (and deadlock) in ``state``; returns True when a violation was found."""
        found = False
        for invariant in self.model.violated_invariants(state):
            violations.append(self._trail_from(path, invariant.name, state, invariant.description))
            found = True
        if self.check_deadlocks:
            if enabled is None:
                enabled = self.model.enabled_actions(state)
            is_terminal = self.terminal_predicate(state) if self.terminal_predicate else False
            if not enabled and not is_terminal:
                deadlocks.append(
                    self._trail_from(path, DEADLOCK_INVARIANT, state, "no action is enabled")
                )
                found = True
        return found

    def _trail_from(
        self,
        path: Tuple[Tuple[str, str, str], ...],
        invariant_name: str,
        final_state: Any,
        detail: str = "",
    ) -> Trail:
        steps = [
            TrailStep(action=action, state_fingerprint=fp, state_summary=summary, depth=index + 1)
            for index, (action, fp, summary) in enumerate(path)
        ]
        return Trail(
            violated_invariant=invariant_name,
            steps=steps,
            final_state=final_state,
            detail=detail,
        )

    def _budget_exceeded(self, explored: int) -> bool:
        if explored < self.max_states:
            return False
        if self.strict_budget:
            raise StateSpaceLimitExceeded(self.max_states)
        return True

    # ------------------------------------------------------------------
    # BFS / DFS / heuristic graph search
    # ------------------------------------------------------------------
    def _explore_graph_search(self) -> ExplorationResult:
        initial = self.model.initial_state
        initial_fp = self.model.fingerprint(initial)
        visited: Set[str] = {initial_fp}
        violations: List[Trail] = []
        deadlocks: List[Trail] = []
        graph: Dict[str, List[Tuple[str, str]]] = {}
        explored = 0
        transitions = 0
        max_depth_seen = 0
        truncated = False
        tiebreak = itertools.count()

        if self.search_order is SearchOrder.HEURISTIC:
            frontier: Any = []
            heapq.heappush(frontier, _Frontier(self._score(initial), next(tiebreak), initial, (), 0))
            pop = lambda: heapq.heappop(frontier)  # noqa: E731
            push = lambda state, path, depth: heapq.heappush(  # noqa: E731
                frontier, _Frontier(self._score(state), next(tiebreak), state, path, depth)
            )
            empty = lambda: not frontier  # noqa: E731
        else:
            queue: deque = deque()
            queue.append((initial, (), 0))
            if self.search_order is SearchOrder.BFS:
                pop = queue.popleft
            else:  # DFS
                pop = queue.pop
            push = lambda state, path, depth: queue.append((state, path, depth))  # noqa: E731
            empty = lambda: not queue  # noqa: E731

        while not empty():
            if self._budget_exceeded(explored):
                truncated = True
                break
            item = pop()
            if isinstance(item, _Frontier):
                state, path, depth = item.state, item.path, item.depth
            else:
                state, path, depth = item
            explored += 1
            max_depth_seen = max(max_depth_seen, depth)

            enabled = self.model.enabled_actions(state)
            found = self._check_state(state, path, violations, deadlocks, enabled)
            if found and self.stop_at_first_violation:
                break
            if depth >= self.max_depth:
                truncated = True
                continue

            state_fp = self.model.fingerprint(state)
            for action in enabled:
                for successor in action.apply(state):
                    transitions += 1
                    successor_fp = self.model.fingerprint(successor)
                    if self.build_graph:
                        graph.setdefault(state_fp, []).append((action.name, successor_fp))
                    if successor_fp in visited:
                        continue
                    visited.add(successor_fp)
                    push(
                        successor,
                        path + ((action.name, successor_fp, _summarise(successor)),),
                        depth + 1,
                    )

        return ExplorationResult(
            states_explored=explored,
            transitions=transitions,
            max_depth_reached=max_depth_seen,
            violations=deduplicate_trails(violations),
            deadlocks=deduplicate_trails(deadlocks),
            truncated=truncated,
            search_order=self.search_order,
            reachability_graph=graph,
            unique_states=len(visited),
        )

    def _score(self, state: Any) -> float:
        """Heuristic priority (lower pops first, so better states get smaller scores)."""
        if self.heuristic is None:
            return 0.0
        return -float(self.heuristic(state))

    # ------------------------------------------------------------------
    # single-path execution
    # ------------------------------------------------------------------
    def _explore_single_path(self) -> ExplorationResult:
        state = self.model.initial_state
        path: Tuple[Tuple[str, str, str], ...] = ()
        violations: List[Trail] = []
        deadlocks: List[Trail] = []
        explored = 0
        transitions = 0
        truncated = False

        while True:
            explored += 1
            enabled = self.model.enabled_actions(state)
            found = self._check_state(state, path, violations, deadlocks, enabled)
            if found and self.stop_at_first_violation:
                break
            if not enabled:
                break
            if explored > self.max_states or len(path) >= self.max_depth:
                truncated = True
                break
            if self.schedule is not None:
                action = self.schedule(state, enabled)
                if action is None:
                    break
            else:
                action = enabled[0]
            successors = action.apply(state)
            state = successors[0]
            transitions += 1
            path = path + ((action.name, self.model.fingerprint(state), _summarise(state)),)

        return ExplorationResult(
            states_explored=explored,
            transitions=transitions,
            max_depth_reached=len(path),
            violations=deduplicate_trails(violations),
            deadlocks=deduplicate_trails(deadlocks),
            truncated=truncated,
            search_order=self.search_order,
            unique_states=explored,
        )

    # ------------------------------------------------------------------
    # random walks
    # ------------------------------------------------------------------
    def _explore_random_walks(self, walks: Optional[int] = None) -> ExplorationResult:
        budget = self.max_states
        walk_budget = walks if walks is not None else max(1, budget // max(1, self.max_depth))
        violations: List[Trail] = []
        deadlocks: List[Trail] = []
        explored = 0
        transitions = 0
        max_depth_seen = 0
        truncated = False

        for _ in range(walk_budget):
            state = self.model.initial_state
            path: Tuple[Tuple[str, str, str], ...] = ()
            for depth in range(self.max_depth):
                if explored >= budget:
                    truncated = True
                    break
                explored += 1
                max_depth_seen = max(max_depth_seen, depth)
                enabled = self.model.enabled_actions(state)
                found = self._check_state(state, path, violations, deadlocks, enabled)
                if found and self.stop_at_first_violation:
                    return ExplorationResult(
                        states_explored=explored,
                        transitions=transitions,
                        max_depth_reached=max_depth_seen,
                        violations=deduplicate_trails(violations),
                        deadlocks=deduplicate_trails(deadlocks),
                        truncated=truncated,
                        search_order=self.search_order,
                        unique_states=explored,
                    )
                if not enabled:
                    break
                action = enabled[self._random.randrange(len(enabled))]
                successors = action.apply(state)
                state = successors[self._random.randrange(len(successors))]
                transitions += 1
                path = path + ((action.name, self.model.fingerprint(state), _summarise(state)),)
            if explored >= budget:
                truncated = True
                break

        return ExplorationResult(
            states_explored=explored,
            transitions=transitions,
            max_depth_reached=max_depth_seen,
            violations=deduplicate_trails(violations),
            deadlocks=deduplicate_trails(deadlocks),
            truncated=truncated,
            search_order=self.search_order,
            unique_states=explored,
        )
