"""The Investigator: implementation-level model checking (Sections 3.3 / 4.3).

The Investigator answers the question "which execution paths lead the
system to an invalid state?"  It functions like a traditional model
checker, except that the "model" is the actual implementation of each
process (Figure 4: peers send the detecting process their checkpoints
*and* their models, which may simply be the implementation itself).

The package contains:

* the **ModelD back-end** — a guarded-command state-transition engine
  with pluggable search order, dynamic action sets and reachability
  graph construction (:mod:`repro.investigator.guarded`,
  :mod:`repro.investigator.explorer`);
* the **ModelD front-end** — a declarative builder DSL standing in for
  the paper's Camlp4 syntax extension (:mod:`repro.investigator.frontend`,
  :mod:`repro.investigator.modeld`);
* **process models** — adapters that turn real
  :class:`~repro.dsim.process.Process` implementations (plus a global
  checkpoint and pending messages) into a guarded-command model whose
  actions are message deliveries and timer firings
  (:mod:`repro.investigator.models`);
* a **CMC-style checker** with generic properties (deadlock, leaks on a
  simulated heap, invalid accesses) (:mod:`repro.investigator.cmc`,
  :mod:`repro.investigator.heap`);
* the **Investigator facade** used by FixD's fault-response protocol
  (:mod:`repro.investigator.investigator`).
"""

from repro.investigator.cmc import CMCChecker, GenericProperty
from repro.investigator.envmodels import DiskModel, EchoServiceModel, LossyNetworkModel
from repro.investigator.explorer import ExplorationResult, Explorer, SearchOrder
from repro.investigator.frontend import ModelBuilder
from repro.investigator.guarded import Action, GuardedModel
from repro.investigator.heap import SimulatedHeap
from repro.investigator.invariants import InvariantSpec, always, deadlock_free
from repro.investigator.investigator import InvestigationReport, Investigator
from repro.investigator.modeld import ModelD
from repro.investigator.models import DistributedSystemModel, SystemState
from repro.investigator.state import ModelState, fingerprint
from repro.investigator.trails import Trail, TrailStep

__all__ = [
    "CMCChecker",
    "GenericProperty",
    "DiskModel",
    "EchoServiceModel",
    "LossyNetworkModel",
    "ExplorationResult",
    "Explorer",
    "SearchOrder",
    "ModelBuilder",
    "Action",
    "GuardedModel",
    "SimulatedHeap",
    "InvariantSpec",
    "always",
    "deadlock_free",
    "InvestigationReport",
    "Investigator",
    "ModelD",
    "DistributedSystemModel",
    "SystemState",
    "ModelState",
    "fingerprint",
    "Trail",
    "TrailStep",
]
