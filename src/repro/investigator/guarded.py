"""The guarded-command model underlying ModelD's back-end engine.

The paper describes ModelD's engine as "based on a guarded command
model, where the behavior of the system is described by a set of guarded
commands that can be chosen for execution any time", with two unusual
capabilities the Investigator and the Healer both rely on:

* the set of actions can be **changed dynamically** while the engine
  runs (used to swap real communication actions for models of them, and
  to inject updated code into a running program), and
* the **search order is customisable** (used to make the engine follow a
  single "conventional" execution path, or to explore exhaustively).

An :class:`Action` pairs a guard (a predicate over the state) with an
effect (a function producing one or more successor states).  A
:class:`GuardedModel` is a mutable collection of actions plus the
invariants to check in every reachable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ModelCheckingError
from repro.investigator.invariants import InvariantSpec

#: Effects may return a single successor state or a list of them
#: (nondeterministic actions have several possible outcomes).
EffectResult = Union[Any, List[Any]]


@dataclass(frozen=True)
class Action:
    """One guarded command.

    Attributes
    ----------
    name:
        Unique name; trails and search heuristics refer to actions by it.
    guard:
        ``guard(state) -> bool``; the action is *enabled* in states where
        the guard holds.  ``None`` means always enabled.
    effect:
        ``effect(state) -> state | [state, ...]``; must not mutate the
        input state.
    priority:
        Larger values are preferred by the heuristic search order.
    tags:
        Free-form labels ("communication", "model", "update", ...) used
        when swapping action groups dynamically.
    """

    name: str
    effect: Callable[[Any], EffectResult]
    guard: Optional[Callable[[Any], bool]] = None
    priority: float = 0.0
    tags: frozenset = frozenset()

    def enabled(self, state: Any) -> bool:
        """True when the action may execute in ``state``."""
        if self.guard is None:
            return True
        return bool(self.guard(state))

    def apply(self, state: Any) -> List[Any]:
        """Execute the effect, always returning a list of successor states."""
        result = self.effect(state)
        if result is None:
            raise ModelCheckingError(f"action {self.name!r} returned no successor state")
        if isinstance(result, list):
            return result
        return [result]


class GuardedModel:
    """A mutable set of guarded commands plus invariants and an initial state."""

    def __init__(
        self,
        initial_state: Any,
        actions: Optional[Iterable[Action]] = None,
        invariants: Optional[Iterable[InvariantSpec]] = None,
        fingerprint_fn: Optional[Callable[[Any], str]] = None,
    ) -> None:
        self.initial_state = initial_state
        self._actions: Dict[str, Action] = {}
        for action in actions or ():
            self.add_action(action)
        self.invariants: List[InvariantSpec] = list(invariants or ())
        self._fingerprint_fn = fingerprint_fn

    # ------------------------------------------------------------------
    # dynamic action management (the ModelD differentiator)
    # ------------------------------------------------------------------
    def add_action(self, action: Action) -> None:
        """Add (or replace) an action; replacing is how dynamic updates are injected."""
        self._actions[action.name] = action

    def remove_action(self, name: str) -> Action:
        """Remove an action by name, returning it."""
        try:
            return self._actions.pop(name)
        except KeyError:
            raise ModelCheckingError(f"model has no action named {name!r}") from None

    def replace_action(self, action: Action) -> Action:
        """Swap in a new implementation of an existing action (keeps the name)."""
        if action.name not in self._actions:
            raise ModelCheckingError(
                f"cannot replace unknown action {action.name!r}; add it instead"
            )
        previous = self._actions[action.name]
        self._actions[action.name] = action
        return previous

    def swap_tagged_actions(self, tag: str, replacements: Sequence[Action]) -> List[Action]:
        """Remove every action carrying ``tag`` and add ``replacements``.

        This is the operation Section 4.3 describes: "swap out the real
        communication actions, replace those with models of the
        communication actions".
        """
        removed = [action for action in self._actions.values() if tag in action.tags]
        for action in removed:
            del self._actions[action.name]
        for action in replacements:
            self.add_action(action)
        return removed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def actions(self) -> List[Action]:
        """All actions, sorted by name for deterministic iteration."""
        return [self._actions[name] for name in sorted(self._actions)]

    def action(self, name: str) -> Action:
        try:
            return self._actions[name]
        except KeyError:
            raise ModelCheckingError(f"model has no action named {name!r}") from None

    def action_names(self) -> List[str]:
        return sorted(self._actions)

    def enabled_actions(self, state: Any) -> List[Action]:
        """Actions whose guards hold in ``state`` (deterministic order)."""
        return [action for action in self.actions if action.enabled(state)]

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def add_invariant(self, invariant: InvariantSpec) -> None:
        self.invariants.append(invariant)

    def violated_invariants(self, state: Any) -> List[InvariantSpec]:
        """All invariants that fail in ``state``."""
        return [invariant for invariant in self.invariants if not invariant.holds(state)]

    # ------------------------------------------------------------------
    # fingerprinting
    # ------------------------------------------------------------------
    def fingerprint(self, state: Any) -> str:
        """State fingerprint used for visited-set deduplication."""
        if self._fingerprint_fn is not None:
            return self._fingerprint_fn(state)
        fingerprint_method = getattr(state, "fingerprint", None)
        if callable(fingerprint_method):
            return fingerprint_method()
        from repro.investigator.state import fingerprint as generic_fingerprint

        return generic_fingerprint(state)
