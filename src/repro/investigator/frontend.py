"""ModelD's front-end: a declarative model-building DSL.

The paper's ModelD pairs its back-end engine with "a front-end syntax
extension to the Ocaml grammar (written using Camlp4) that is used to
provide a convenient interface for the user to interact with the back-end
engine".  Python has no Camlp4, but decorators and a fluent builder give
the same ergonomics: the user declares variables, guarded actions and
invariants, and :meth:`ModelBuilder.build` produces the
:class:`~repro.investigator.guarded.GuardedModel` the engine runs.

Example
-------
.. code-block:: python

    builder = ModelBuilder("ticket-lock")
    builder.variable("next_ticket", 0)
    builder.variable("serving", 0)

    @builder.action("take-ticket")
    def take(state):
        return state.with_values(next_ticket=state["next_ticket"] + 1)

    @builder.action("serve", guard=lambda s: s["serving"] < s["next_ticket"])
    def serve(state):
        return state.with_values(serving=state["serving"] + 1)

    builder.invariant("serving-behind", lambda s: s["serving"] <= s["next_ticket"])
    model = builder.build()
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ModelCheckingError
from repro.investigator.guarded import Action, GuardedModel
from repro.investigator.invariants import InvariantSpec
from repro.investigator.state import ModelState


class ModelBuilder:
    """Fluent builder for guarded-command models over :class:`ModelState`."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: Dict[str, Any] = {}
        self._actions: List[Action] = []
        self._invariants: List[InvariantSpec] = []
        self._terminal: Optional[Callable[[Any], bool]] = None

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def variable(self, name: str, initial: Any) -> "ModelBuilder":
        """Declare a state variable and its initial value."""
        if name in self._variables:
            raise ModelCheckingError(f"variable {name!r} declared twice")
        self._variables[name] = initial
        return self

    def variables(self, **initial_values: Any) -> "ModelBuilder":
        """Declare several variables at once."""
        for name, value in initial_values.items():
            self.variable(name, value)
        return self

    def action(
        self,
        name: str,
        guard: Optional[Callable[[Any], bool]] = None,
        priority: float = 0.0,
        tags: Optional[set] = None,
    ) -> Callable:
        """Decorator registering the decorated function as an action effect."""

        def decorate(effect: Callable[[Any], Any]) -> Callable[[Any], Any]:
            self.add_action(name, effect, guard=guard, priority=priority, tags=tags)
            return effect

        return decorate

    def add_action(
        self,
        name: str,
        effect: Callable[[Any], Any],
        guard: Optional[Callable[[Any], bool]] = None,
        priority: float = 0.0,
        tags: Optional[set] = None,
    ) -> "ModelBuilder":
        """Non-decorator form of :meth:`action`."""
        if any(action.name == name for action in self._actions):
            raise ModelCheckingError(f"action {name!r} declared twice")
        self._actions.append(
            Action(
                name=name,
                effect=effect,
                guard=guard,
                priority=priority,
                tags=frozenset(tags or ()),
            )
        )
        return self

    def invariant(
        self, name: str, predicate: Callable[[Any], bool], description: str = ""
    ) -> "ModelBuilder":
        """Declare a safety property that must hold in every reachable state."""
        self._invariants.append(InvariantSpec(name, predicate, description))
        return self

    def terminal(self, predicate: Callable[[Any], bool]) -> "ModelBuilder":
        """Declare which states count as legitimate end states (not deadlocks)."""
        self._terminal = predicate
        return self

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def initial_state(self) -> ModelState:
        return ModelState.from_dict(self._variables)

    def build(self) -> GuardedModel:
        """Produce the guarded-command model for the back-end engine."""
        if not self._actions:
            raise ModelCheckingError(f"model {self.name!r} has no actions")
        return GuardedModel(
            initial_state=self.initial_state(),
            actions=self._actions,
            invariants=self._invariants,
        )

    @property
    def terminal_predicate(self) -> Optional[Callable[[Any], bool]]:
        return self._terminal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelBuilder(name={self.name!r}, variables={len(self._variables)}, "
            f"actions={len(self._actions)}, invariants={len(self._invariants)})"
        )
