"""Invariant specifications checked by the model checking engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class InvariantSpec:
    """A named safety property: ``predicate(state)`` must hold in every reachable state."""

    name: str
    predicate: Callable[[Any], bool]
    description: str = ""

    def holds(self, state: Any) -> bool:
        """Evaluate the predicate; a predicate that raises counts as a violation."""
        try:
            return bool(self.predicate(state))
        except Exception:
            return False


def always(name: str, predicate: Callable[[Any], bool], description: str = "") -> InvariantSpec:
    """Convenience constructor mirroring temporal-logic reading: ``always P``."""
    return InvariantSpec(name=name, predicate=predicate, description=description)


def never(name: str, predicate: Callable[[Any], bool], description: str = "") -> InvariantSpec:
    """``never P`` — the invariant holds when ``predicate`` is false."""
    return InvariantSpec(
        name=name,
        predicate=lambda state: not predicate(state),
        description=description or f"negation of {name}",
    )


def state_variable_bounded(
    name: str, variable: str, low: Optional[float] = None, high: Optional[float] = None
) -> InvariantSpec:
    """The named state variable stays within ``[low, high]`` (either bound optional)."""

    def predicate(state: Any) -> bool:
        getter = getattr(state, "get", None)
        value = getter(variable) if callable(getter) else getattr(state, variable, None)
        if value is None:
            return True
        if low is not None and value < low:
            return False
        if high is not None and value > high:
            return False
        return True

    return InvariantSpec(name=name, predicate=predicate, description=f"{low} <= {variable} <= {high}")


#: Sentinel invariant name used by the explorer when it reports deadlocks.
DEADLOCK_INVARIANT = "no-deadlock"


def deadlock_free() -> InvariantSpec:
    """A marker invariant: deadlock checking is performed by the explorer itself.

    The explorer treats states with no enabled actions that are not
    accepted terminal states as violations of this invariant, mirroring
    CMC's built-in deadlock reporting.
    """
    return InvariantSpec(
        name=DEADLOCK_INVARIANT,
        predicate=lambda state: True,
        description="the system can always make progress (checked structurally by the explorer)",
    )
