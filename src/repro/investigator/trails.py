"""Trails: counterexample execution paths returned by the Investigator.

Section 3.3: the Investigator "returns a set of trails that lead to
invariant violations".  A :class:`Trail` is an ordered list of
:class:`TrailStep` — the action taken and a compact description of the
state it produced — ending in the state where an invariant failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass(frozen=True)
class TrailStep:
    """One transition along a trail."""

    action: str
    state_fingerprint: str
    state_summary: str
    depth: int

    def describe(self) -> str:
        return f"{self.depth:>3}. {self.action}  ->  {self.state_summary}"


@dataclass
class Trail:
    """A path from the initial state to a violating state."""

    violated_invariant: str
    steps: List[TrailStep] = field(default_factory=list)
    final_state: Optional[Any] = None
    detail: str = ""

    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def actions(self) -> List[str]:
        return [step.action for step in self.steps]

    def describe(self, max_steps: Optional[int] = None) -> str:
        """Multi-line human-readable rendering (used in bug reports)."""
        lines = [f"Trail to violation of {self.violated_invariant!r} ({self.length} steps)"]
        if self.detail:
            lines.append(f"  detail: {self.detail}")
        shown = self.steps if max_steps is None else self.steps[-max_steps:]
        omitted = self.length - len(shown)
        if omitted > 0:
            lines.append(f"  ... {omitted} earlier steps omitted ...")
        lines.extend("  " + step.describe() for step in shown)
        return "\n".join(lines)

    def shares_prefix_with(self, other: "Trail") -> int:
        """Length of the common action prefix with another trail."""
        common = 0
        for mine, theirs in zip(self.actions, other.actions):
            if mine != theirs:
                break
            common += 1
        return common


def deduplicate_trails(trails: List[Trail]) -> List[Trail]:
    """Drop trails that end in the same violating state via the same invariant.

    Exhaustive exploration frequently reaches the same bad state along
    many interleavings; reports are easier to read when each (invariant,
    final state) pair appears once, represented by its shortest trail.
    """
    best: dict = {}
    for trail in trails:
        final_fp = trail.steps[-1].state_fingerprint if trail.steps else ""
        key = (trail.violated_invariant, final_fp)
        current = best.get(key)
        if current is None or trail.length < current.length:
            best[key] = trail
    return sorted(best.values(), key=lambda t: (t.violated_invariant, t.length))
