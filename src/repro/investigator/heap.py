"""A simulated heap for CMC-style generic property checking.

CMC "automatically checks for certain generic properties such as memory
leaks and invalid memory accesses".  Python programs do not expose raw
memory, so the CMC-style checker in this reproduction checks those
properties against an explicit, simulated allocation arena: model actions
allocate, access and free blocks through :class:`SimulatedHeap`, and the
checker turns dangling accesses, double frees and unfreed blocks at
termination into violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ModelCheckingError


@dataclass(frozen=True)
class HeapBlock:
    """One allocated block."""

    block_id: int
    size: int
    tag: str = ""
    freed: bool = False


@dataclass(frozen=True)
class HeapError:
    """A memory error detected by the heap."""

    kind: str          # "invalid-access", "double-free", "leak", "invalid-free"
    block_id: Optional[int]
    detail: str


@dataclass(frozen=True)
class SimulatedHeap:
    """An immutable heap value suitable for inclusion in model states.

    Every operation returns a new heap (states must not be mutated in
    place), and records errors instead of raising so the checker can
    report them as invariant violations with trails.
    """

    blocks: Tuple[Tuple[int, HeapBlock], ...] = ()
    next_id: int = 1
    errors: Tuple[HeapError, ...] = ()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def malloc(self, size: int, tag: str = "") -> Tuple["SimulatedHeap", int]:
        """Allocate a block; returns the new heap and the block id."""
        if size <= 0:
            raise ModelCheckingError("allocation size must be positive")
        block = HeapBlock(block_id=self.next_id, size=size, tag=tag)
        new_blocks = self.blocks + ((block.block_id, block),)
        return replace(self, blocks=new_blocks, next_id=self.next_id + 1), block.block_id

    def free(self, block_id: int) -> "SimulatedHeap":
        """Free a block, recording double frees and frees of unknown blocks."""
        mapping = dict(self.blocks)
        block = mapping.get(block_id)
        if block is None:
            return self._with_error("invalid-free", block_id, f"free of unknown block {block_id}")
        if block.freed:
            return self._with_error("double-free", block_id, f"block {block_id} freed twice")
        mapping[block_id] = replace(block, freed=True)
        return replace(self, blocks=tuple(sorted(mapping.items())))

    def access(self, block_id: int) -> "SimulatedHeap":
        """Access a block, recording use-after-free and wild accesses."""
        mapping = dict(self.blocks)
        block = mapping.get(block_id)
        if block is None:
            return self._with_error(
                "invalid-access", block_id, f"access to unallocated block {block_id}"
            )
        if block.freed:
            return self._with_error(
                "invalid-access", block_id, f"use-after-free of block {block_id}"
            )
        return self

    def _with_error(self, kind: str, block_id: Optional[int], detail: str) -> "SimulatedHeap":
        return replace(self, errors=self.errors + (HeapError(kind, block_id, detail),))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def live_blocks(self) -> List[HeapBlock]:
        return [block for _, block in self.blocks if not block.freed]

    @property
    def allocated_bytes(self) -> int:
        return sum(block.size for block in self.live_blocks)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def leaks(self) -> List[HeapError]:
        """Leak records for every block still live (evaluated at terminal states)."""
        return [
            HeapError("leak", block.block_id, f"block {block.block_id} ({block.tag or 'untagged'}, "
                      f"{block.size} bytes) never freed")
            for block in self.live_blocks
        ]

    def describe(self) -> str:
        return (
            f"heap(live={len(self.live_blocks)}, bytes={self.allocated_bytes}, "
            f"errors={len(self.errors)})"
        )
