"""ModelD: the model checker contributed by the paper (front-end + back-end).

:class:`ModelD` ties the front-end :class:`~repro.investigator.frontend.ModelBuilder`
to the back-end :class:`~repro.investigator.explorer.Explorer`, and adds
the two operations the paper highlights as unusual:

* **dynamic action injection** — replacing or adding actions while the
  engine is in use (:meth:`ModelD.inject_action`,
  :meth:`ModelD.swap_communication_actions`), which is how the
  Investigator substitutes models of remote components and how the
  Healer injects updated code; and
* **custom search order** — :meth:`ModelD.run_single_path` follows the
  conventional execution, :meth:`ModelD.check` explores exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.investigator.explorer import ExplorationResult, Explorer, SearchOrder
from repro.investigator.frontend import ModelBuilder
from repro.investigator.guarded import Action, GuardedModel
from repro.investigator.invariants import InvariantSpec


@dataclass
class ModelDConfig:
    """Engine limits and defaults."""

    max_states: int = 100_000
    max_depth: int = 10_000
    stop_at_first_violation: bool = False
    check_deadlocks: bool = True
    build_reachability_graph: bool = False


class ModelD:
    """The ModelD model checker."""

    def __init__(
        self,
        model: GuardedModel,
        config: Optional[ModelDConfig] = None,
        terminal_predicate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.model = model
        self.config = config or ModelDConfig()
        self.terminal_predicate = terminal_predicate

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_builder(builder: ModelBuilder, config: Optional[ModelDConfig] = None) -> "ModelD":
        """Build a checker straight from a front-end builder."""
        return ModelD(builder.build(), config=config, terminal_predicate=builder.terminal_predicate)

    # ------------------------------------------------------------------
    # dynamic action management
    # ------------------------------------------------------------------
    def inject_action(self, action: Action) -> None:
        """Add or replace an action in the running model (dynamic code injection)."""
        self.model.add_action(action)

    def remove_action(self, name: str) -> Action:
        return self.model.remove_action(name)

    def swap_communication_actions(self, replacements: Sequence[Action]) -> List[Action]:
        """Swap every action tagged ``communication`` for the provided model actions.

        This is the Section 4.3 move: when investigating, the real
        communication actions are replaced with models of the remote
        processes' behaviour.
        """
        return self.model.swap_tagged_actions("communication", list(replacements))

    def add_invariant(self, invariant: InvariantSpec) -> None:
        self.model.add_invariant(invariant)

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def _explorer(self, order: SearchOrder, **overrides: Any) -> Explorer:
        options = dict(
            search_order=order,
            max_states=self.config.max_states,
            max_depth=self.config.max_depth,
            stop_at_first_violation=self.config.stop_at_first_violation,
            check_deadlocks=self.config.check_deadlocks,
            build_graph=self.config.build_reachability_graph,
            terminal_predicate=self.terminal_predicate,
        )
        options.update(overrides)
        return Explorer(self.model, **options)

    def check(
        self, order: SearchOrder = SearchOrder.BFS, **overrides: Any
    ) -> ExplorationResult:
        """Exhaustively explore the state space under the given search order."""
        return self._explorer(order, **overrides).explore()

    def run_single_path(
        self,
        schedule: Optional[Callable[[Any, List[Action]], Action]] = None,
        **overrides: Any,
    ) -> ExplorationResult:
        """Execute one path only (the conventional run), optionally scheduled."""
        return self._explorer(SearchOrder.SINGLE_PATH, schedule=schedule, **overrides).explore()

    def heuristic_check(
        self, heuristic: Callable[[Any], float], **overrides: Any
    ) -> ExplorationResult:
        """Explore best-first under a user-provided state scoring function."""
        return self._explorer(SearchOrder.HEURISTIC, heuristic=heuristic, **overrides).explore()

    def random_walks(self, seed: int = 0, **overrides: Any) -> ExplorationResult:
        """Random-walk exploration (bug-finding baseline)."""
        return self._explorer(SearchOrder.RANDOM, random_seed=seed, **overrides).explore()
