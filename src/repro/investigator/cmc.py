"""A CMC-style checker: implementation-level checking with generic properties.

CMC (Musuvathi et al., OSDI 2002) model checks real C code and, beyond
user-written invariants, automatically checks *generic* properties:
memory leaks, invalid memory accesses, and deadlock.  The paper proposes
CMC as an alternative back-end for the Investigator.

:class:`CMCChecker` wraps the same guarded-command engine as ModelD but
adds the generic checks.  Memory properties are evaluated against a
:class:`~repro.investigator.heap.SimulatedHeap` stored in the model state
under a configurable key; deadlock detection comes from the explorer.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, List, Optional

from repro.investigator.explorer import ExplorationResult, Explorer, SearchOrder
from repro.investigator.guarded import GuardedModel
from repro.investigator.heap import SimulatedHeap
from repro.investigator.invariants import InvariantSpec


class GenericProperty(Enum):
    """The generic properties CMC checks without user input."""

    NO_DEADLOCK = "no-deadlock"
    NO_MEMORY_ERRORS = "no-memory-errors"
    NO_LEAKS_AT_TERMINATION = "no-leaks-at-termination"


@dataclass
class CMCConfig:
    """Checker limits and which generic properties to enable."""

    max_states: int = 100_000
    max_depth: int = 10_000
    heap_key: str = "heap"
    check_deadlocks: bool = True
    check_memory_errors: bool = True
    check_leaks: bool = True
    stop_at_first_violation: bool = False


def _heap_of(state: Any, key: str) -> Optional[SimulatedHeap]:
    getter = getattr(state, "get", None)
    value = getter(key) if callable(getter) else getattr(state, key, None)
    return value if isinstance(value, SimulatedHeap) else None


class CMCChecker:
    """Checks user invariants plus CMC's generic properties on a guarded model."""

    def __init__(
        self,
        model: GuardedModel,
        config: Optional[CMCConfig] = None,
        terminal_predicate: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.model = model
        self.config = config or CMCConfig()
        self.terminal_predicate = terminal_predicate
        self._install_generic_invariants()

    # ------------------------------------------------------------------
    # generic properties as invariants
    # ------------------------------------------------------------------
    def _install_generic_invariants(self) -> None:
        key = self.config.heap_key
        if self.config.check_memory_errors:
            self.model.add_invariant(
                InvariantSpec(
                    GenericProperty.NO_MEMORY_ERRORS.value,
                    lambda state: not (_heap_of(state, key) or SimulatedHeap()).has_errors,
                    "no invalid accesses, double frees or invalid frees",
                )
            )
        if self.config.check_leaks and self.terminal_predicate is not None:
            terminal = self.terminal_predicate

            def no_leaks(state: Any) -> bool:
                if not terminal(state):
                    return True
                heap = _heap_of(state, key)
                return heap is None or not heap.leaks()

            self.model.add_invariant(
                InvariantSpec(
                    GenericProperty.NO_LEAKS_AT_TERMINATION.value,
                    no_leaks,
                    "every allocated block is freed by the time the system terminates",
                )
            )

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------
    def check(self, order: SearchOrder = SearchOrder.BFS) -> ExplorationResult:
        """Explore the state space, reporting user and generic property violations."""
        explorer = Explorer(
            self.model,
            search_order=order,
            max_states=self.config.max_states,
            max_depth=self.config.max_depth,
            stop_at_first_violation=self.config.stop_at_first_violation,
            check_deadlocks=self.config.check_deadlocks,
            terminal_predicate=self.terminal_predicate,
        )
        return explorer.explore()

    def found_property_violations(self, result: ExplorationResult) -> List[str]:
        """Names of the generic properties violated in an exploration result."""
        names = {trail.violated_invariant for trail in result.all_trails}
        return sorted(
            name
            for name in names
            if name in {prop.value for prop in GenericProperty}
        )
