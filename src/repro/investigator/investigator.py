"""The Investigator facade used by FixD's fault-response protocol.

Given (a) a globally consistent checkpoint assembled from the peers'
replies, (b) a model per process — by default the implementation itself,
optionally an :class:`~repro.investigator.models.EnvironmentModel` for
components outside FixD's control — and (c) the invariants to check, the
Investigator explores the executions possible from that state and returns
the trails that lead to invariant violations (Section 3.3).
"""

from __future__ import annotations

import time as wall_time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.dsim.message import Message
from repro.dsim.process import Process
from repro.investigator.explorer import ExplorationResult, Explorer, SearchOrder
from repro.investigator.models import DistributedSystemModel, SystemState
from repro.investigator.trails import Trail
from repro.timemachine.checkpoint import GlobalCheckpoint

ProcessFactory = Callable[[], Process]


@dataclass
class InvestigatorConfig:
    """Exploration limits and defaults for investigations."""

    search_order: SearchOrder = SearchOrder.BFS
    max_states: int = 20_000
    max_depth: int = 200
    stop_at_first_violation: bool = False
    check_deadlocks: bool = False
    seed: int = 0


@dataclass
class InvestigationReport:
    """What an investigation found."""

    trails: List[Trail]
    states_explored: int
    transitions: int
    truncated: bool
    elapsed_seconds: float
    search_order: SearchOrder
    deadlocks: List[Trail] = field(default_factory=list)

    @property
    def found_violation(self) -> bool:
        return bool(self.trails) or bool(self.deadlocks)

    @property
    def violated_invariants(self) -> List[str]:
        return sorted({trail.violated_invariant for trail in self.trails + self.deadlocks})

    def shortest_trail(self) -> Optional[Trail]:
        candidates = self.trails + self.deadlocks
        if not candidates:
            return None
        return min(candidates, key=lambda trail: trail.length)

    def summary(self) -> str:
        """A few human-readable lines describing the outcome."""
        lines = [
            f"Investigation ({self.search_order.value}): "
            f"{self.states_explored} states, {self.transitions} transitions"
            + (", truncated" if self.truncated else ""),
        ]
        if not self.found_violation:
            lines.append("No invariant violations were reachable from the restored state.")
            return "\n".join(lines)
        lines.append(
            f"{len(self.trails)} violating trail(s) across invariants: "
            + ", ".join(self.violated_invariants)
        )
        shortest = self.shortest_trail()
        if shortest is not None:
            lines.append(shortest.describe(max_steps=10))
        return "\n".join(lines)


class Investigator:
    """Explores executions of real process implementations from a global state."""

    def __init__(self, config: Optional[InvestigatorConfig] = None) -> None:
        self.config = config or InvestigatorConfig()

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def investigate(
        self,
        factories: Dict[str, ProcessFactory],
        checkpoint: Optional[GlobalCheckpoint] = None,
        in_flight: Optional[Sequence[Message]] = None,
        global_invariants: Optional[Dict[str, Callable[[Dict[str, Dict[str, Any]]], bool]]] = None,
        search_order: Optional[SearchOrder] = None,
    ) -> InvestigationReport:
        """Explore from ``checkpoint`` (or the initial states) and report violating trails.

        Parameters
        ----------
        factories:
            One factory per process id — the peers' "models", which may be
            the real implementations or :class:`EnvironmentModel` stand-ins.
        checkpoint:
            The globally consistent checkpoint to start from; omitted means
            start from the processes' initial states.
        in_flight:
            Messages that were in transit at the checkpoint (channel state).
        global_invariants:
            Named predicates over ``{pid: state_dict}`` checked in every
            explored state, in addition to the processes' own invariants.
        """
        adapter = DistributedSystemModel(
            factories,
            seed=self.config.seed,
            global_invariants=global_invariants,
        )
        initial: SystemState
        if checkpoint is not None:
            initial = adapter.state_from_checkpoint(checkpoint, in_flight)
        else:
            initial = adapter.initial_state()
        model = adapter.build_model(initial)

        order = search_order or self.config.search_order
        explorer = Explorer(
            model,
            search_order=order,
            max_states=self.config.max_states,
            max_depth=self.config.max_depth,
            stop_at_first_violation=self.config.stop_at_first_violation,
            check_deadlocks=self.config.check_deadlocks,
            terminal_predicate=DistributedSystemModel.terminal_predicate,
        )
        started = wall_time.perf_counter()
        result = explorer.explore()
        elapsed = wall_time.perf_counter() - started
        return self._report(result, elapsed, order)

    def replay_single_path(
        self,
        factories: Dict[str, ProcessFactory],
        checkpoint: Optional[GlobalCheckpoint] = None,
        in_flight: Optional[Sequence[Message]] = None,
    ) -> InvestigationReport:
        """Follow one conventional execution path only (no branching exploration)."""
        return self.investigate(
            factories,
            checkpoint=checkpoint,
            in_flight=in_flight,
            search_order=SearchOrder.SINGLE_PATH,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _report(
        self, result: ExplorationResult, elapsed: float, order: SearchOrder
    ) -> InvestigationReport:
        return InvestigationReport(
            trails=list(result.violations),
            deadlocks=list(result.deadlocks),
            states_explored=result.states_explored,
            transitions=result.transitions,
            truncated=result.truncated,
            elapsed_seconds=elapsed,
            search_order=order,
        )
