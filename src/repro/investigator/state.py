"""Model states and state fingerprinting.

The model checking engine works on opaque *states*; all it needs is

* a stable fingerprint so visited states can be deduplicated, and
* a way to carry arbitrary application data.

:class:`ModelState` is a thin immutable wrapper around a dictionary of
variables.  :func:`fingerprint` produces a stable digest of any
picklable value, normalising dictionaries and sets so logically equal
states hash identically regardless of construction order.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Tuple


def _normalise(value: Any) -> Any:
    """Recursively convert a value into a canonical, hashable-ish structure."""
    if isinstance(value, Mapping):
        return tuple(sorted((key, _normalise(sub)) for key, sub in value.items()))
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_normalise(item) for item in value), key=repr))
    if isinstance(value, (list, tuple)):
        return tuple(_normalise(item) for item in value)
    return value


def fingerprint(value: Any) -> str:
    """Stable SHA-1 digest of any picklable value with canonical ordering."""
    canonical = _normalise(value)
    try:
        blob = pickle.dumps(canonical, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        blob = repr(canonical).encode("utf-8")
    return hashlib.sha1(blob).hexdigest()


@dataclass(frozen=True)
class ModelState:
    """An immutable assignment of values to model variables."""

    variables: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def from_dict(values: Mapping[str, Any]) -> "ModelState":
        return ModelState(tuple(sorted((key, _normalise(value)) for key, value in values.items())))

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.variables)

    def get(self, name: str, default: Any = None) -> Any:
        for key, value in self.variables:
            if key == name:
                return value
        return default

    def __getitem__(self, name: str) -> Any:
        for key, value in self.variables:
            if key == name:
                return value
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(key == name for key, _ in self.variables)

    def __iter__(self) -> Iterator[str]:
        return (key for key, _ in self.variables)

    def with_values(self, **updates: Any) -> "ModelState":
        """Return a new state with the given variables replaced/added."""
        merged = self.as_dict()
        merged.update(updates)
        return ModelState.from_dict(merged)

    def fingerprint(self) -> str:
        return fingerprint(self.variables)

    def describe(self) -> str:
        """Compact one-line rendering used in trails."""
        inner = ", ".join(f"{key}={value!r}" for key, value in self.variables)
        return "{" + inner + "}"
