"""General-purpose environment models (the paper's Section 4.5 future work).

The paper's future-work list asks for "a set of general-purpose models
designed to integrate with ModelD in order to imitate the behavior of
common and well-known components of the environment of a process", naming
network communication and disk access as examples.  This module provides
those reusable models.  Each is an
:class:`~repro.investigator.models.EnvironmentModel` subclass, so it can
be dropped into an investigation (or registered on the FixD controller
via :meth:`~repro.core.fixd.FixD.register_environment_model`) wherever a
real component is outside FixD's control.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.dsim.message import Message
from repro.dsim.process import handler, invariant
from repro.investigator.models import EnvironmentModel


class EchoServiceModel(EnvironmentModel):
    """Models a remote service that acknowledges every request it receives.

    Every message of any kind is answered with an ``ACK`` carrying the
    original payload; the model keeps a count of requests served so
    global invariants can refer to it.
    """

    ack_kind: str = "ACK"

    def __init__(self) -> None:
        super().__init__(respond=self._echo)

    def on_start(self) -> None:
        self.state["requests_served"] = 0

    def _echo(self, process, message: Message) -> None:
        process.state["requests_served"] = process.state.get("requests_served", 0) + 1
        process.send(message.src, self.ack_kind, message.payload)


class DiskModel(EnvironmentModel):
    """Models a disk: ``DISK_WRITE``/``DISK_READ`` against a keyed block store.

    Reads of never-written blocks return ``None`` (the caller's bug to
    handle), and the model's invariant checks that its bookkeeping stays
    consistent — the role the paper assigns to pre-verified environment
    models shipped with FixD.
    """

    def __init__(self) -> None:
        super().__init__()

    def on_start(self) -> None:
        self.state["blocks"] = {}
        self.state["writes"] = 0
        self.state["reads"] = 0

    @handler("DISK_WRITE")
    def handle_write(self, msg: Message) -> None:
        block, data = msg.payload["block"], msg.payload["data"]
        self.state["blocks"][block] = data
        self.state["writes"] += 1
        self.send(msg.src, "DISK_WRITE_OK", {"block": block})

    @handler("DISK_READ")
    def handle_read(self, msg: Message) -> None:
        block = msg.payload["block"]
        self.state["reads"] += 1
        self.send(
            msg.src,
            "DISK_READ_REPLY",
            {"block": block, "data": self.state["blocks"].get(block)},
        )

    @invariant("write-count-matches-store")
    def write_count_matches_store(self) -> bool:
        return self.state["writes"] >= len(self.state["blocks"])


class LossyNetworkModel(EnvironmentModel):
    """Models a forwarding network element that may drop every N-th message.

    Messages of kind ``FORWARD`` with payload ``{"dst": ..., "kind": ...,
    "payload": ...}`` are relayed to their destination; every
    ``drop_every``-th forward is silently dropped, which lets the
    Investigator exercise loss scenarios without touching the channel
    configuration of the real system.
    """

    drop_every: int = 0  # 0 means never drop

    def __init__(self, drop_every: Optional[int] = None) -> None:
        super().__init__()
        if drop_every is not None:
            self.drop_every = drop_every

    def on_start(self) -> None:
        self.state["forwarded"] = 0
        self.state["dropped"] = 0

    @handler("FORWARD")
    def handle_forward(self, msg: Message) -> None:
        request: Dict[str, Any] = msg.payload
        total = self.state["forwarded"] + self.state["dropped"] + 1
        if self.drop_every and total % self.drop_every == 0:
            self.state["dropped"] += 1
            return
        self.state["forwarded"] += 1
        self.send(request["dst"], request["kind"], request.get("payload"))

    @invariant("forward-accounting")
    def forward_accounting(self) -> bool:
        return self.state["forwarded"] >= 0 and self.state["dropped"] >= 0
