"""A primary/backup replicated key-value store.

Topology
--------
One or more :class:`KVClient` processes issue ``PUT``/``GET`` requests to
the primary replica; the primary applies writes locally and forwards them
to every backup replica, acknowledging the client once applied locally
(asynchronous replication).

Invariants
----------
* per-replica: the version counter of each key never decreases
  (monotonic versions);
* global (used with the Investigator): every backup's store is a subset
  of the primary's history — a backup must never hold a value the
  primary never wrote.

Seeded bug
----------
:class:`KVReplicaStale` is the buggy variant: it applies replicated
writes but forgets to bump the version counter when overwriting an
existing key, violating the monotonic-version invariant once a key is
written twice.  The fixed class is :class:`KVReplica` itself, so a patch
is simply ``generate_patch(KVReplicaStale, KVReplica)``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.dsim.message import Message
from repro.dsim.process import Process, handler, invariant, timer_handler


class KVReplica(Process):
    """A replica of the key-value store (primary or backup).

    The primary is the replica whose pid equals the ``primary`` name
    passed through the client's requests (by convention the first
    replica, e.g. ``"replica0"``).
    """

    #: class-level knob so factories stay zero-argument
    primary_pid: str = "replica0"

    def on_start(self) -> None:
        self.state["store"] = {}
        self.state["versions"] = {}
        self.state["applied_writes"] = 0
        self.state["is_primary"] = self.pid == self.primary_pid

    # ------------------------------------------------------------------
    # client-facing operations
    # ------------------------------------------------------------------
    @handler("PUT")
    def handle_put(self, msg: Message) -> None:
        key, value = msg.payload["key"], msg.payload["value"]
        self._apply_write(key, value)
        if self.state["is_primary"]:
            for peer in self.peers:
                if peer.startswith("replica"):
                    self.send(peer, "REPLICATE", {"key": key, "value": value})
        self.send(msg.src, "PUT_ACK", {"key": key, "version": self.state["versions"][key]})

    @handler("GET")
    def handle_get(self, msg: Message) -> None:
        key = msg.payload["key"]
        self.send(
            msg.src,
            "GET_REPLY",
            {
                "key": key,
                "value": self.state["store"].get(key),
                "version": self.state["versions"].get(key, 0),
            },
        )

    # ------------------------------------------------------------------
    # replication
    # ------------------------------------------------------------------
    @handler("REPLICATE")
    def handle_replicate(self, msg: Message) -> None:
        self._apply_write(msg.payload["key"], msg.payload["value"])

    def _apply_write(self, key: str, value: Any) -> None:
        self.state["store"][key] = value
        self.state["versions"][key] = self.state["versions"].get(key, 0) + 1
        self.state["applied_writes"] += 1

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant("versions-track-store")
    def versions_track_store(self) -> bool:
        """Every stored key has a positive version and vice versa."""
        store, versions = self.state["store"], self.state["versions"]
        return set(store) == {key for key, version in versions.items() if version > 0} and all(
            version >= 1 for version in versions.values()
        ) or (not store and not versions)

    @invariant("write-count-consistent")
    def write_count_consistent(self) -> bool:
        """The number of applied writes is at least the sum... of versions."""
        return self.state["applied_writes"] >= 0


class KVReplicaStale(KVReplica):
    """Buggy replica: re-writing an existing key does not bump its version.

    The bug only bites on overwrites, so short workloads look healthy —
    exactly the kind of latent fault FixD is meant to catch and explain.
    """

    def _apply_write(self, key: str, value: Any) -> None:
        self.state["store"][key] = value
        if key not in self.state["versions"]:
            self.state["versions"][key] = 1
        # BUG: overwrite path forgets to increment the version counter.
        self.state["applied_writes"] += 1

    @invariant("overwrite-bumps-version")
    def overwrite_bumps_version(self) -> bool:
        """Versions must keep up with the number of writes once keys repeat."""
        writes = self.state["applied_writes"]
        total_versions = sum(self.state["versions"].values())
        # After W writes over K keys the versions must sum to W (every write bumps).
        return total_versions == writes


class KVClient(Process):
    """A closed-loop client issuing a scripted or generated workload.

    The workload is configured through class attributes so instances stay
    picklable factories:

    * ``operations`` — explicit list of ``("put"|"get", key, value)``;
    * ``generated_ops`` — when ``operations`` is empty, how many random
      operations to generate over ``key_space`` keys.
    """

    target_replica: str = "replica0"
    operations: List = []
    generated_ops: int = 20
    key_space: int = 4

    def on_start(self) -> None:
        self.state["pending"] = list(self.operations) or self._generate()
        self.state["acks"] = 0
        self.state["replies"] = 0
        self.state["observed_versions"] = {}
        self.set_timer("issue", 1.0)

    def _generate(self) -> List:
        ops = []
        for index in range(self.generated_ops):
            key = f"k{self.randint(0, self.key_space - 1)}"
            if self.random() < 0.6:
                ops.append(("put", key, index))
            else:
                ops.append(("get", key, None))
        return ops

    @timer_handler("issue")
    def issue_next(self, payload: Any) -> None:
        if not self.state["pending"]:
            return
        op, key, value = self.state["pending"].pop(0)
        if op == "put":
            self.send(self.target_replica, "PUT", {"key": key, "value": value})
        else:
            self.send(self.target_replica, "GET", {"key": key})
        if self.state["pending"]:
            self.set_timer("issue", 1.0)

    @handler("PUT_ACK")
    def handle_ack(self, msg: Message) -> None:
        self.state["acks"] += 1
        self._observe(msg.payload["key"], msg.payload["version"])

    @handler("GET_REPLY")
    def handle_reply(self, msg: Message) -> None:
        self.state["replies"] += 1
        self._observe(msg.payload["key"], msg.payload["version"])

    def _observe(self, key: str, version: int) -> None:
        self.state["observed_versions"][key] = max(
            self.state["observed_versions"].get(key, 0), version
        )

    @invariant("versions-never-regress")
    def versions_never_regress(self) -> bool:
        """Client-observed versions are monotonically non-decreasing by construction."""
        return all(version >= 0 for version in self.state["observed_versions"].values())


class KVRewritingClient(KVClient):
    """A client whose scripted workload overwrites keys it already wrote.

    Overwrites are what expose :class:`KVReplicaStale`'s stale-version
    bug, so this is the canonical "provoke the latent replication bug"
    workload shared by the fault-investigation example and the
    benchmarks.
    """

    operations = [
        ("put", "alpha", 1),
        ("put", "beta", 2),
        ("put", "alpha", 3),
        ("get", "alpha", None),
        ("put", "beta", 4),
        ("get", "beta", None),
    ]


def replica_consistency_invariant(states: Dict[str, Dict[str, Any]]) -> bool:
    """Global invariant: every backup's store is a subset of the primary's store.

    Intended for the Investigator's ``global_invariants`` argument: with
    asynchronous replication the backups may *lag* the primary, but they
    must never hold a key/value pair the primary does not have.
    """
    primary_state = None
    for pid, state in states.items():
        if state.get("is_primary"):
            primary_state = state
            break
    if primary_state is None:
        return True
    primary_store = primary_state.get("store", {})
    for pid, state in states.items():
        if state.get("is_primary") or "store" not in state:
            continue
        for key, value in state["store"].items():
            if key not in primary_store:
                return False
    return True


def build_kvstore_cluster(
    cluster,
    replicas: int = 3,
    clients: int = 1,
    stale_backups: bool = False,
    rewriting_clients: bool = False,
) -> None:
    """Internal wiring behind the ``"kvstore"`` registry entry.

    ``stale_backups`` runs every non-primary replica as the buggy
    :class:`KVReplicaStale`; ``rewriting_clients`` issues the
    overwrite-heavy :class:`KVRewritingClient` workload that exposes it.
    Prefer ``repro.api.apps.build(cluster, "kvstore", ...)`` outside
    ``src/repro/``.
    """
    client_class = KVRewritingClient if rewriting_clients else KVClient
    for index in range(replicas):
        replica_class = KVReplicaStale if stale_backups and index > 0 else KVReplica
        cluster.add_process(f"replica{index}", replica_class)
    for index in range(clients):
        cluster.add_process(f"client{index}", client_class)
