"""A distributed bank: branches transferring money between accounts.

Each :class:`BankBranch` holds a set of local accounts.  Branches issue
transfers to each other; a transfer debits the sender's account when the
request is issued and credits the receiver's account when the message is
applied.  Because money is "in flight" between debit and credit, the
per-branch invariant only checks non-negativity; the interesting property
is the global one: **total balance plus money in flight is conserved**.

Seeded bug
----------
:class:`BankBranch` (the default, deliberately buggy version used in the
healing example) applies a *fee* on the receiving side — it credits less
than was debited — so the global conservation invariant eventually fails.
:class:`BankBranchFixed` credits the full amount; the patch between them
is the Figure 5 "user fix".
"""

from __future__ import annotations

from typing import Any, Dict

from repro.dsim.message import Message
from repro.dsim.process import Process, handler, invariant, timer_handler

#: Initial balance per account; used by the conservation invariant.
INITIAL_BALANCE = 100


class BankBranch(Process):
    """A bank branch (this version silently loses money on incoming transfers)."""

    accounts_per_branch: int = 2
    transfers_to_issue: int = 4
    transfer_amount: int = 10
    #: the bug: incoming transfers are credited minus this "fee"
    incoming_fee: int = 1

    def on_start(self) -> None:
        self.state["accounts"] = {
            f"{self.pid}-acct{index}": INITIAL_BALANCE for index in range(self.accounts_per_branch)
        }
        self.state["issued"] = 0
        self.state["applied"] = 0
        self.state["in_flight_debits"] = 0
        # Stagger branches deterministically (hash() is salted per interpreter run,
        # so derive the offset from the pid's characters instead).
        offset = sum(ord(ch) for ch in self.pid) % 3
        self.set_timer("transfer", 1.0 + offset * 0.1)

    # ------------------------------------------------------------------
    # issuing transfers
    # ------------------------------------------------------------------
    @timer_handler("transfer")
    def issue_transfer(self, payload: Any) -> None:
        if self.state["issued"] >= self.transfers_to_issue or not self.peers:
            return
        target_branch = self.choice(sorted(self.peers))
        source_account = self.choice(sorted(self.state["accounts"]))
        amount = min(self.transfer_amount, self.state["accounts"][source_account])
        if amount > 0:
            self.state["accounts"][source_account] -= amount
            self.state["in_flight_debits"] += amount
            self.send(target_branch, "TRANSFER", {"amount": amount, "from": source_account})
        self.state["issued"] += 1
        if self.state["issued"] < self.transfers_to_issue:
            self.set_timer("transfer", 2.0)

    # ------------------------------------------------------------------
    # applying transfers
    # ------------------------------------------------------------------
    def credit_amount(self, amount: int) -> int:
        """How much to credit for an incoming transfer of ``amount``.

        The buggy version deducts a fee that is never accounted anywhere,
        so money simply disappears from the system.
        """
        return amount - self.incoming_fee

    @handler("TRANSFER")
    def handle_transfer(self, msg: Message) -> None:
        amount = msg.payload["amount"]
        target_account = self.choice(sorted(self.state["accounts"]))
        self.state["accounts"][target_account] += self.credit_amount(amount)
        self.state["applied"] += 1
        self.send(msg.src, "TRANSFER_ACK", {"amount": amount})

    @handler("TRANSFER_ACK")
    def handle_ack(self, msg: Message) -> None:
        self.state["in_flight_debits"] -= msg.payload["amount"]

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant("non-negative-balances")
    def non_negative(self) -> bool:
        return all(balance >= 0 for balance in self.state["accounts"].values())

    @invariant("in-flight-non-negative")
    def in_flight_non_negative(self) -> bool:
        return self.state["in_flight_debits"] >= 0


class BankBranchFixed(BankBranch):
    """The corrected branch: incoming transfers are credited in full."""

    def credit_amount(self, amount: int) -> int:
        return amount


def total_balance_invariant(states: Dict[str, Dict[str, Any]]) -> bool:
    """Global invariant: account balances plus in-flight debits equal the initial total."""
    branches = [state for state in states.values() if "accounts" in state]
    if not branches:
        return True
    total = sum(sum(state["accounts"].values()) for state in branches)
    in_flight = sum(state.get("in_flight_debits", 0) for state in branches)
    expected = sum(len(state["accounts"]) * INITIAL_BALANCE for state in branches)
    return total + in_flight == expected


def total_balance(states: Dict[str, Dict[str, Any]]) -> int:
    """Current sum of all account balances (excluding in-flight money)."""
    return sum(sum(state.get("accounts", {}).values()) for state in states.values())


def build_bank_cluster(cluster, branches: int = 3, fixed: bool = False) -> None:
    """Convenience wiring for a bank of ``branches`` branches."""
    branch_class = BankBranchFixed if fixed else BankBranch
    for index in range(branches):
        cluster.add_process(f"branch{index}", branch_class)
