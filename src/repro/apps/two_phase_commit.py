"""Two-phase commit: a coordinator and N participants.

Protocol
--------
The coordinator drives a sequence of transactions.  For each transaction
it sends ``PREPARE`` to every participant; participants vote ``VOTE_YES``
or ``VOTE_NO`` (based on a per-participant acceptance predicate); the
coordinator sends ``COMMIT`` when every vote is yes and ``ABORT``
otherwise; participants apply the decision and acknowledge.

Invariants
----------
* per-participant: a participant never has a transaction both committed
  and aborted;
* global *atomicity* (:func:`atomicity_invariant`): no transaction is
  committed at one participant and aborted at another.

Seeded bug
----------
:class:`ParticipantLossy` is the buggy variant: when it votes *no* it
unilaterally marks the transaction aborted **before** hearing the
coordinator's decision.  If the other participants voted yes and a
``COMMIT`` arrives anyway (e.g. because a vote was dropped by the network
and the coordinator timed out assuming yes), atomicity breaks — the
classic presumed-commit bug.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.dsim.message import Message
from repro.dsim.process import ConfiguredFactory, Process, handler, invariant, timer_handler


class Coordinator(Process):
    """Drives ``transactions`` two-phase commits over every participant peer."""

    transactions: int = 3
    vote_timeout: float = 50.0
    assume_yes_on_timeout: bool = False

    def on_start(self) -> None:
        self.state["current_txn"] = 0
        self.state["votes"] = {}
        self.state["decisions"] = {}
        self.state["acks"] = {}
        self.state["completed"] = 0
        self.set_timer("begin", 1.0)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _participants(self) -> List[str]:
        return [pid for pid in self.peers if pid.startswith("participant")]

    def _begin_transaction(self) -> None:
        txn = self.state["current_txn"]
        if txn >= self.transactions:
            return
        self.state["votes"][txn] = {}
        self.state["acks"][txn] = 0
        for pid in self._participants():
            self.send(pid, "PREPARE", {"txn": txn})
        self.set_timer("vote-timeout", self.vote_timeout, {"txn": txn})

    @timer_handler("begin")
    def begin(self, payload: Any) -> None:
        self._begin_transaction()

    # ------------------------------------------------------------------
    # vote collection
    # ------------------------------------------------------------------
    @handler("VOTE_YES")
    def handle_yes(self, msg: Message) -> None:
        self._record_vote(msg.payload["txn"], msg.src, True)

    @handler("VOTE_NO")
    def handle_no(self, msg: Message) -> None:
        self._record_vote(msg.payload["txn"], msg.src, False)

    def _record_vote(self, txn: int, pid: str, vote: bool) -> None:
        votes = self.state["votes"].setdefault(txn, {})
        if txn in self.state["decisions"]:
            return  # decision already taken (e.g. after timeout)
        votes[pid] = vote
        if len(votes) == len(self._participants()):
            self._decide(txn, all(votes.values()))

    @timer_handler("vote-timeout")
    def vote_timeout_fired(self, payload: Any) -> None:
        txn = payload["txn"]
        if txn in self.state["decisions"]:
            return
        votes = self.state["votes"].get(txn, {})
        if self.assume_yes_on_timeout:
            # Presume missing votes are yes — unsafe, used by the fault-injection scenario.
            self._decide(txn, all(votes.values()) if votes else True)
        else:
            self._decide(txn, False)

    def _decide(self, txn: int, commit: bool) -> None:
        decision = "COMMIT" if commit else "ABORT"
        self.state["decisions"][txn] = decision
        for pid in self._participants():
            self.send(pid, decision, {"txn": txn})

    # ------------------------------------------------------------------
    # acknowledgements
    # ------------------------------------------------------------------
    @handler("DECISION_ACK")
    def handle_ack(self, msg: Message) -> None:
        txn = msg.payload["txn"]
        self.state["acks"][txn] = self.state["acks"].get(txn, 0) + 1
        if self.state["acks"][txn] == len(self._participants()):
            self.state["completed"] += 1
            self.state["current_txn"] += 1
            if self.state["current_txn"] < self.transactions:
                self._begin_transaction()

    @invariant("one-decision-per-transaction")
    def one_decision(self) -> bool:
        return all(decision in ("COMMIT", "ABORT") for decision in self.state["decisions"].values())


class Participant(Process):
    """A two-phase-commit participant.

    ``accept_predicate`` decides the vote; the default accepts every
    transaction.  Subclasses (and tests) override :meth:`will_accept`.
    """

    def on_start(self) -> None:
        self.state["prepared"] = []
        self.state["committed"] = []
        self.state["aborted"] = []

    def will_accept(self, txn: int) -> bool:
        """Vote for transaction ``txn``; override to inject no-votes."""
        return True

    @handler("PREPARE")
    def handle_prepare(self, msg: Message) -> None:
        txn = msg.payload["txn"]
        self.state["prepared"].append(txn)
        if self.will_accept(txn):
            self.send(msg.src, "VOTE_YES", {"txn": txn})
        else:
            self.send(msg.src, "VOTE_NO", {"txn": txn})

    @handler("COMMIT")
    def handle_commit(self, msg: Message) -> None:
        txn = msg.payload["txn"]
        if txn not in self.state["committed"]:
            self.state["committed"].append(txn)
        self.send(msg.src, "DECISION_ACK", {"txn": txn})

    @handler("ABORT")
    def handle_abort(self, msg: Message) -> None:
        txn = msg.payload["txn"]
        if txn not in self.state["aborted"]:
            self.state["aborted"].append(txn)
        self.send(msg.src, "DECISION_ACK", {"txn": txn})

    @invariant("not-both-committed-and-aborted")
    def not_both(self) -> bool:
        return not (set(self.state["committed"]) & set(self.state["aborted"]))


class ParticipantLossy(Participant):
    """Buggy participant: a *no* vote unilaterally aborts before the decision.

    Combined with a coordinator that presumes yes on a vote timeout (or a
    dropped vote message), this yields a transaction committed at some
    participants and aborted at this one — an atomicity violation.
    """

    reject_txns: tuple = (1,)

    def will_accept(self, txn: int) -> bool:
        return txn not in self.reject_txns

    @handler("PREPARE")
    def handle_prepare(self, msg: Message) -> None:
        txn = msg.payload["txn"]
        self.state["prepared"].append(txn)
        if self.will_accept(txn):
            self.send(msg.src, "VOTE_YES", {"txn": txn})
        else:
            # BUG: unilaterally abort without waiting for the coordinator.
            self.state["aborted"].append(txn)
            self.send(msg.src, "VOTE_NO", {"txn": txn})


def atomicity_invariant(states: Dict[str, Dict[str, Any]]) -> bool:
    """Global invariant: no transaction is committed somewhere and aborted elsewhere."""
    committed: set = set()
    aborted: set = set()
    for state in states.values():
        committed.update(state.get("committed", ()))
        aborted.update(state.get("aborted", ()))
    return not (committed & aborted)


def build_2pc_cluster(cluster, participants: int = 3, transactions: int = 2) -> None:
    """Convenience wiring: one coordinator plus N (correct) participants."""
    Coordinator.transactions = transactions  # kept for code constructing the class directly
    cluster.add_process("coordinator", ConfiguredFactory(Coordinator, transactions=transactions))
    for index in range(participants):
        cluster.add_process(f"participant{index}", Participant)
