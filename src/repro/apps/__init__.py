"""Example distributed applications used by examples, tests and benchmarks.

Each application is written purely against the public process API
(:class:`repro.dsim.process.Process`), declares its correctness
invariants, and — where a FixD scenario needs a bug to find — ships both
a buggy and a fixed version so patches can be generated between them:

* :mod:`repro.apps.kvstore` — a primary/backup replicated key-value
  store with read-your-writes and replica-consistency invariants.
* :mod:`repro.apps.two_phase_commit` — a transaction coordinator and
  participants with atomicity invariants.
* :mod:`repro.apps.token_ring` — token-ring mutual exclusion
  (single-token invariant).
* :mod:`repro.apps.leader_election` — ring-based leader election
  (Chang–Roberts style) with an at-most-one-leader invariant.
* :mod:`repro.apps.bank` — a distributed bank whose transfers must
  conserve the total balance.
* :mod:`repro.apps.wordcount` — a master/worker word-count pipeline used
  by the long-running recovery benchmarks.
"""

from repro.apps.bank import BankBranch, BankBranchFixed, total_balance_invariant
from repro.apps.kvstore import (
    KVClient,
    KVReplica,
    KVReplicaStale,
    KVRewritingClient,
    replica_consistency_invariant,
)
from repro.apps.leader_election import RingElector, at_most_one_leader_invariant
from repro.apps.token_ring import TokenRingNode, TokenRingNodeBuggy, single_token_invariant
from repro.apps.two_phase_commit import Coordinator, Participant, ParticipantLossy, atomicity_invariant
from repro.apps.wordcount import WordCountMaster, WordCountWorker

__all__ = [
    "BankBranch",
    "BankBranchFixed",
    "total_balance_invariant",
    "KVClient",
    "KVReplica",
    "KVReplicaStale",
    "KVRewritingClient",
    "replica_consistency_invariant",
    "RingElector",
    "at_most_one_leader_invariant",
    "TokenRingNode",
    "TokenRingNodeBuggy",
    "single_token_invariant",
    "Coordinator",
    "Participant",
    "ParticipantLossy",
    "atomicity_invariant",
    "WordCountMaster",
    "WordCountWorker",
]
