"""A master/worker word-count pipeline.

This is the long-running "useful computation" workload for the recovery
benchmarks (claim-3.4-resume): a master splits a corpus into chunks and
hands them to workers; workers count words and send partial results back;
the master aggregates.  A fault late in the run lets the benchmark
compare how much completed work each recovery strategy preserves.

Invariants
----------
* master: the number of aggregated chunks never exceeds the number of
  chunks dispatched;
* worker: a worker never reports more words for a chunk than the chunk
  contains (checked against the chunk length it received).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.dsim.message import Message
from repro.dsim.process import ConfiguredFactory, Process, handler, invariant, timer_handler

#: A small deterministic corpus generator (no file I/O needed).
_WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta")


def generate_corpus(chunks: int, words_per_chunk: int = 20) -> List[List[str]]:
    """Deterministic corpus: ``chunks`` lists of ``words_per_chunk`` words."""
    corpus = []
    for chunk_index in range(chunks):
        chunk = [
            _WORDS[(chunk_index * 31 + offset * 7) % len(_WORDS)] for offset in range(words_per_chunk)
        ]
        corpus.append(chunk)
    return corpus


class WordCountMaster(Process):
    """Splits the corpus into chunks and aggregates the workers' counts."""

    chunks: int = 12
    words_per_chunk: int = 20

    def on_start(self) -> None:
        self.state["pending_chunks"] = list(range(self.chunks))
        self.state["dispatched"] = 0
        self.state["aggregated"] = 0
        self.state["counts"] = {}
        self.state["corpus_size"] = self.chunks * self.words_per_chunk
        self.set_timer("dispatch", 1.0)

    def _workers(self) -> List[str]:
        return [pid for pid in self.peers if pid.startswith("worker")]

    @timer_handler("dispatch")
    def dispatch(self, payload: Any) -> None:
        workers = self._workers()
        if not workers or not self.state["pending_chunks"]:
            return
        corpus = generate_corpus(self.chunks, self.words_per_chunk)
        chunk_id = self.state["pending_chunks"].pop(0)
        worker = workers[chunk_id % len(workers)]
        self.send(worker, "COUNT", {"chunk_id": chunk_id, "words": corpus[chunk_id]})
        self.state["dispatched"] += 1
        if self.state["pending_chunks"]:
            self.set_timer("dispatch", 1.0)

    @handler("COUNTED")
    def handle_counted(self, msg: Message) -> None:
        for word, count in msg.payload["counts"].items():
            self.state["counts"][word] = self.state["counts"].get(word, 0) + count
        self.state["aggregated"] += 1

    @invariant("aggregated-bounded-by-dispatched")
    def aggregated_bounded(self) -> bool:
        return self.state["aggregated"] <= self.state["dispatched"]

    @invariant("total-counted-bounded-by-corpus")
    def total_bounded(self) -> bool:
        return sum(self.state["counts"].values()) <= self.state["corpus_size"]

    @property
    def finished(self) -> bool:
        return self.state["aggregated"] == self.chunks


class WordCountWorker(Process):
    """Counts the words of each chunk it receives and reports back."""

    def on_start(self) -> None:
        self.state["chunks_processed"] = 0
        self.state["words_seen"] = 0

    @handler("COUNT")
    def handle_count(self, msg: Message) -> None:
        words = msg.payload["words"]
        counts: Dict[str, int] = {}
        for word in words:
            counts[word] = counts.get(word, 0) + 1
        self.state["chunks_processed"] += 1
        self.state["words_seen"] += len(words)
        self.send(msg.src, "COUNTED", {"chunk_id": msg.payload["chunk_id"], "counts": counts})

    @invariant("words-seen-consistent")
    def words_seen_consistent(self) -> bool:
        return self.state["words_seen"] >= self.state["chunks_processed"]


class WordCountBurstMaster(WordCountMaster):
    """Dispatches the whole corpus in one burst instead of one chunk per tick.

    This is the heavy-traffic profile used by the multiprocessing
    batching benchmark and the backend-parity suite: a single handler
    emits ``chunks`` messages back to back, which is exactly the shape
    the batched pipe transport amortizes (one pickled write per
    destination instead of one per message).  The aggregation protocol
    and all invariants are inherited unchanged.
    """

    @timer_handler("dispatch")
    def dispatch(self, payload: Any) -> None:
        workers = self._workers()
        if not workers:
            return
        corpus = generate_corpus(self.chunks, self.words_per_chunk)
        while self.state["pending_chunks"]:
            chunk_id = self.state["pending_chunks"].pop(0)
            worker = workers[chunk_id % len(workers)]
            self.send(worker, "COUNT", {"chunk_id": chunk_id, "words": corpus[chunk_id]})
            self.state["dispatched"] += 1


def expected_counts(chunks: int, words_per_chunk: int = 20) -> Dict[str, int]:
    """Ground-truth word counts for the generated corpus (used by tests)."""
    counts: Dict[str, int] = {}
    for chunk in generate_corpus(chunks, words_per_chunk):
        for word in chunk:
            counts[word] = counts.get(word, 0) + 1
    return counts


def build_wordcount_cluster(cluster, workers: int = 3, chunks: int = 12) -> None:
    """Convenience wiring: one master plus ``workers`` workers."""
    WordCountMaster.chunks = chunks  # kept for code constructing the class directly
    cluster.add_process("master", ConfiguredFactory(WordCountMaster, chunks=chunks))
    for index in range(workers):
        cluster.add_process(f"worker{index}", WordCountWorker)


def build_wordcount_burst_cluster(
    cluster, workers: int = 4, chunks: int = 200, words_per_chunk: int = 12
) -> None:
    """Heavy-traffic wiring: a burst-dispatching master plus ``workers`` workers."""
    cluster.add_process(
        "master",
        ConfiguredFactory(WordCountBurstMaster, chunks=chunks, words_per_chunk=words_per_chunk),
    )
    for index in range(workers):
        cluster.add_process(f"worker{index}", WordCountWorker)
