"""Ring-based leader election (Chang–Roberts).

Every node owns a numeric identifier (derived deterministically from its
pid).  Election messages circulate clockwise carrying the largest
identifier seen so far; a node that receives its own identifier back
declares itself the leader and announces the result.

Invariants
----------
* per-node: a node that believes the election is over knows exactly one
  leader;
* global (:func:`at_most_one_leader_invariant`): no two nodes consider
  *themselves* the leader.

The election is also a convenient workload for crash-fault scenarios:
crash the current leader mid-announcement and re-run the election after
recovery.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.dsim.message import Message
from repro.dsim.process import ConfiguredFactory, Process, handler, invariant, timer_handler


class RingElector(Process):
    """One node of the election ring."""

    ring_size: int = 4
    ring_prefix: str = "elector"

    def on_start(self) -> None:
        self.state["node_id"] = self._my_index() * 7 + 3  # distinct, deterministic ids
        self.state["leader"] = None
        self.state["is_leader"] = False
        self.state["messages_forwarded"] = 0
        self.state["election_started"] = False
        self.set_timer("kickoff", 1.0 + self._my_index())

    # ------------------------------------------------------------------
    # ring helpers
    # ------------------------------------------------------------------
    def _my_index(self) -> int:
        return int(self.pid[len(self.ring_prefix):])

    def _next_pid(self) -> str:
        return f"{self.ring_prefix}{(self._my_index() + 1) % self.ring_size}"

    # ------------------------------------------------------------------
    # election
    # ------------------------------------------------------------------
    @timer_handler("kickoff")
    def kickoff(self, payload: Any) -> None:
        if self.state["election_started"] or self.state["leader"] is not None:
            return
        self.state["election_started"] = True
        self.send(self._next_pid(), "ELECTION", {"candidate": self.state["node_id"]})

    @handler("ELECTION")
    def handle_election(self, msg: Message) -> None:
        candidate = msg.payload["candidate"]
        my_id = self.state["node_id"]
        self.state["election_started"] = True
        if candidate == my_id:
            # My identifier made it all the way around: I am the leader.
            self.state["is_leader"] = True
            self.state["leader"] = my_id
            self.send(self._next_pid(), "ELECTED", {"leader": my_id})
        elif candidate > my_id:
            self.state["messages_forwarded"] += 1
            self.send(self._next_pid(), "ELECTION", {"candidate": candidate})
        else:
            # Swallow smaller candidates, substitute my own (if not already sent).
            self.state["messages_forwarded"] += 1
            self.send(self._next_pid(), "ELECTION", {"candidate": my_id})

    @handler("ELECTED")
    def handle_elected(self, msg: Message) -> None:
        leader = msg.payload["leader"]
        if self.state["leader"] == leader and self.state["is_leader"]:
            return  # announcement completed the loop
        self.state["leader"] = leader
        if leader != self.state["node_id"]:
            self.state["is_leader"] = False
            self.send(self._next_pid(), "ELECTED", {"leader": leader})

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant("leader-is-known-id")
    def leader_is_known_id(self) -> bool:
        """The believed leader id is a plausible node id for this ring."""
        leader = self.state["leader"]
        if leader is None:
            return True
        return (leader - 3) % 7 == 0 and 0 <= (leader - 3) // 7 < self.ring_size

    @invariant("self-leader-consistent")
    def self_leader_consistent(self) -> bool:
        """A node that thinks it is the leader must also record itself as leader."""
        if not self.state["is_leader"]:
            return True
        return self.state["leader"] == self.state["node_id"]


def at_most_one_leader_invariant(states: Dict[str, Dict[str, Any]]) -> bool:
    """Global invariant: at most one node believes it is the leader."""
    leaders = sum(1 for state in states.values() if state.get("is_leader"))
    return leaders <= 1


def elected_leader(states: Dict[str, Dict[str, Any]]) -> Optional[int]:
    """The agreed leader id when every node agrees, otherwise None."""
    leaders = {state.get("leader") for state in states.values() if "leader" in state}
    if len(leaders) == 1:
        return next(iter(leaders))
    return None


def build_election_ring(cluster, nodes: int = 4) -> None:
    """Convenience wiring for an election ring of ``nodes`` processes."""
    RingElector.ring_size = nodes  # kept for code constructing the class directly
    for index in range(nodes):
        cluster.add_process(f"elector{index}", ConfiguredFactory(RingElector, ring_size=nodes))
