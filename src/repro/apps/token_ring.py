"""Token-ring mutual exclusion.

``N`` nodes are arranged in a logical ring.  A single token circulates;
only the token holder may enter its critical section.  Each node performs
a configurable amount of critical-section work per visit and then passes
the token on.

Invariants
----------
* per-node: a node is only ever in its critical section while it holds
  the token;
* global (:func:`single_token_invariant`): at most one node holds the
  token (counting tokens in flight is the cluster's job — the invariant
  is evaluated over process states, where "holds" means the node has
  received and not yet forwarded the token).

Seeded bug
----------
:class:`TokenRingNodeBuggy` *duplicates* the token under load: when its
work counter crosses a threshold it forwards the token but also keeps a
copy, so two nodes can end up in their critical sections at once.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.dsim.message import Message
from repro.dsim.process import ConfiguredFactory, Process, handler, invariant, timer_handler


class TokenRingNode(Process):
    """A correct token-ring participant."""

    ring_size: int = 3
    ring_prefix: str = "node"
    max_rounds: int = 5
    cs_duration: float = 1.0

    def on_start(self) -> None:
        self.state["has_token"] = False
        self.state["in_critical_section"] = False
        self.state["entries"] = 0
        self.state["rounds_seen"] = 0
        if self._my_index() == 0:
            # Node 0 creates the token.
            self.state["has_token"] = True
            self._enter_critical_section()

    # ------------------------------------------------------------------
    # ring helpers
    # ------------------------------------------------------------------
    def _my_index(self) -> int:
        return int(self.pid[len(self.ring_prefix):])

    def _next_pid(self) -> str:
        return f"{self.ring_prefix}{(self._my_index() + 1) % self.ring_size}"

    # ------------------------------------------------------------------
    # critical section lifecycle
    # ------------------------------------------------------------------
    def _enter_critical_section(self) -> None:
        self.state["in_critical_section"] = True
        self.state["entries"] += 1
        self.set_timer("leave-cs", self.cs_duration)

    @timer_handler("leave-cs")
    def leave_critical_section(self, payload: Any) -> None:
        self.state["in_critical_section"] = False
        self._pass_token()

    def _pass_token(self) -> None:
        if not self.state["has_token"]:
            return
        self.state["has_token"] = False
        self.state["rounds_seen"] += 1
        if self.state["rounds_seen"] <= self.max_rounds:
            self.send(self._next_pid(), "TOKEN", {"round": self.state["rounds_seen"]})

    @handler("TOKEN")
    def handle_token(self, msg: Message) -> None:
        self.state["has_token"] = True
        self.state["rounds_seen"] = max(self.state["rounds_seen"], msg.payload["round"])
        if self.state["rounds_seen"] <= self.max_rounds:
            self._enter_critical_section()
        else:
            self.state["has_token"] = False  # retire the token

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant("cs-requires-token")
    def cs_requires_token(self) -> bool:
        return not self.state["in_critical_section"] or self.state["has_token"]


class TokenRingNodeBuggy(TokenRingNode):
    """Buggy node: duplicates the token once its entry counter passes a threshold."""

    duplicate_after_entries: int = 2

    def _pass_token(self) -> None:
        if not self.state["has_token"]:
            return
        self.state["rounds_seen"] += 1
        if self.state["rounds_seen"] <= self.max_rounds:
            self.send(self._next_pid(), "TOKEN", {"round": self.state["rounds_seen"]})
        if self.state["entries"] < self.duplicate_after_entries:
            self.state["has_token"] = False
        # BUG: beyond the threshold the node keeps a copy of the token,
        # so both it and its successor believe they hold it.


def single_token_invariant(states: Dict[str, Dict[str, Any]]) -> bool:
    """Global invariant: at most one node holds the token at any instant."""
    holders = sum(1 for state in states.values() if state.get("has_token"))
    return holders <= 1


def mutual_exclusion_invariant(states: Dict[str, Dict[str, Any]]) -> bool:
    """Global invariant: at most one node is inside its critical section."""
    inside = sum(1 for state in states.values() if state.get("in_critical_section"))
    return inside <= 1


def build_token_ring(cluster, nodes: int = 3, node_class=TokenRingNode, max_rounds: int = 5) -> None:
    """Convenience wiring for a ring of ``nodes`` processes."""
    node_class.ring_size = nodes  # kept for code constructing the class directly
    node_class.max_rounds = max_rounds
    for index in range(nodes):
        cluster.add_process(
            f"node{index}",
            ConfiguredFactory(node_class, ring_size=nodes, max_rounds=max_rounds),
        )
