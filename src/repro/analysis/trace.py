"""Causal trace reconstruction from a Scroll.

The Scroll records actions per process; this module stitches them back
into the cross-process structures developers actually read when hunting a
bug: message flows (send matched with its receive) and a causal trace (an
event order consistent with happens-before).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.scroll import Scroll


@dataclass(frozen=True)
class MessageFlow:
    """One message's life: who sent it, who received it (if anyone), and when."""

    msg_id: int
    src: str
    dst: str
    kind: str
    sent_at: Optional[float]
    received_at: Optional[float]
    dropped: bool

    @property
    def latency(self) -> Optional[float]:
        if self.sent_at is None or self.received_at is None:
            return None
        return self.received_at - self.sent_at

    @property
    def delivered(self) -> bool:
        return self.received_at is not None


def message_flows(scroll: Scroll) -> List[MessageFlow]:
    """Match SEND/RECEIVE/DROP entries into per-message flows."""
    sends: Dict[int, ScrollEntry] = {}
    receives: Dict[int, ScrollEntry] = {}
    drops: Dict[int, ScrollEntry] = {}
    for entry in scroll:
        message = entry.detail.get("message")
        if not message:
            continue
        msg_id = message.get("msg_id")
        if msg_id is None:
            continue
        if entry.kind is ActionKind.SEND:
            sends.setdefault(msg_id, entry)
        elif entry.kind is ActionKind.RECEIVE:
            receives.setdefault(msg_id, entry)
        elif entry.kind is ActionKind.DROP:
            drops.setdefault(msg_id, entry)

    flows: List[MessageFlow] = []
    for msg_id in sorted(set(sends) | set(receives) | set(drops)):
        send = sends.get(msg_id)
        receive = receives.get(msg_id)
        reference = send or receive or drops.get(msg_id)
        message = reference.detail["message"]
        flows.append(
            MessageFlow(
                msg_id=msg_id,
                src=message["src"],
                dst=message["dst"],
                kind=message["kind"],
                sent_at=send.time if send else None,
                received_at=receive.time if receive else None,
                dropped=msg_id in drops,
            )
        )
    return flows


@dataclass
class CausalTrace:
    """A linearisation of the recorded events consistent with happens-before."""

    entries: List[ScrollEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def actions_of(self, pid: str) -> List[ScrollEntry]:
        return [entry for entry in self.entries if entry.pid == pid]

    def describe(self, limit: Optional[int] = None) -> str:
        shown = self.entries if limit is None else self.entries[:limit]
        lines = [entry.describe() for entry in shown]
        if limit is not None and len(self.entries) > limit:
            lines.append(f"... {len(self.entries) - limit} more entries ...")
        return "\n".join(lines)

    def respects_send_before_receive(self) -> bool:
        """Sanity check: every message's send appears before its receive."""
        send_positions: Dict[int, int] = {}
        for index, entry in enumerate(self.entries):
            message = entry.detail.get("message")
            if not message:
                continue
            msg_id = message.get("msg_id")
            if entry.kind is ActionKind.SEND:
                send_positions.setdefault(msg_id, index)
            elif entry.kind is ActionKind.RECEIVE:
                if msg_id not in send_positions or send_positions[msg_id] > index:
                    return False
        return True


def build_causal_trace(scroll: Scroll) -> CausalTrace:
    """Order the Scroll's entries so that causality (send before receive) holds.

    The recorded times already respect causality in the simulator, so the
    sort is primarily by time; vector-timestamp component sums and the
    original sequence numbers break ties deterministically, and a final
    fix-up pass demotes any receive that would otherwise precede its send
    (possible when the recorder logged them with equal timestamps).
    """
    def key(entry: ScrollEntry):
        weight = sum(entry.vt.as_dict().values()) if entry.vt is not None else 0
        kind_rank = 0 if entry.kind is ActionKind.SEND else 1
        return (entry.time, weight, kind_rank, entry.seq)

    ordered = sorted(scroll.entries, key=key)

    # Fix-up pass: ensure send precedes receive for the same message id.
    positions: Dict[int, int] = {}
    result: List[ScrollEntry] = []
    deferred: Dict[int, List[ScrollEntry]] = {}
    for entry in ordered:
        message = entry.detail.get("message")
        msg_id = message.get("msg_id") if message else None
        if entry.kind is ActionKind.RECEIVE and msg_id is not None and msg_id not in positions:
            deferred.setdefault(msg_id, []).append(entry)
            continue
        result.append(entry)
        if entry.kind is ActionKind.SEND and msg_id is not None:
            positions[msg_id] = len(result) - 1
            for waiting in deferred.pop(msg_id, []):
                result.append(waiting)
    # Any receives whose send was never recorded go at the end, in original order.
    for waiting_list in deferred.values():
        result.extend(waiting_list)
    return CausalTrace(entries=result)
