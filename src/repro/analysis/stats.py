"""Run statistics: summarising Scrolls and comparing runs.

Benchmarks use these helpers to turn raw Scrolls and run results into the
rows they print (events per process, overhead ratios, recovery costs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dsim.cluster import RunResult
from repro.scroll.entry import ActionKind
from repro.scroll.scroll import Scroll


@dataclass
class RunStatistics:
    """Aggregate numbers describing one recorded run."""

    total_entries: int
    entries_by_kind: Dict[str, int]
    entries_by_process: Dict[str, int]
    messages_sent: int
    messages_received: int
    messages_dropped: int
    random_draws: int
    violations: int
    nondeterministic_entries: int

    @property
    def deterministic_entries(self) -> int:
        return self.total_entries - self.nondeterministic_entries

    @property
    def delivery_ratio(self) -> float:
        """Fraction of sent messages that were received."""
        if self.messages_sent == 0:
            return 1.0
        return self.messages_received / self.messages_sent

    def describe(self) -> str:
        lines = [
            f"scroll entries: {self.total_entries} "
            f"({self.nondeterministic_entries} nondeterministic)",
            f"messages: {self.messages_sent} sent, {self.messages_received} received, "
            f"{self.messages_dropped} dropped (delivery ratio {self.delivery_ratio:.2f})",
            f"random draws: {self.random_draws}, violations: {self.violations}",
        ]
        return "\n".join(lines)


def summarize_scroll(scroll: Scroll) -> RunStatistics:
    """Compute :class:`RunStatistics` from a Scroll."""
    by_kind = scroll.counts_by_kind()
    return RunStatistics(
        total_entries=len(scroll),
        entries_by_kind=by_kind,
        entries_by_process=scroll.counts_by_process(),
        messages_sent=by_kind.get(ActionKind.SEND.value, 0),
        messages_received=by_kind.get(ActionKind.RECEIVE.value, 0),
        messages_dropped=by_kind.get(ActionKind.DROP.value, 0),
        random_draws=by_kind.get(ActionKind.RANDOM.value, 0),
        violations=by_kind.get(ActionKind.VIOLATION.value, 0),
        nondeterministic_entries=len(scroll.nondeterministic()),
    )


@dataclass
class RunComparison:
    """Differences between two runs of the same application."""

    events_delta: int
    time_delta: float
    state_differences: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def identical_states(self) -> bool:
        return not self.state_differences


def compare_runs(baseline: RunResult, other: RunResult) -> RunComparison:
    """Compare two run results: event counts, final time and per-process state."""
    differences: Dict[str, List[str]] = {}
    pids = set(baseline.process_states) | set(other.process_states)
    for pid in sorted(pids):
        base_state = baseline.process_states.get(pid)
        other_state = other.process_states.get(pid)
        if base_state is None or other_state is None:
            differences[pid] = ["process missing from one run"]
            continue
        keys = set(base_state) | set(other_state)
        diffs = [
            f"{key}: {base_state.get(key)!r} != {other_state.get(key)!r}"
            for key in sorted(keys)
            if base_state.get(key) != other_state.get(key)
        ]
        if diffs:
            differences[pid] = diffs
    return RunComparison(
        events_delta=other.events_executed - baseline.events_executed,
        time_delta=other.final_time - baseline.final_time,
        state_differences=differences,
    )


def overhead_ratio(baseline_seconds: float, instrumented_seconds: float) -> Optional[float]:
    """Relative overhead of an instrumented run versus its baseline."""
    if baseline_seconds <= 0:
        return None
    return (instrumented_seconds - baseline_seconds) / baseline_seconds
