"""Offline analysis of recorded runs: traces, statistics and report helpers.

These utilities operate purely on Scrolls and run results — they never
touch a live cluster — and are what the examples and benchmarks use to
summarise what happened.
"""

from repro.analysis.stats import RunStatistics, compare_runs, summarize_scroll
from repro.analysis.trace import CausalTrace, MessageFlow, build_causal_trace, message_flows

__all__ = [
    "RunStatistics",
    "compare_runs",
    "summarize_scroll",
    "CausalTrace",
    "MessageFlow",
    "build_causal_trace",
    "message_flows",
]
