"""Hook interfaces through which FixD components observe a running cluster.

The execution substrate knows nothing about logging, checkpointing or
model checking.  Instead, the cluster frontend accepts any number of
*runtime hooks* implementing (a subset of) :class:`RuntimeHook` and —
whichever :class:`~repro.dsim.backend.Backend` executes the run — calls
them at every interesting point of the execution:

* the Scroll's recorder subscribes to sends, deliveries, drops, timer
  firings and random draws — the nondeterministic actions of Figure 1;
* the Time Machine's checkpoint policies subscribe to
  ``before_receive``/``after_handler`` to take communication-induced or
  periodic checkpoints;
* the FixD fault detector subscribes to ``on_invariant_violation``.

Hooks are plain objects; the default implementations do nothing, so a
hook only overrides the notifications it cares about.

Action notifications carry the acting process's vector timestamp as the
trailing ``vt`` keyword when the caller has it at hand: recording hooks
need the timestamp for every entry, and resolving it at the
notification site means consumers don't each pay a process-table lookup
per recorded action.  The simulator backend reads it off the live
process; the multiprocessing backend's workers stamp it into every
message, receipt and event they ship to the router (replayed in exact
occurrence order), so hooks observe the same causal surface on both
substrates — with one scoped exception: per-draw randomness and clock
reads (``on_random``/``on_clock_read``) are counted but not shipped by
the mp workers (see the ROADMAP item on mp recording depth).  ``vt``
may still be ``None`` for notifiers with no cheap timestamp.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.dsim.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.dsim.cluster import Cluster


class RuntimeHook:
    """Base class for simulator observers.  All notifications are optional."""

    def attach(self, cluster: "Cluster") -> None:
        """Called once when the hook is installed on a cluster."""

    # -- message lifecycle ------------------------------------------------
    def on_send(self, pid: str, message: Message, time: float, vt=None) -> None:
        """A process handed ``message`` to the network."""

    def before_receive(self, pid: str, message: Message, time: float) -> None:
        """``message`` is about to be delivered to ``pid`` (checkpoint point)."""

    def on_receive(self, pid: str, message: Message, time: float, vt=None) -> None:
        """``message`` was delivered to ``pid`` and its handler ran."""

    def on_drop(self, message: Message, time: float, vt=None) -> None:
        """The network dropped ``message`` (``vt`` is the sender's)."""

    def on_duplicate(self, message: Message, time: float, vt=None) -> None:
        """The network duplicated ``message`` (``vt`` is the sender's)."""

    # -- local nondeterminism --------------------------------------------
    def on_timer(self, pid: str, name: str, time: float, vt=None, payload=None) -> None:
        """A timer named ``name`` fired at ``pid`` carrying ``payload``."""

    def on_random(self, pid: str, method: str, value: object, time: float, vt=None) -> None:
        """A process drew ``value`` from its random stream via ``method``."""

    def on_clock_read(self, pid: str, value: float, vt=None) -> None:
        """A process read the simulation clock."""

    # -- handler lifecycle -------------------------------------------------
    def after_handler(self, pid: str, description: str, time: float) -> None:
        """A message/timer handler finished executing at ``pid``."""

    # -- faults -----------------------------------------------------------
    def on_crash(self, pid: str, time: float, vt=None) -> None:
        """``pid`` crashed."""

    def on_recover(self, pid: str, time: float, vt=None) -> None:
        """``pid`` recovered from a crash."""

    def on_corruption(self, pid: str, description: str, time: float, vt=None) -> None:
        """Injected state corruption was applied at ``pid``."""

    def on_invariant_violation(
        self, pid: str, name: str, detail: str, time: float, vt=None
    ) -> Optional[bool]:
        """An invariant failed at ``pid``.

        Returning ``True`` tells the cluster the violation was *handled*
        (e.g. FixD initiated recovery) and the run may continue;
        returning ``False`` or ``None`` lets the cluster apply its
        default policy (halt or raise, per configuration).
        """
        return None

    # -- run lifecycle ------------------------------------------------------
    def on_run_start(self, time: float) -> None:
        """The cluster is about to start executing events."""

    def on_run_end(self, time: float) -> None:
        """The cluster stopped executing events (quiescence, limit or halt)."""


class HookChain(RuntimeHook):
    """Fans every notification out to an ordered list of hooks.

    For :meth:`on_invariant_violation` the chain returns ``True`` as soon
    as any hook reports the violation handled.
    """

    def __init__(self, hooks: Optional[list] = None) -> None:
        self.hooks: list[RuntimeHook] = list(hooks or [])

    def add(self, hook: RuntimeHook) -> None:
        self.hooks.append(hook)

    def attach(self, cluster: "Cluster") -> None:
        for hook in self.hooks:
            hook.attach(cluster)

    def on_send(self, pid, message, time, vt=None):
        for hook in self.hooks:
            hook.on_send(pid, message, time, vt)

    def before_receive(self, pid, message, time):
        for hook in self.hooks:
            hook.before_receive(pid, message, time)

    def on_receive(self, pid, message, time, vt=None):
        for hook in self.hooks:
            hook.on_receive(pid, message, time, vt)

    def on_drop(self, message, time, vt=None):
        for hook in self.hooks:
            hook.on_drop(message, time, vt)

    def on_duplicate(self, message, time, vt=None):
        for hook in self.hooks:
            hook.on_duplicate(message, time, vt)

    def on_timer(self, pid, name, time, vt=None, payload=None):
        for hook in self.hooks:
            hook.on_timer(pid, name, time, vt, payload)

    def on_random(self, pid, method, value, time, vt=None):
        for hook in self.hooks:
            hook.on_random(pid, method, value, time, vt)

    def on_clock_read(self, pid, value, vt=None):
        for hook in self.hooks:
            hook.on_clock_read(pid, value, vt)

    def after_handler(self, pid, description, time):
        for hook in self.hooks:
            hook.after_handler(pid, description, time)

    def on_crash(self, pid, time, vt=None):
        for hook in self.hooks:
            hook.on_crash(pid, time, vt)

    def on_recover(self, pid, time, vt=None):
        for hook in self.hooks:
            hook.on_recover(pid, time, vt)

    def on_corruption(self, pid, description, time, vt=None):
        for hook in self.hooks:
            hook.on_corruption(pid, description, time, vt)

    def on_invariant_violation(self, pid, name, detail, time, vt=None):
        handled = False
        for hook in self.hooks:
            result = hook.on_invariant_violation(pid, name, detail, time, vt)
            handled = handled or bool(result)
        return handled

    def on_run_start(self, time):
        for hook in self.hooks:
            hook.on_run_start(time)

    def on_run_end(self, time):
        for hook in self.hooks:
            hook.on_run_end(time)
