"""Messages exchanged between simulated processes.

A :class:`Message` is the unit of interaction the Scroll records and the
Time Machine reasons about.  Besides the obvious addressing fields it
carries:

* the sender's vector timestamp (``vt``) — used to reconstruct
  happens-before and to validate recovery lines;
* the set of speculation ids it is *tainted* with (``speculations``) —
  a process that receives a speculative message is absorbed into the
  speculation (Section 4.2) and must roll back if that speculation is
  aborted;
* a monotonically increasing ``msg_id`` assigned by the network, giving a
  stable identity for logging, deduplication and fault targeting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, Optional

from repro.dsim.clock import VectorTimestamp

_message_counter = itertools.count(1)


def _next_message_id() -> int:
    return next(_message_counter)


@dataclass(frozen=True)
class Message:
    """An immutable message in flight between two processes.

    Attributes
    ----------
    src, dst:
        Process ids of the sender and the receiver.
    kind:
        Application-level message type, e.g. ``"PUT"`` or ``"PREPARE"``.
        Handlers are dispatched on this field.
    payload:
        Arbitrary picklable application data.
    msg_id:
        Unique id assigned when the message enters the network.
    send_time:
        Simulation time at which the message was sent.
    vt:
        Sender's vector timestamp at send time.
    lamport:
        Sender's Lamport timestamp at send time.
    speculations:
        Ids of the speculations this message is tainted with.  Receivers
        are absorbed into every speculation listed here.
    duplicate_of:
        When the network duplicates a message, the copy records the
        original id here so the Scroll can attribute it to a fault.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    msg_id: int = field(default_factory=_next_message_id)
    send_time: float = 0.0
    vt: VectorTimestamp = field(default_factory=VectorTimestamp)
    lamport: int = 0
    speculations: FrozenSet[str] = frozenset()
    duplicate_of: Optional[int] = None

    def with_taint(self, speculation_ids: FrozenSet[str]) -> "Message":
        """Return a copy tainted with the given speculation ids."""
        if not speculation_ids:
            return self
        return replace(self, speculations=self.speculations | frozenset(speculation_ids))

    def as_duplicate(self) -> "Message":
        """Return a duplicate copy with a fresh id, marked as such."""
        return replace(self, msg_id=_next_message_id(), duplicate_of=self.msg_id)

    def describe(self) -> str:
        """Short human-readable description used by traces and bug reports."""
        return f"#{self.msg_id} {self.src}->{self.dst} {self.kind}"

    def to_record(self) -> Dict[str, Any]:
        """Serialize the message to a plain dictionary (for the Scroll)."""
        return {
            "msg_id": self.msg_id,
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "payload": self.payload,
            "send_time": self.send_time,
            "vt": self.vt.as_dict(),
            "lamport": self.lamport,
            "speculations": sorted(self.speculations),
            "duplicate_of": self.duplicate_of,
        }

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "Message":
        """Rebuild a message from :meth:`to_record` output."""
        return Message(
            src=record["src"],
            dst=record["dst"],
            kind=record["kind"],
            payload=record.get("payload"),
            msg_id=record["msg_id"],
            send_time=record.get("send_time", 0.0),
            vt=VectorTimestamp.from_mapping(record.get("vt", {})),
            lamport=record.get("lamport", 0),
            speculations=frozenset(record.get("speculations", ())),
            duplicate_of=record.get("duplicate_of"),
        )


_EMPTY_SPECULATIONS: FrozenSet[str] = frozenset()


def make_message(
    src: str,
    dst: str,
    kind: str,
    payload: Any,
    send_time: float,
    vt: "VectorTimestamp",
    lamport: int,
) -> Message:
    """Fast constructor for the per-send hot path.

    ``Message`` is a frozen dataclass, so its ``__init__`` routes every
    field through ``object.__setattr__``; populating ``__dict__``
    directly builds an identical instance at a fraction of the cost.
    Semantics match ``Message(...)`` with default speculations and
    ``duplicate_of`` — the only shape :meth:`Process.send` produces.
    """
    message = object.__new__(Message)
    state = message.__dict__
    state["src"] = src
    state["dst"] = dst
    state["kind"] = kind
    state["payload"] = payload
    state["msg_id"] = next(_message_counter)
    state["send_time"] = send_time
    state["vt"] = vt
    state["lamport"] = lamport
    state["speculations"] = _EMPTY_SPECULATIONS
    state["duplicate_of"] = None
    return message


def reset_message_ids(start: int = 1) -> None:
    """Reset the global message id counter (tests; per-worker namespaces).

    The counter is interpreter-global, so every OS process of the
    multiprocessing backend has its own — each worker rebases its
    counter into a disjoint range (``start``) so msg_ids stay unique
    across the whole cluster and Scroll-based message tracing can keep
    keying on them.
    """
    global _message_counter
    _message_counter = itertools.count(start)
