"""NetBackend: the cluster API over a sharded asyncio socket router.

The third execution substrate.  Workers are real OS processes — the
same :class:`~repro.dsim.process.Process` subclasses and the same
worker event loop the mp backend runs — but the transport is a stream
socket (Unix-domain by default, TCP optionally) to one of N **shard
routers** instead of an inherited pipe or a shared-memory ring.  This
is the first transport that does not require a shared kernel object
between router and worker, i.e. the first one whose wire protocol
could leave the box.

Topology::

    worker ──socket──▶ shard router 0 ─┐
    worker ──socket──▶ shard router 0 ─┤        ┌─▶ shard router 1 ──socket──▶ worker
                                       ├─ coordinator
    worker ──socket──▶ shard router 1 ─┤  (hooks, fault rules, Scroll)
    worker ──socket──▶ shard router 2 ─┘        └─▶ shard router 2 ──socket──▶ worker

* **Placement** is a consistent hash (:class:`ConsistentHashRing`):
  each pid maps to one shard, which owns that worker's connection for
  the whole run.
* **Shard routers** are asyncio event loops on their own threads.  They
  do the parallelizable work: accept connections, reassemble and decode
  inbound frames, encode outbound items, batch per-destination writes.
  With N shards the codec and syscall cost of routing spreads over N
  loops instead of serializing in one.
* **The coordinator** (the ``run()`` loop) does the work that *must* be
  serial: fault-rule decisions, hook replay and the Scroll are one
  ordered log, so flushes from every shard funnel into one uplink queue
  and are replayed in arrival order — exactly the mp router's
  semantics.  Routed deliveries are handed back to the destination's
  shard over its **inter-shard link** (:meth:`ShardRouter.submit`, a
  thread-safe handoff onto the owning loop): a message from a worker on
  shard A to a worker on shard B is decoded on A's loop, routed by the
  coordinator, and encoded + written on B's loop.

Fault-plan mapping, probe-based quiescence, the flush-log protocol and
the halt reasons (``worker-lost:<pid>``, ``worker-stalled:<pid>``,
``worker-error:<pid>``) all match :class:`~repro.dsim.backend.MPBackend`
— the parity suite asserts identical app-level final states across all
three substrates.

This module is dsim-internal; construct it via ``backend="net"`` on a
:class:`~repro.api.scenario.Scenario`, ``FixDConfig`` or ``Cluster``
(or pass a ``NetBackend`` instance for custom options).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import heapq
import multiprocessing as mp
import os
import pickle
import queue as queue_module
import shutil
import socket
import sys
import tempfile
import threading
import time as wall_time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.dsim import net_transport
from repro.dsim.backend import CAP_REAL_PROCESSES, Backend, _mp_worker_loop
from repro.dsim.failure import MessageFaultEngine
from repro.dsim.message import Message
from repro.errors import SimulationError, UnknownProcessError

SOCKET_FAMILIES = net_transport.SOCKET_FAMILIES


@dataclass
class NetBackendOptions:
    """Tuning knobs of the socket substrate.

    Attributes
    ----------
    time_scale / flush_watermark / batch_deliveries / max_batch_messages /
    max_wall_seconds:
        Same meaning as on :class:`~repro.dsim.backend.MPBackendOptions`
        — the worker loop and the batching watermarks are shared, so a
        plan written for the mp backend injects at the equivalent wall
        moment here.  ``flush_watermark=1`` plus
        ``batch_deliveries=False`` degenerates to one socket write per
        message, kept reachable as the net batching benchmark's
        baseline.
    shards:
        Number of shard routers.  Each runs its own asyncio loop on its
        own thread and owns the connections of the pids the hash ring
        places on it; clamped to the process count.
    family:
        ``"unix"`` (default: Unix-domain sockets under a per-run temp
        directory, unlinked at teardown) or ``"tcp"`` (ephemeral
        loopback ports).
    max_frame_bytes:
        Wire frames larger than this split into bounded chunks
        (:mod:`repro.dsim.net_transport`), so a receiver's reassembly
        buffer is bounded per frame regardless of payload size.
    connect_timeout / connect_retries / connect_backoff:
        Worker-side connect behaviour: each attempt waits
        ``connect_timeout``; failures retry with exponential backoff
        (``connect_backoff * 2**n``, capped at 1s) up to
        ``connect_retries`` times.
    write_timeout:
        Bound on any single socket write, both directions.  A worker
        that stops draining its socket for this long halts the run as
        ``worker-stalled:<pid>`` instead of hanging it.
    socket_buffer_bytes:
        Optional ``SO_SNDBUF``/``SO_RCVBUF`` override.  Production runs
        leave the OS default; the stalled-writer regression test shrinks
        it so a stall is provokable without megabytes of backlog.
    start_method:
        ``multiprocessing`` start method; same default policy as the mp
        backend (``fork`` on Linux, ``spawn`` elsewhere).
    """

    time_scale: float = 0.02
    flush_watermark: int = 64
    batch_deliveries: bool = True
    max_batch_messages: int = 128
    max_wall_seconds: float = 30.0
    shards: int = 2
    family: str = "unix"
    max_frame_bytes: int = net_transport.DEFAULT_MAX_FRAME_BYTES
    connect_timeout: float = 5.0
    connect_retries: int = 20
    connect_backoff: float = 0.05
    write_timeout: float = 10.0
    socket_buffer_bytes: Optional[int] = None
    start_method: Optional[str] = None

    def resolved_start_method(self) -> str:
        if self.start_method:
            return self.start_method
        if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
            return "fork"
        return "spawn"


def _stable_hash(token: str) -> int:
    # placement must not depend on PYTHONHASHSEED: two runs of the same
    # scenario (or a future multi-host router) must agree on it
    return int.from_bytes(hashlib.blake2b(token.encode(), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Deterministic pid → shard placement via a hash ring.

    Virtual nodes (``replicas`` per shard) keep the load roughly even,
    and consistent hashing keeps most placements stable when the shard
    count changes — the property that matters once shards are hosts.
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise SimulationError(f"consistent hash ring needs >= 1 shard, got {shards}")
        points = sorted(
            (_stable_hash(f"shard-{shard}#{replica}"), shard)
            for shard in range(shards)
            for replica in range(replicas)
        )
        self._hashes = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, pid: str) -> int:
        index = bisect.bisect(self._hashes, _stable_hash(pid)) % len(self._shards)
        return self._shards[index]


def _net_worker_main(
    pid: str,
    factory,
    all_pids: Tuple[str, ...],
    seed: int,
    address,
    options: NetBackendOptions,
    check_invariants: bool,
    wall_limit: float,
    corruptions: List[Tuple[float, bytes]],
    msg_id_base: int,
) -> None:
    """Entry point of one net worker: connect, hello, run the worker loop.

    The loop itself is :func:`repro.dsim.backend._mp_worker_loop` — the
    protocol (flush log, probes, crash/recover, result) is transport-
    independent, which is the point of the endpoint abstraction.
    """
    from repro.dsim.message import reset_message_ids

    reset_message_ids(msg_id_base)
    try:
        sock = net_transport.connect_with_retry(
            address,
            options.family,
            connect_timeout=options.connect_timeout,
            retries=options.connect_retries,
            backoff=options.connect_backoff,
            buffer_bytes=options.socket_buffer_bytes,
        )
    except net_transport.TransportError:
        return  # router never came up: nothing to report to
    endpoint = net_transport.SocketEndpoint(
        sock,
        write_timeout=options.write_timeout,
        max_frame_bytes=options.max_frame_bytes,
    )
    try:
        # the hello maps this connection to its pid on the shard; it must
        # be first on the stream, before any flush
        endpoint.send_control(("hello", pid))
        _mp_worker_loop(
            pid,
            factory,
            all_pids,
            seed,
            endpoint,
            options,
            check_invariants,
            wall_limit,
            corruptions,
        )
    except net_transport.TransportError:
        pass  # router went away mid-handshake: nothing left to report to
    finally:
        endpoint.close()


class _ShardConnection:
    """One worker's socket as its owning shard sees it."""

    __slots__ = ("sock", "pid", "outbox", "writer_active", "closing")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.pid: Optional[str] = None
        #: queued wire buffers; one buffer == one submit == one sendall,
        #: so the socket_writes counter measures batching honestly
        self.outbox: deque = deque()
        self.writer_active = False
        self.closing = False


class ShardRouter:
    """One shard: an asyncio loop on its own thread owning N worker sockets.

    Inbound: per-connection reader tasks reassemble and decode frames
    (codec work runs here, in parallel across shards) and push
    ``(pid, item)`` onto the coordinator's uplink queue.  Outbound:
    :meth:`submit` is the **inter-shard link** — a thread-safe handoff
    from the coordinator (or, in principle, another shard) onto this
    loop, which encodes and writes on its own thread.  Items submitted
    before a worker's hello arrives are buffered and flushed to its
    connection in order once it registers.

    A write that stalls past the write timeout reports
    ``("__stalled__",)`` for that pid and stops writing to it; a
    connection that closes reports ``("__lost__",)`` — the coordinator
    turns those into the ``worker-stalled:``/``worker-lost:`` halts.
    """

    def __init__(
        self,
        shard_id: int,
        options: NetBackendOptions,
        uplink: "queue_module.SimpleQueue",
        socket_dir: Optional[str],
    ) -> None:
        self.shard_id = shard_id
        self.options = options
        self.uplink = uplink
        self.stats = net_transport.new_socket_stats()
        self.socket_path: Optional[str] = None
        if options.family == "unix":
            self.socket_path = os.path.join(socket_dir or ".", f"shard-{shard_id}.sock")
        # bound + listening before any worker spawns: connects land in the
        # backlog even while the accept loop is still starting
        self.server_sock, self.address = net_transport.listen_socket(
            options.family, path=self.socket_path,
            buffer_bytes=options.socket_buffer_bytes,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=f"net-shard-{shard_id}", daemon=True
        )
        self._conns: Dict[str, _ShardConnection] = {}
        self._pre_connect: Dict[str, List[bytes]] = {}
        self._closing = False
        self._started = threading.Event()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        self._thread.start()
        self._started.wait(timeout=5.0)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.create_task(self._accept_loop())
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            tasks = asyncio.all_tasks(self._loop)
            for task in tasks:
                task.cancel()
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            self._loop.close()

    def close(self) -> None:
        """Stop the loop, close every socket, unlink the unix path."""
        self._closing = True
        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:  # loop already closed
                pass
            self._thread.join(timeout=5.0)
        for conn in list(self._conns.values()):
            try:
                conn.sock.close()
            except OSError:
                pass
        self._conns.clear()
        try:
            self.server_sock.close()
        except OSError:
            pass
        net_transport.unlink_quietly(self.socket_path)

    # -- inbound -----------------------------------------------------------
    async def _accept_loop(self) -> None:
        loop = self._loop
        options = self.options
        while not self._closing:
            try:
                sock, _ = await loop.sock_accept(self.server_sock)
            except (OSError, ValueError):
                return
            sock.setblocking(False)
            if options.family == "tcp":
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            loop.create_task(self._serve(sock))

    async def _serve(self, sock: socket.socket) -> None:
        loop = self._loop
        conn = _ShardConnection(sock)
        reassembler = net_transport.FrameReassembler()
        uplink = self.uplink
        try:
            while not self._closing:
                data = await loop.sock_recv(sock, 1 << 16)
                if not data:
                    break
                for item in reassembler.feed(data):
                    if conn.pid is None:
                        # the first frame on every connection is the hello
                        if item[0] != "hello":
                            raise net_transport.TransportError(
                                f"shard {self.shard_id}: first frame was "
                                f"{item[0]!r}, expected the hello handshake"
                            )
                        self._register(conn, item[1])
                    else:
                        uplink.put((conn.pid, item))
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # connection loss: reported below like a clean EOF
        except net_transport.TransportError:
            pass  # torn frame from a dying worker: same as connection loss
        finally:
            conn.closing = True
            try:
                sock.close()
            except OSError:
                pass
            if conn.pid is not None and self._conns.get(conn.pid) is conn:
                self._conns.pop(conn.pid, None)
                uplink.put((conn.pid, ("__lost__",)))

    def _register(self, conn: _ShardConnection, pid: str) -> None:
        conn.pid = pid
        self._conns[pid] = conn
        queued = self._pre_connect.pop(pid, None)
        if queued:
            # deliveries routed before the worker finished connecting go
            # out now, ahead of anything submitted later (FIFO preserved)
            conn.outbox.extend(queued)
            self._kick_writer(conn)

    # -- outbound: the inter-shard link ------------------------------------
    def submit(self, pid: str, item: Tuple) -> None:
        """Hand one item to this shard for delivery to ``pid``.

        Thread-safe; encode and write run on the shard's own loop, so
        the caller (the coordinator) never blocks on a transport write.
        """
        try:
            self._loop.call_soon_threadsafe(self._submit_local, pid, item)
        except RuntimeError:
            pass  # loop closed (teardown): the worker is gone anyway

    def _submit_local(self, pid: str, item: Tuple) -> None:
        wire = net_transport.encode_wire(
            item, self.stats, self.options.max_frame_bytes
        )
        conn = self._conns.get(pid)
        if conn is None:
            self._pre_connect.setdefault(pid, []).append(wire)
            return
        if conn.closing:
            return  # stalled or dying: the halt is already on its way
        conn.outbox.append(wire)
        self._kick_writer(conn)

    def _kick_writer(self, conn: _ShardConnection) -> None:
        if not conn.writer_active:
            conn.writer_active = True
            self._loop.create_task(self._write_pump(conn))

    async def _write_pump(self, conn: _ShardConnection) -> None:
        loop = self._loop
        stats = self.stats
        timeout = self.options.write_timeout
        try:
            while conn.outbox and not conn.closing and not self._closing:
                wire = conn.outbox.popleft()
                try:
                    await asyncio.wait_for(
                        loop.sock_sendall(conn.sock, wire), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    # The worker is ALIVE but has not drained its socket
                    # for the whole write timeout — dropping frames
                    # silently would strand tseqs in in_flight until the
                    # wall cap.  Surface the stall loudly and stop
                    # writing to this connection (the cancelled sendall
                    # may have written a partial frame; the stream is no
                    # longer trustworthy).
                    conn.closing = True
                    conn.outbox.clear()
                    if conn.pid is not None:
                        self.uplink.put((conn.pid, ("__stalled__",)))
                    return
                except (BrokenPipeError, ConnectionResetError, OSError):
                    conn.closing = True
                    conn.outbox.clear()
                    return  # worker gone: its reader task reports the loss
                stats["socket_writes"] += 1
                stats["socket_bytes"] += len(wire)
        finally:
            conn.writer_active = False


class NetBackend(Backend):
    """Real OS processes over sharded socket routers.

    Semantics match :class:`~repro.dsim.backend.MPBackend` (same worker
    loop, same flush-log replay, same probe quiescence, same
    limitations: wall-clock timers, cooperative crashes, no
    checkpoint/rollback capability — FixD degrades to detection and
    reporting).  What changes is the transport topology: N shard
    routers own the worker connections and parallelize codec + syscall
    work, while this ``run()`` loop keeps the serial responsibilities —
    fault decisions, hook replay, the Scroll — exactly once.
    """

    name = "net"
    capabilities = frozenset({CAP_REAL_PROCESSES})

    def __init__(self, options: Optional[NetBackendOptions] = None) -> None:
        super().__init__()
        self.options = options or NetBackendOptions()
        if self.options.family not in SOCKET_FAMILIES:
            raise SimulationError(
                f"unknown socket family {self.options.family!r}; "
                f"expected one of {SOCKET_FAMILIES}"
            )
        if self.options.shards < 1:
            raise SimulationError(
                f"the net backend needs >= 1 shard, got {self.options.shards}"
            )
        self._now = 0.0
        self._fault_engine: Optional[MessageFaultEngine] = None
        #: transport accounting of the last run (the batching benchmark's metric)
        self.transport_stats: Dict[str, int] = {}
        #: per-worker counters of the last run (sent/received/recorded/...)
        self.worker_stats: Dict[str, Dict[str, Any]] = {}
        #: unix socket paths of the last run (teardown-leak tests)
        self.socket_paths: List[str] = []
        #: pid → shard placement of the last run
        self.placement: Dict[str, int] = {}

    @property
    def now(self) -> float:
        return self._now

    @property
    def fault_engine(self) -> Optional[MessageFaultEngine]:
        return self._fault_engine

    def start(self) -> None:
        """No-op: shard routers and workers are started inside :meth:`run`."""

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        from repro.dsim.cluster import RunResult

        cluster = self.cluster
        if cluster._started:
            raise SimulationError("the net backend cannot re-enter a finished run")
        if max_events is not None:
            raise SimulationError(
                "the net backend cannot enforce max_events (runs are wall-clock "
                "bounded); pass until= instead"
            )
        config = cluster.config
        options = self.options
        scale = options.time_scale

        pids = tuple(cluster.pids)
        factories = {}
        for pid in pids:
            factory = cluster.factory_for(pid)
            if factory is None:
                raise SimulationError(
                    f"process {pid!r} was registered as an instance; the net backend "
                    "needs zero-argument factories to build workers"
                )
            factories[pid] = factory

        plan = cluster.failure_plan
        known_pids = set(pids)
        for crash in plan.crashes:
            if crash.pid not in known_pids:
                raise UnknownProcessError(crash.pid)
        for corruption in plan.corruptions:
            if corruption.pid not in known_pids:
                raise UnknownProcessError(corruption.pid)
        self._fault_engine = MessageFaultEngine(plan.message_faults)
        partitions = [p.to_partition() for p in plan.partitions]

        sim_limit = min(until if until is not None else config.max_time, config.max_time)
        wall_limit = min(sim_limit * scale, options.max_wall_seconds)

        schedule: List[Tuple[float, int, str, str]] = []
        order = 0
        for crash in plan.crashes:
            schedule.append((crash.at * scale, order, "crash", crash.pid))
            order += 1
            if crash.recover_at is not None:
                schedule.append((crash.recover_at * scale, order, "recover", crash.pid))
                order += 1
        schedule.sort()
        corruptions_by_pid: Dict[str, List[Tuple[float, bytes]]] = {}
        for corruption in plan.corruptions:
            try:
                blob = pickle.dumps(corruption, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise SimulationError(
                    "net backend state-corruption faults must be picklable "
                    f"(mutator for {corruption.pid!r} is not: {exc})"
                ) from exc
            corruptions_by_pid.setdefault(corruption.pid, []).append((corruption.at, blob))

        # setup validated: the run is now committed
        cluster._started = True
        shard_count = max(1, min(options.shards, len(pids) or 1))
        ring = ConsistentHashRing(shard_count)
        self.placement = {pid: ring.shard_for(pid) for pid in pids}
        socket_dir = (
            tempfile.mkdtemp(prefix="fixd-net-") if options.family == "unix" else None
        )
        uplink: "queue_module.SimpleQueue" = queue_module.SimpleQueue()
        shards: List[ShardRouter] = []
        workers = []
        ctx = mp.get_context(options.resolved_start_method())
        start_wall = wall_time.monotonic()

        hooks = cluster.hooks

        # router state (identical accounting to the mp router)
        tseq_counter = 0
        in_flight: Dict[int, Tuple[str, Message]] = {}
        pending_out: Dict[str, List[Tuple[int, Message]]] = {pid: [] for pid in pids}
        delayed: List[Tuple[float, int, Message]] = []
        crashed_pids: set = set()
        live_pids = set(pids)
        schedule_index = 0
        routed = 0
        delivered_batches = 0
        max_batch = 0
        dropped = 0
        duplicated = 0
        dead_letters = 0
        uplink_messages = 0
        probe_seq = 0
        probe_round_dirty = True
        probe_acks: Dict[str, Dict[str, int]] = {}
        last_probe_at = -1.0
        probe_interval = 0.005
        results: Dict[str, Dict[str, Any]] = {}
        recording = {"rng_draws": 0, "clock_reads": 0}
        reason = "time-limit"
        lost_is_error = True

        def elapsed() -> float:
            return wall_time.monotonic() - start_wall

        def update_now() -> None:
            self._now = elapsed() / scale

        def enqueue(dst: str, message: Message) -> None:
            nonlocal tseq_counter, dead_letters, probe_round_dirty
            if dst not in pending_out:
                raise UnknownProcessError(dst)
            if dst in crashed_pids:
                dead_letters += 1
                cluster._record_trace(dst, "dead-letter", message.describe())
                return
            tseq_counter += 1
            in_flight[tseq_counter] = (dst, message)
            pending_out[dst].append((tseq_counter, message))
            probe_round_dirty = True

        def route(message: Message) -> None:
            nonlocal routed, dropped, duplicated
            routed += 1
            sent_at = message.send_time
            hooks.on_send(message.src, message, sent_at, message.vt)
            cluster._record_trace(message.src, "send", message.describe())
            fault = self._fault_engine.decide(message, sent_at)
            if fault is not None and fault.kind == "drop":
                dropped += 1
                hooks.on_drop(message, sent_at, message.vt)
                cluster._record_trace(message.src, "fault-drop", message.describe())
                return
            if any(
                p.active_at(sent_at) and p.separates(message.src, message.dst)
                for p in partitions
            ):
                dropped += 1
                hooks.on_drop(message, sent_at, message.vt)
                cluster._record_trace(message.src, "drop", message.describe())
                return
            if fault is not None and fault.kind == "duplicate":
                duplicated += 1
                copy = message.as_duplicate()
                hooks.on_duplicate(copy, sent_at, message.vt)
                cluster._record_trace(copy.src, "duplicate", copy.describe())
                enqueue(copy.dst, copy)
            if fault is not None and fault.kind == "delay":
                heapq.heappush(
                    delayed, ((sent_at + fault.extra_delay) * scale, message.msg_id, message)
                )
                return
            enqueue(message.dst, message)

        def handle_flush(pid: str, log: List[Tuple]) -> None:
            # replayed in occurrence order — see MPBackend.handle_flush;
            # flushes from different shards interleave in uplink arrival
            # order, which is as close to wall order as sockets can say
            nonlocal uplink_messages, probe_round_dirty
            update_now()
            for entry in log:
                tag = entry[0]
                if tag == "sent":
                    uplink_messages += 1
                    route(entry[1])
                elif tag == "brecv":
                    _, tseq, at = entry
                    dst, message = in_flight[tseq]
                    hooks.before_receive(dst, message, at)
                elif tag == "handled":
                    _, description, at = entry
                    hooks.after_handler(pid, description, at)
                elif tag == "recv":
                    _, tseq, at, vt = entry
                    dst, message = in_flight.pop(tseq)
                    cluster._record_trace(dst, "receive", message.describe())
                    hooks.on_receive(dst, message, at, vt)
                elif tag == "dead":
                    dst, message = in_flight.pop(entry[1])
                    cluster._record_trace(dst, "dead-letter", message.describe())
                elif tag == "timer":
                    _, name, at, vt = entry
                    cluster._record_trace(pid, "timer", name)
                    hooks.on_timer(pid, name, at, vt)
                elif tag == "violation":
                    _, name, detail, at, vt = entry
                    cluster._handle_violation(pid, name, detail, at, vt)
                elif tag == "event":
                    _, kind, detail, at, vt = entry
                    if kind == "crash":
                        cluster._record_trace(pid, "crash", "process crashed")
                        hooks.on_crash(pid, at, vt)
                    elif kind == "recover":
                        cluster._record_trace(pid, "recover", "process recovered")
                        hooks.on_recover(pid, at, vt)
                    elif kind == "corrupt":
                        cluster._record_trace(pid, "corrupt", detail)
                        hooks.on_corruption(pid, detail, at, vt)
                    probe_round_dirty = True
                elif tag == "counters":
                    recording["rng_draws"] += entry[1]
                    recording["clock_reads"] += entry[2]

        def handle_item(pid: str, item) -> None:
            tag = item[0]
            if tag == "flush":
                handle_flush(item[1], item[2])
            elif tag == "probe_ack":
                if item[2] == probe_seq:
                    probe_acks[item[1]] = item[3]
            elif tag == "result":
                results[item[1]] = item[2]
                if item[2].get("error"):
                    cluster._record_trace(item[1], "error", item[2]["error"])
                    cluster.halt(f"worker-error:{item[1]}")
            elif tag == "__lost__":
                live_pids.discard(pid)
                if lost_is_error and pid not in results:
                    cluster._record_trace(pid, "error", "worker socket closed unexpectedly")
                    cluster.halt(f"worker-lost:{pid}")
            elif tag == "__stalled__":
                if lost_is_error:
                    cluster._record_trace(
                        pid, "error", "worker stopped draining its socket (stalled)"
                    )
                    cluster.halt(f"worker-stalled:{pid}")
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unexpected uplink item {tag!r} from {pid!r}")

        def drain_uplink(idle_timeout: float) -> None:
            """Handle everything queued by the shard readers, in arrival order."""
            try:
                pid, item = uplink.get(timeout=idle_timeout)
            except queue_module.Empty:
                return
            while True:
                handle_item(pid, item)
                try:
                    pid, item = uplink.get_nowait()
                except queue_module.Empty:
                    return

        run_started = False
        try:
            # 1. shard routers: bound + listening, loops NOT yet running —
            #    workers must fork before any router thread exists (the
            #    classic fork-with-threads hazard); their connects queue
            #    in the listen backlog until the loops start.
            for shard_id in range(shard_count):
                shards.append(ShardRouter(shard_id, options, uplink, socket_dir))
            self.socket_paths = [s.socket_path for s in shards if s.socket_path]
            # 2. workers
            for index, pid in enumerate(pids):
                shard = shards[self.placement[pid]]
                worker = ctx.Process(
                    target=_net_worker_main,
                    args=(
                        pid,
                        factories[pid],
                        pids,
                        config.seed,
                        shard.address,
                        options,
                        config.check_invariants,
                        wall_limit,
                        corruptions_by_pid.get(pid, []),
                        # disjoint per-worker msg_id ranges (router range is
                        # below 10^9, used for injected duplicates)
                        (index + 1) * 1_000_000_000,
                    ),
                    daemon=True,
                )
                worker.start()
                workers.append(worker)
            # 3. now the shard loops may spin up their threads
            for shard in shards:
                shard.start()

            def submit(pid: str, item: Tuple) -> None:
                shards[self.placement[pid]].submit(pid, item)

            hooks.on_run_start(0.0)
            run_started = True
            while True:
                update_now()
                if elapsed() >= wall_limit:
                    reason = "time-limit"
                    break
                if cluster._halted:
                    reason = cluster._halt_reason or "halted"
                    break
                # fault schedule (crash / recover control frames; in-stream,
                # so they cannot leapfrog deliveries already submitted)
                while schedule_index < len(schedule) and schedule[schedule_index][0] <= elapsed():
                    _, _, kind, target = schedule[schedule_index]
                    schedule_index += 1
                    submit(target, (kind,))
                    if kind == "crash":
                        crashed_pids.add(target)
                    else:
                        crashed_pids.discard(target)
                    probe_round_dirty = True
                # delayed messages whose injection deadline passed
                while delayed and delayed[0][0] <= elapsed():
                    _, _, message = heapq.heappop(delayed)
                    enqueue(message.dst, message)
                # drain worker uplinks (flushes, acks, results, losses)
                drain_uplink(0.002)
                # ship this tick's deliveries, one batch per destination.
                # Swap the batch list out FIRST: routing inside drain_uplink
                # may append to pending_out for this very destination.
                for dst in pending_out:
                    batch = pending_out[dst]
                    if not batch:
                        continue
                    pending_out[dst] = []
                    if options.batch_deliveries:
                        for cut in range(0, len(batch), options.max_batch_messages):
                            piece = batch[cut:cut + options.max_batch_messages]
                            submit(dst, ("batch", piece))
                            delivered_batches += 1
                            max_batch = max(max_batch, len(piece))
                    else:
                        for entry in batch:
                            submit(dst, ("batch", [entry]))
                            delivered_batches += 1
                            max_batch = max(max_batch, 1)
                # quiescence detection (same probe protocol as mp)
                busy = (
                    in_flight
                    or delayed
                    or schedule_index < len(schedule)
                    or any(pending_out.values())
                )
                if busy:
                    probe_acks.clear()
                    probe_round_dirty = True
                    continue
                if probe_round_dirty or len(probe_acks) < len(pids):
                    if probe_round_dirty and elapsed() - last_probe_at >= probe_interval:
                        probe_seq += 1
                        probe_acks.clear()
                        probe_round_dirty = False
                        last_probe_at = elapsed()
                        for pid in pids:
                            submit(pid, ("probe", probe_seq))
                    continue
                sent_total = sum(ack["sent_total"] for ack in probe_acks.values())
                armed = sum(
                    ack["timers_armed"] + ack.get("corruptions_pending", 0)
                    for ack in probe_acks.values()
                )
                if sent_total == uplink_messages and armed == 0 and not in_flight:
                    reason = "quiescent"
                    break
                probe_round_dirty = True
        finally:
            update_now()
            try:
                lost_is_error = False
                for pid in pids:
                    try:
                        shards[self.placement[pid]].submit(pid, ("stop",))
                    except Exception:  # pragma: no cover - defensive teardown
                        pass
                # collect results (late flushes keep hooks complete)
                collect_deadline = wall_time.monotonic() + 5.0
                while len(results) < len(pids) and wall_time.monotonic() < collect_deadline:
                    if not live_pids and uplink.empty():
                        break  # every connection closed and queue drained
                    drain_uplink(0.1)
            finally:
                for shard in shards:
                    shard.close()
                for worker in workers:
                    worker.join(timeout=2.0)
                    if worker.is_alive():  # pragma: no cover - defensive cleanup
                        worker.terminate()
                        worker.join(timeout=1.0)
                if socket_dir is not None:
                    shutil.rmtree(socket_dir, ignore_errors=True)
                if run_started:  # never fire an end without its start
                    hooks.on_run_end(self._now)

        # a worker error discovered while collecting results must not
        # masquerade as a clean quiescent run
        if reason == "quiescent":
            for pid, result in results.items():
                if result.get("error"):
                    reason = f"worker-error:{pid}"
                    break
        self.worker_stats = results
        codec = net_transport.new_socket_stats()
        for shard in shards:
            for key, value in shard.stats.items():
                codec[key] = codec.get(key, 0) + value
        for result in results.values():
            for key, value in result.get("transport", {}).items():
                codec[key] = codec.get(key, 0) + value
        parent_writes = sum(shard.stats["socket_writes"] for shard in shards)
        worker_writes = sum(
            result.get("transport", {}).get("socket_writes", 0)
            for result in results.values()
        )
        self.transport_stats = {
            "messages_routed": routed,
            "messages_delivered": sum(r.get("received", 0) for r in results.values()),
            "dropped": dropped,
            "duplicated": duplicated,
            "dead_letters": dead_letters,
            "shards": shard_count,
            "parent_socket_writes": parent_writes,
            "worker_socket_writes": worker_writes,
            "socket_writes": parent_writes + worker_writes,
            "socket_bytes": codec["socket_bytes"],
            "delivery_batches": delivered_batches,
            "max_batch": max_batch,
            # serialization accounting (identical keys on pipe/shm/net)
            "pickled_bytes": codec["pickled_bytes"],
            "ring_frames": codec["ring_frames"],
            "ring_bytes": codec["ring_bytes"],
            "oversize_frames": codec["oversize_frames"],
            "nudges": codec["nudges"],
            "messages_fast": codec["messages_fast"],
            "messages_pickled": codec["messages_pickled"],
            # recording depth: per-worker counters batched into flushes
            "rng_draws": recording["rng_draws"],
            "clock_reads": recording["clock_reads"],
        }
        events = sum(
            result.get("received", 0) + result.get("timer_fires", 0)
            for result in results.values()
        )
        return RunResult(
            events_executed=events,
            final_time=self._now,
            stopped_reason=reason,
            violations=list(cluster._violations),
            network_stats={
                "delivered": sum(r.get("received", 0) for r in results.values()),
                "dropped": dropped,
                "duplicated": duplicated,
            },
            process_states={
                pid: dict(result.get("state", {})) for pid, result in results.items()
            },
            trace=list(cluster._trace),
        )
