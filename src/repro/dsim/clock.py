"""Logical clocks: Lamport scalar clocks and vector clocks.

The Scroll orders recorded actions and the Time Machine decides whether a
set of local checkpoints forms a *consistent* global state.  Both
questions reduce to the happens-before relation of Lamport, which these
clocks track.

Two clock implementations are provided:

* :class:`LamportClock` — a scalar clock.  Cheap, totally ordered when
  combined with a process id tie-break, but only *consistent with*
  happens-before (it cannot decide concurrency).
* :class:`VectorClock` — one entry per process.  Precisely characterises
  happens-before: ``a -> b`` iff ``a.vc < b.vc``.

Both are value-semantic: ``tick``/``merge`` return information but mutate
the clock in place, while :meth:`snapshot` returns an immutable copy that
can be attached to messages, log entries and checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple


class LamportClock:
    """A classic Lamport scalar clock.

    The clock value is advanced on every local event (``tick``) and on
    every message receipt (``merge``), where it jumps past the sender's
    timestamp.  Timestamps drawn from a Lamport clock respect causality:
    if event *a* happens before event *b* then ``ts(a) < ts(b)`` — but
    the converse does not hold.
    """

    __slots__ = ("pid", "_time")

    def __init__(self, pid: str, start: int = 0) -> None:
        if start < 0:
            raise ValueError("Lamport clock cannot start at a negative time")
        self.pid = pid
        self._time = int(start)

    @property
    def time(self) -> int:
        """Current clock value (without advancing it)."""
        return self._time

    def tick(self) -> int:
        """Advance the clock for a local event and return the new value."""
        self._time += 1
        return self._time

    def merge(self, other_time: int) -> int:
        """Merge a timestamp received in a message and return the new value.

        Implements the receive rule: ``C := max(C, C_msg) + 1``.
        """
        if other_time < 0:
            raise ValueError("received a negative Lamport timestamp")
        self._time = max(self._time, int(other_time)) + 1
        return self._time

    def snapshot(self) -> int:
        """Return the current value; provided for API symmetry with VectorClock."""
        return self._time

    def restore(self, value: int) -> None:
        """Reset the clock to ``value`` (used when rolling back a process)."""
        if value < 0:
            raise ValueError("cannot restore a Lamport clock to a negative time")
        self._time = int(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LamportClock(pid={self.pid!r}, time={self._time})"


@dataclass(frozen=True)
class VectorTimestamp:
    """An immutable vector timestamp, comparable under happens-before.

    Comparisons implement the standard partial order:

    * ``a <= b``  iff every component of ``a`` is <= the matching
      component of ``b`` (missing components count as zero);
    * ``a < b``   iff ``a <= b`` and ``a != b``;
    * ``a.concurrent(b)`` iff neither ``a <= b`` nor ``b <= a``.
    """

    entries: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    @staticmethod
    def from_mapping(mapping: Mapping[str, int]) -> "VectorTimestamp":
        """Build a timestamp from a pid->counter mapping, dropping zero entries."""
        items = tuple(sorted((pid, int(count)) for pid, count in mapping.items() if count))
        return VectorTimestamp(items)

    def as_dict(self) -> Dict[str, int]:
        """Return the timestamp as a plain dictionary (zero entries omitted)."""
        return dict(self.entries)

    def component(self, pid: str) -> int:
        """Return the counter recorded for ``pid`` (zero if absent)."""
        for key, value in self.entries:
            if key == pid:
                return value
        return 0

    def __le__(self, other: "VectorTimestamp") -> bool:
        mine = self.as_dict()
        theirs = other.as_dict()
        return all(theirs.get(pid, 0) >= count for pid, count in mine.items())

    def __lt__(self, other: "VectorTimestamp") -> bool:
        return self != other and self <= other

    def __ge__(self, other: "VectorTimestamp") -> bool:
        return other <= self

    def __gt__(self, other: "VectorTimestamp") -> bool:
        return other < self

    def concurrent(self, other: "VectorTimestamp") -> bool:
        """True when neither timestamp happens before the other."""
        return not (self <= other) and not (other <= self)

    def merge(self, other: "VectorTimestamp") -> "VectorTimestamp":
        """Return the component-wise maximum of the two timestamps."""
        merged = self.as_dict()
        for pid, count in other.entries:
            merged[pid] = max(merged.get(pid, 0), count)
        return VectorTimestamp.from_mapping(merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{pid}:{count}" for pid, count in self.entries)
        return f"VT({inner})"


class VectorClock:
    """A per-process vector clock.

    ``tick`` increments the owner's component; ``merge`` takes the
    component-wise maximum with a received timestamp and then ticks.  The
    resulting timestamps characterise happens-before exactly, which the
    recovery-line computation relies on.

    ``snapshot`` runs on every recorded action (twice per delivered
    message), so the sorted order of the non-zero components is cached
    and invalidated only when a component first becomes non-zero —
    ticks and routine merges never pay the sort.
    """

    __slots__ = ("pid", "_counters", "_order")

    def __init__(self, pid: str, initial: Mapping[str, int] | None = None) -> None:
        self.pid = pid
        self._counters: Dict[str, int] = dict(initial or {})
        self._counters.setdefault(pid, 0)
        self._order: Tuple[str, ...] | None = None

    def tick(self) -> VectorTimestamp:
        """Advance the local component and return the new timestamp."""
        counters = self._counters
        value = counters.get(self.pid, 0) + 1
        counters[self.pid] = value
        if value == 1:
            self._order = None  # own component just became visible
        return self.snapshot()

    def merge(self, other: VectorTimestamp) -> VectorTimestamp:
        """Absorb a received timestamp (component-wise max), then tick."""
        counters = self._counters
        for pid, count in other.entries:
            current = counters.get(pid, 0)
            if count > current:
                counters[pid] = count
                if current == 0:
                    self._order = None  # a new component became visible
        return self.tick()

    def snapshot(self) -> VectorTimestamp:
        """Return an immutable copy of the current vector."""
        order = self._order
        if order is None:
            order = self._order = tuple(
                sorted(pid for pid, count in self._counters.items() if count)
            )
        counters = self._counters
        return VectorTimestamp(tuple((pid, counters[pid]) for pid in order))

    def restore(self, timestamp: VectorTimestamp) -> None:
        """Reset the clock to ``timestamp`` (used on rollback)."""
        self._counters = timestamp.as_dict()
        self._counters.setdefault(self.pid, 0)
        self._order = None

    def component(self, pid: str) -> int:
        """Return the current counter for ``pid``."""
        return self._counters.get(pid, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorClock(pid={self.pid!r}, {self._counters})"


def happens_before(a: VectorTimestamp, b: VectorTimestamp) -> bool:
    """Return True when event ``a`` causally precedes event ``b``."""
    return a < b


def concurrent(a: VectorTimestamp, b: VectorTimestamp) -> bool:
    """Return True when neither event causally precedes the other."""
    return a.concurrent(b)


def merge_all(timestamps: Iterable[VectorTimestamp]) -> VectorTimestamp:
    """Component-wise maximum of an iterable of timestamps."""
    result = VectorTimestamp()
    for ts in timestamps:
        result = result.merge(ts)
    return result
