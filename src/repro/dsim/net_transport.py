"""Socket framing for the net backend: the shm codec over a byte stream.

The net transport moves the exact frames :mod:`repro.dsim.shm_ring`
defines — marshal-packed flat ``flush``/``batch`` payloads, pickled
control — over TCP or Unix-domain stream sockets instead of a
shared-memory ring.  A ring is a bounded FIFO of self-delimiting
frames; a stream socket is an unbounded FIFO of bytes, so the only new
layer here is *length-prefixed framing*:

    [u32 frame length (big endian)] [frame bytes]

where the frame bytes are byte-for-byte what :func:`shm_ring.encode_item`
would have written into a ring (tag byte + marshal/pickle payload).
Frames larger than ``max_frame_bytes`` are split into the ring's own
``_F_CHUNK`` pieces (``[tag][last? u8][part bytes]``) so a receiver's
per-frame reassembly buffer stays bounded no matter what an application
ships as a payload.  Reusing the codec verbatim keeps the delivery hot
path out of ``pickle`` and keeps the accounting keys
(``pickled_bytes`` / ``messages_fast`` / ``nudges`` / ...) identical,
so the parity and benchmark plumbing built for the pipe and shm
transports applies to sockets unchanged.

Two differences from the ring transport, both simplifications:

* there is no separate control plane — a socket is one ordered stream,
  so probes, acks, results and the hello handshake travel as pickled
  frames *in-line* (crash/recover control was already in-stream on shm
  via ``_ORDERED_CONTROL``), and crash-vs-delivery ordering is free;
* there are no wakeup nudges — ``select`` observes socket data
  directly, so ``stats["nudges"]`` stays 0 by construction.

This module is dsim-internal (enforced by ``scripts/check.sh``): the
public way to run on sockets is ``backend="net"`` on a Scenario,
``FixDConfig`` or ``Cluster``.
"""

from __future__ import annotations

import os
import select
import socket
import struct
import time as wall_time
from typing import Dict, List, Optional, Tuple

from repro.dsim.shm_ring import (
    _F_CHUNK,
    _encode_pickled,
    TransportError,
    decode_item,
    encode_item,
    new_stats,
)

#: wire header: one u32 big-endian length per frame
_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: frames larger than this split into ``_F_CHUNK`` pieces on the wire,
#: mirroring the ring's oversize protocol (there it is ``capacity //
#: OVERSIZE_DIVISOR``; a stream has no capacity, so the bound is explicit)
DEFAULT_MAX_FRAME_BYTES = 256 * 1024

#: socket families the net backend can run on
SOCKET_FAMILIES = ("unix", "tcp")


def new_socket_stats() -> Dict[str, int]:
    """The shared transport-accounting dict plus the socket counters.

    A strict superset of :func:`shm_ring.new_stats` so every consumer of
    the common keys (parity suite, benchmarks, Outcome.transport) reads
    socket runs without change; ``socket_writes`` is the net batching
    benchmark's syscall metric (one ``sendall`` per submitted item).
    """
    stats = new_stats()
    stats["socket_writes"] = 0  # sendall calls (the syscall/batching metric)
    stats["socket_bytes"] = 0   # wire bytes written, headers included
    return stats


def encode_wire(
    item: Tuple, stats: Dict[str, int], max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Encode one transport item as length-prefixed wire bytes.

    Data items (``flush``/``batch``) take :func:`shm_ring.encode_item`'s
    marshal fast path; everything else — including order-insensitive
    control, which on a stream socket has no separate plane to ride —
    becomes a pickled frame, counted in ``stats`` exactly as the shm
    transport counts its pipe/control traffic.  Oversize frames are
    split into ``_F_CHUNK`` pieces, each its own length-prefixed wire
    frame, reassembled transparently by :class:`FrameReassembler`.
    """
    frame = encode_item(item, stats)
    if frame is None:
        frame = _encode_pickled(item, stats)
    total = len(frame)
    if total <= max_frame_bytes:
        return _HEADER.pack(total) + frame
    stats["oversize_frames"] += 1
    out = bytearray()
    view = memoryview(frame)
    for cut in range(0, total, max_frame_bytes):
        part = view[cut:cut + max_frame_bytes]
        chunk = bytearray((_F_CHUNK, 1 if cut + max_frame_bytes >= total else 0))
        chunk += part
        out += _HEADER.pack(len(chunk))
        out += chunk
    return bytes(out)


class FrameReassembler:
    """Incremental wire decoder: bytes in, decoded transport items out.

    Handles arbitrary read fragmentation — a frame may arrive one byte
    at a time or many frames in one ``recv`` — and reassembles
    ``_F_CHUNK`` sequences exactly like the ring receiver does.  Feed
    order is the stream order, so decoded items preserve the sender's
    FIFO.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._chunk_buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of their frame."""
        return len(self._buf)

    def feed(self, data) -> List[Tuple]:
        """Absorb ``data`` and return every item it completes, in order."""
        buf = self._buf
        buf += data
        items: List[Tuple] = []
        offset = 0
        limit = len(buf)
        while limit - offset >= HEADER_BYTES:
            (length,) = _HEADER.unpack_from(buf, offset)
            if length < 1:
                raise TransportError("corrupt wire frame: zero-length frame")
            end = offset + HEADER_BYTES + length
            if end > limit:
                break  # partial frame: wait for more bytes
            frame = bytes(buf[offset + HEADER_BYTES:end])
            offset = end
            if frame[0] == _F_CHUNK:
                self._chunk_buf += frame[2:]
                if frame[1]:  # last chunk: decode the reassembled frame
                    whole = self._chunk_buf
                    self._chunk_buf = bytearray()
                    items.append(decode_item(whole))
            else:
                items.append(decode_item(frame))
        if offset:
            del buf[:offset]
        return items


def listen_socket(
    family: str,
    path: Optional[str] = None,
    buffer_bytes: Optional[int] = None,
) -> Tuple[socket.socket, object]:
    """Create a listening router socket; returns ``(socket, address)``.

    ``family="unix"`` binds ``path`` (the returned address); ``"tcp"``
    binds an ephemeral loopback port (the address is the
    ``(host, port)`` tuple workers connect to).  The socket comes back
    non-blocking, ready for ``loop.sock_accept``.
    """
    if family == "unix":
        if not path:
            raise TransportError("unix listen sockets need an explicit path")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(path)
        except OSError as exc:
            sock.close()
            raise TransportError(f"cannot bind unix socket {path!r}: {exc}") from exc
        address: object = path
    elif family == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        address = sock.getsockname()
    else:
        raise TransportError(
            f"unknown socket family {family!r}; expected one of {SOCKET_FAMILIES}"
        )
    if buffer_bytes:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
    sock.listen(128)
    sock.setblocking(False)
    return sock, address


def connect_with_retry(
    address,
    family: str,
    connect_timeout: float = 5.0,
    retries: int = 20,
    backoff: float = 0.05,
    buffer_bytes: Optional[int] = None,
) -> socket.socket:
    """Connect to a router with bounded retry and exponential backoff.

    Workers race router startup (the listening socket exists before the
    accept loop runs, but a TCP connect can still transiently fail), so
    each attempt waits ``backoff * 2**n`` seconds, capped at one second.
    Raises :class:`TransportError` after ``retries`` failures.
    """
    last_error: Optional[OSError] = None
    delay = max(0.001, backoff)
    for _ in range(max(1, retries)):
        if family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if buffer_bytes:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, buffer_bytes)
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, buffer_bytes)
            if family == "tcp":
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(connect_timeout)
            sock.connect(address)
            return sock
        except OSError as exc:
            last_error = exc
            sock.close()
            wall_time.sleep(delay)
            delay = min(delay * 2, 1.0)
    raise TransportError(
        f"could not connect to router at {address!r} "
        f"after {retries} attempt(s): {last_error}"
    )


class SocketEndpoint:
    """The worker side of the net transport, behind the endpoint interface.

    The same surface :class:`~repro.dsim.shm_ring.PipeEndpoint` and
    ``ShmEndpoint`` expose (``send``/``send_control``/``poll``/``drain``/
    ``close``/``stats``), so the mp worker loop runs on sockets without
    modification.  One blocking socket carries everything: sends are
    ``sendall`` calls bounded by ``write_timeout`` (a router that stops
    draining surfaces as :class:`TransportError`, not a hang), receives
    go through ``select`` plus the incremental :class:`FrameReassembler`.
    """

    name = "socket"

    def __init__(
        self,
        sock: socket.socket,
        write_timeout: float = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._sock = sock
        sock.setblocking(True)
        sock.settimeout(write_timeout)
        self._write_timeout = write_timeout
        self._max_frame_bytes = max_frame_bytes
        self._reassembler = FrameReassembler()
        self._eof = False
        self.closing = False  # teardown flag (endpoint interface)
        self.stats = new_socket_stats()

    # -- send --------------------------------------------------------------
    def send(self, item: Tuple) -> None:
        stats = self.stats
        stats["sends"] += 1
        wire = encode_wire(item, stats, self._max_frame_bytes)
        try:
            # one sendall per item: chunked pieces of one oversize frame
            # are contiguous on the wire, so they still cost one syscall
            self._sock.sendall(wire)
        except socket.timeout:
            raise TransportError(
                f"socket write of {len(wire)} bytes timed out after "
                f"{self._write_timeout}s (router stuck, gone, or tearing down)"
            ) from None
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise TransportError(f"transport socket closed by peer: {exc}") from None
        stats["socket_writes"] += 1
        stats["socket_bytes"] += len(wire)

    #: one ordered stream: control cannot leapfrog data, so the data
    #: path and the control path are the same path
    send_control = send

    # -- receive -----------------------------------------------------------
    def data_ready(self) -> bool:
        return False  # everything arrives via the socket: poll() covers it

    def poll(self, timeout: float) -> bool:
        if self._eof:
            return True  # let drain() raise the EOF
        try:
            readable, _, _ = select.select([self._sock], [], [], max(0.0, timeout))
        except (OSError, ValueError):  # closed under us: surface in drain()
            self._eof = True
            return True
        return bool(readable)

    def drain(self) -> List[Tuple]:
        items: List[Tuple] = []
        while not self._eof:
            try:
                readable, _, _ = select.select([self._sock], [], [], 0)
            except (OSError, ValueError):
                self._eof = True
                break
            if not readable:
                break
            try:
                data = self._sock.recv(1 << 16)
            except (ConnectionResetError, OSError):
                self._eof = True
                break
            if not data:
                self._eof = True
                break
            items.extend(self._reassembler.feed(data))
        if self._eof and not items:
            # deliver everything decoded before the EOF first; the next
            # drain() call raises with nothing lost (PipeEndpoint semantics)
            raise EOFError("transport socket closed")
        return items

    def drain_data(self) -> List[Tuple]:
        """Salvageable data after a peer death: nothing outlives a stream."""
        return []

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def unlink_quietly(path: Optional[str]) -> None:
    """Remove a unix socket file, tolerating its absence."""
    if not path:
        return
    try:
        os.unlink(path)
    except OSError:
        pass
