"""Zero-copy shared-memory ring transport for the multiprocessing backend.

The batched pipe transport (PR 3) made the mp substrate ~2x faster, but
every batch still pays a full ``pickle`` of its message list plus two
kernel copies through a 64 KiB pipe.  On hot fan-in workloads (many
workers funnelling results into one process) that serialization is the
dominant cost — and TFix+-style production diagnosis only works if the
recording substrate is cheap enough to leave on.  This module removes
pickle from the hot path entirely:

* :class:`SpscRing` — a single-producer/single-consumer byte ring over
  one ``multiprocessing.shared_memory.SharedMemory`` segment, carrying
  length-prefixed frames with explicit wraparound.  The head and tail
  cursors are published through a compact seqlock (sequence word +
  value word, writer bumps the sequence to odd, writes, bumps to even;
  readers retry on a torn or in-progress read), so neither side ever
  takes a lock or makes a syscall to move data.  Writes block with
  timeout when the ring is full — that is the transport's backpressure.

* a **frame codec** — the two hot item shapes (worker ``flush`` logs
  and router ``batch`` deliveries) are flattened to builtin tuples
  (messages become 10-field tuples, vector timestamps their entries
  tuples) and packed at C speed in one :mod:`marshal` call; only
  payloads that are not builtin values fall back to a pickled frame.
  :mod:`struct` does the fixed-layout work — length prefixes, the
  wraparound marker, seqlock cursors, spill sequence numbers — and the
  reader decodes straight out of the shared segment via ``memoryview``
  (no kernel copies; the common wordcount/kvstore traffic never touches
  ``pickle`` at all).

* **control plane on the pipe** — only order-insensitive control
  traffic (probes and acks, stop, results) travels on the existing
  duplex pipe; every data item — and the crash/recover control whose
  order relative to deliveries is observable — takes the ring, with
  oversize frames flowing as bounded chunks the receiver reassembles in
  place.
  The single ring FIFO therefore remains the one serialization point
  for a worker's observable log, which is what the ordered single-log
  flush protocol requires.  After committing ring frames a sender ships
  a one-byte pipe *nudge* (coalesced to at most one outstanding) so a
  receiver asleep in ``select`` wakes immediately — ring writes alone
  are invisible to it.

Lifecycle: the parent creates both segments of a :class:`RingPair` and
is the only side that ever unlinks them.  Workers attach by name and
immediately drop the extra ``resource_tracker`` registration CPython
adds on attach (the segment belongs to the parent; without the
unregister every worker exit is reported as a leak).  The parent guards
against abnormal exits with a pid-guarded ``atexit`` hook plus
``weakref.finalize`` — covering normal exit, worker crash and parent
interpreter death; a SIGKILL'd parent is covered by the resource
tracker itself, which outlives it and unlinks registered segments.

This module is backend-internal: importable only from ``repro.dsim``
(see the ``scripts/check.sh`` boundary guard); benchmarks that measure
the transport itself may opt in with a ``# facade-ok`` marker.
"""

from __future__ import annotations

import atexit
import marshal
import os
import pickle
import struct
import time
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL

#: ring geometry: two seqlock cursors a cache line apart, then the data
_TAIL_OFFSET = 0
_HEAD_OFFSET = 64
_DATA_OFFSET = 128
_WRAP = 0xFFFFFFFF  # length sentinel: "rest of the ring is padding"

DEFAULT_RING_BYTES = 1 << 20
#: frames larger than capacity // OVERSIZE_DIVISOR spill to the pipe
OVERSIZE_DIVISOR = 4
#: one-byte framed wakeup shipped on the pipe after ring writes
_NUDGE = b"\x00"


class TransportError(SimulationError):
    """The shared-memory transport could not move a frame."""


class RingBackpressureTimeout(TransportError):
    """A ring write waited past its timeout (consumer stuck or gone)."""


# ----------------------------------------------------------------------
# seqlock cursors
# ----------------------------------------------------------------------
class _SeqCursor:
    """One monotonically increasing u64 published through a seqlock.

    Exactly one side writes the cursor; the other only reads.  Python
    cannot issue atomic stores, so the writer brackets the value store
    with sequence-word bumps (odd = write in progress) and the reader
    retries until it observes a stable, even sequence.  On x86's total
    store order this is sufficient; the retry loop also absorbs any
    torn 8-byte read.
    """

    __slots__ = ("_buf", "_offset")

    def __init__(self, buf, offset: int) -> None:
        self._buf = buf
        self._offset = offset

    def store(self, value: int) -> None:
        buf, offset = self._buf, self._offset
        (seq,) = struct.unpack_from("<Q", buf, offset)
        struct.pack_into("<Q", buf, offset, seq + 1)
        struct.pack_into("<Q", buf, offset + 8, value)
        struct.pack_into("<Q", buf, offset, seq + 2)

    def load(self) -> int:
        buf, offset = self._buf, self._offset
        # fast path: an uncontended read stabilises on the first try
        for _ in range(64):
            (seq_before,) = struct.unpack_from("<Q", buf, offset)
            (value,) = struct.unpack_from("<Q", buf, offset + 8)
            (seq_after,) = struct.unpack_from("<Q", buf, offset)
            if seq_before == seq_after and not (seq_before & 1):
                return value
        # Contended: the writer may simply be descheduled mid-store (a
        # live peer on a loaded single-core box), so *yield* between
        # retries — spinning would burn exactly the CPU the writer needs
        # to finish publishing.  Only after a generous wall deadline do
        # we conclude the writer died mid-store (seq left odd forever)
        # and raise, keeping the reader's worker-lost path live instead
        # of hanging it here.
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            time.sleep(50e-6)
            (seq_before,) = struct.unpack_from("<Q", buf, offset)
            (value,) = struct.unpack_from("<Q", buf, offset + 8)
            (seq_after,) = struct.unpack_from("<Q", buf, offset)
            if seq_before == seq_after and not (seq_before & 1):
                return value
        raise TransportError(
            "ring cursor never stabilised: the peer died mid-publish"
        )


# ----------------------------------------------------------------------
# the SPSC ring
# ----------------------------------------------------------------------
class SpscRing:
    """Length-prefixed frames in a shared-memory byte ring (SPSC).

    ``head`` and ``tail`` are free-running byte counters (they include
    wrap padding); ``counter % capacity`` is the buffer offset.  Frames
    are always stored contiguously: a frame that would straddle the end
    of the buffer is preceded by a ``_WRAP`` marker (or, when fewer than
    four bytes remain, by implicit padding both sides skip by rule), so
    the consumer can always hand the codec one contiguous
    ``memoryview``.
    """

    def __init__(self, buf, capacity: int) -> None:
        self._buf = buf
        self.capacity = capacity
        self._tail = _SeqCursor(buf, _TAIL_OFFSET)
        self._head = _SeqCursor(buf, _HEAD_OFFSET)
        # producer-local mirror of tail / consumer-local mirror of head;
        # each side also caches the *other* cursor to avoid re-reading
        # the seqlock when there is obviously room/data.
        self._tail_local = self._tail.load()
        self._head_local = self._head.load()

    # -- producer ----------------------------------------------------------
    def try_write(self, payload) -> bool:
        size = len(payload)
        if 4 + size > self.capacity:
            raise TransportError(
                f"frame of {size} bytes exceeds ring capacity {self.capacity}; "
                "oversize frames must spill to the pipe"
            )
        tail = self._tail_local
        position = tail % self.capacity
        room = self.capacity - position
        pad = room if room < 4 + size else 0
        needed = pad + 4 + size
        if self.capacity - (tail - self._head_local) < needed:
            self._head_local = self._head.load()
            if self.capacity - (tail - self._head_local) < needed:
                return False
        buf = self._buf
        if pad:
            if room >= 4:
                struct.pack_into("<I", buf, _DATA_OFFSET + position, _WRAP)
            tail += pad
            position = 0
        struct.pack_into("<I", buf, _DATA_OFFSET + position, size)
        start = _DATA_OFFSET + position + 4
        buf[start:start + size] = payload
        tail += 4 + size
        self._tail_local = tail
        self._tail.store(tail)
        return True

    def write(
        self,
        payload,
        timeout: Optional[float] = None,
        abort: Optional[Callable[[], bool]] = None,
        on_wait: Optional[Callable[[], None]] = None,
    ) -> bool:
        """Write with blocking backpressure; False on timeout/abort.

        ``on_wait`` runs on every wait iteration *instead of* the
        exponential sleep — the router hangs its drain-the-uplinks loop
        here, which is what lets it write rings directly (threadless)
        without a deadlock: waiting for space actively frees the peer.
        """
        if self.try_write(payload):
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        pause = 50e-6
        while True:
            if abort is not None and abort():
                return False
            if on_wait is not None:
                on_wait()
            if self.try_write(payload):
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            if on_wait is None:
                time.sleep(pause)
                pause = min(pause * 2, 0.002)

    def consumer_progress(self) -> int:
        """The consumer's published head (producer side; nudge coalescing)."""
        return self._head.load()

    # -- consumer ----------------------------------------------------------
    def readable(self) -> bool:
        if self._head_local < self._tail_local:
            return True
        self._tail_local = self._tail.load()
        return self._head_local < self._tail_local

    def read(self, handler) -> int:
        """Feed every complete frame to ``handler`` as a zero-copy view.

        ``handler(view)`` must return True to consume the frame (its
        view is only valid during the call — the space is reused as soon
        as the head advances) or False to leave it unconsumed and stop —
        the spill protocol's "wait for the out-of-band item" signal.
        Returns the number of frames consumed.
        """
        tail = self._tail.load()
        self._tail_local = tail
        head = self._head_local
        buf = self._buf
        consumed = 0
        while head < tail:
            position = head % self.capacity
            room = self.capacity - position
            if room < 4:
                head += room
                continue
            (size,) = struct.unpack_from("<I", buf, _DATA_OFFSET + position)
            if size == _WRAP:
                head += room
                continue
            start = _DATA_OFFSET + position + 4
            frame = buf[start:start + size]
            try:
                keep_going = handler(frame)
            finally:
                if isinstance(frame, memoryview):
                    frame.release()
            if not keep_going:
                break
            head += 4 + size
            consumed += 1
            # publish per frame so a blocked producer unblocks promptly
            self._head_local = head
            self._head.store(head)
        self._head_local = head
        self._head.store(head)
        return consumed


# ----------------------------------------------------------------------
# shared-memory segment lifecycle
# ----------------------------------------------------------------------
def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without a resource_tracker entry.

    On POSIX CPython registers a segment with the resource tracker on
    *attach* as well as on create.  The segment belongs to the creating
    parent (the only side that unlinks), so a worker registration is
    spurious: under ``fork`` the worker shares the parent's tracker and
    an unregister-after-attach would erase the *parent's* entry, while
    leaving it in place makes every worker exit report a leak.  The
    clean fix is to never register — suppress ``register`` for the
    duration of the attach (Python 3.13 formalises this as
    ``track=False``).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13
        pass
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


_LIVE_SEGMENTS: Dict[int, Tuple[int, shared_memory.SharedMemory]] = {}
_atexit_installed = False


def _cleanup_segment(key: int) -> None:
    entry = _LIVE_SEGMENTS.pop(key, None)
    if entry is None:
        return
    owner_pid, shm = entry
    if os.getpid() != owner_pid:
        # a forked child inherited the registry; the segment is not ours
        return
    try:
        shm.close()
    except Exception:  # pragma: no cover - already closed
        pass
    try:
        shm.unlink()
    except Exception:  # pragma: no cover - already unlinked
        pass


def _atexit_cleanup() -> None:  # pragma: no cover - interpreter shutdown
    for key in list(_LIVE_SEGMENTS):
        _cleanup_segment(key)


def _register_segment(shm: shared_memory.SharedMemory) -> int:
    global _atexit_installed
    if not _atexit_installed:
        atexit.register(_atexit_cleanup)
        _atexit_installed = True
    key = id(shm)
    _LIVE_SEGMENTS[key] = (os.getpid(), shm)
    return key


class RingPair:
    """Both rings of one worker link (parent side owns the segments)."""

    def __init__(self, ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        if ring_bytes < 4096:
            raise TransportError("ring_bytes must be at least 4096")
        size = _DATA_OFFSET + ring_bytes
        self.ring_bytes = ring_bytes
        self._down_shm = shared_memory.SharedMemory(create=True, size=size)
        self._up_shm = shared_memory.SharedMemory(create=True, size=size)
        for shm in (self._down_shm, self._up_shm):
            shm.buf[:_DATA_OFFSET] = b"\x00" * _DATA_OFFSET
        self._keys = [_register_segment(self._down_shm), _register_segment(self._up_shm)]
        self._finalizer = weakref.finalize(
            self, _finalize_keys, tuple(self._keys)
        )
        self.down_ring = SpscRing(self._down_shm.buf, ring_bytes)  # parent -> worker
        self.up_ring = SpscRing(self._up_shm.buf, ring_bytes)      # worker -> parent
        self.segment_names = (self._down_shm.name, self._up_shm.name)

    def child_handle(self) -> "RingHandle":
        return RingHandle(self._down_shm.name, self._up_shm.name, self.ring_bytes)

    def close(self) -> None:
        """Close and unlink both segments (parent side, idempotent)."""
        self._finalizer.detach()
        for key in self._keys:
            _cleanup_segment(key)


def _finalize_keys(keys: Tuple[int, ...]) -> None:
    for key in keys:
        _cleanup_segment(key)


class RingHandle:
    """Picklable description a worker uses to attach to its ring pair."""

    def __init__(self, down_name: str, up_name: str, ring_bytes: int) -> None:
        self.down_name = down_name
        self.up_name = up_name
        self.ring_bytes = ring_bytes

    def attach(self) -> Tuple[SpscRing, SpscRing, Callable[[], None]]:
        """Attach both rings; returns (down, up, close_fn)."""
        down_shm = _attach_untracked(self.down_name)
        up_shm = _attach_untracked(self.up_name)

        def close() -> None:
            for shm in (down_shm, up_shm):
                try:
                    shm.close()
                except Exception:  # pragma: no cover - already closed
                    pass

        return (
            SpscRing(down_shm.buf, self.ring_bytes),
            SpscRing(up_shm.buf, self.ring_bytes),
            close,
        )


# ----------------------------------------------------------------------
# frame codec: flattened builtins, packed at C speed
# ----------------------------------------------------------------------
#
# The two hot item shapes (worker ``flush`` logs and router ``batch``
# deliveries) are *flattened* to builtin tuples — a Message becomes a
# 10-field tuple, a vector timestamp its entries tuple — and the whole
# item is then packed in one :mod:`marshal` call.  ``marshal`` is
# CPython's C serializer for builtin values: on the single-core boxes
# this repository targets, one C call beats both ``pickle`` (which pays
# per-instance class reduction for Message/VectorTimestamp objects) and
# any pure-Python ``struct`` loop over payload elements.  ``struct``
# still does the fixed-layout work — frame length prefixes, wraparound
# markers, seqlock cursors, spill sequence numbers.  Items whose
# payloads are not builtin (a custom class smuggled through a message)
# fall back to one pickled frame, counted in the transport stats.

class _Unencodable(Exception):
    """Internal signal: fall back to pickle for this item."""


def _flatten_message(message) -> Tuple:
    # a message restored from a frame carries its original flat tuple, so
    # the router re-ships it without paying a second flatten
    flat = message.__dict__.get("_flat")
    if flat is not None:
        return flat
    vt = message.vt
    return (
        message.src,
        message.dst,
        message.kind,
        message.msg_id,
        message.send_time,
        message.lamport,
        message.duplicate_of,
        None if vt is None else vt.entries,
        tuple(message.speculations) if message.speculations else (),
        message.payload,
    )


_EMPTY_SPECS: frozenset = frozenset()
# resolved lazily: clock/message import inside repro.dsim would cycle
_MESSAGE_CLS = None
_VT_CLS = None
_EMPTY_VT = None


def _resolve_classes() -> None:
    global _MESSAGE_CLS, _VT_CLS, _EMPTY_VT
    from repro.dsim.clock import VectorTimestamp
    from repro.dsim.message import Message

    _MESSAGE_CLS = Message
    _VT_CLS = VectorTimestamp
    _EMPTY_VT = VectorTimestamp()


def _restore_message(fields: Tuple):
    # Message is a frozen dataclass: populating __dict__ directly skips
    # ten object.__setattr__ calls per message on the hottest decode path
    if _MESSAGE_CLS is None:
        _resolve_classes()
    message = object.__new__(_MESSAGE_CLS)
    state = message.__dict__
    (
        state["src"],
        state["dst"],
        state["kind"],
        state["msg_id"],
        state["send_time"],
        state["lamport"],
        state["duplicate_of"],
        vt,
        specs,
        state["payload"],
    ) = fields
    if vt is None:
        state["vt"] = _EMPTY_VT
    else:
        vt_obj = object.__new__(_VT_CLS)
        vt_obj.__dict__["entries"] = vt
        state["vt"] = vt_obj
    state["speculations"] = frozenset(specs) if specs else _EMPTY_SPECS
    state["_flat"] = fields
    return message


def _restore_vt(entries):
    if _VT_CLS is None:
        _resolve_classes()
    if entries is None:
        return None
    vt = object.__new__(_VT_CLS)
    vt.__dict__["entries"] = entries
    return vt


#: flush entry tags whose only non-builtin field is the vector timestamp,
#: mapped to that field's position
_VT_POSITION = {"recv": 3, "timer": 3, "violation": 4, "event": 4}
#: entry tags that are already pure builtins
_PLAIN_TAGS = frozenset({"brecv", "handled", "dead", "counters"})


def _flatten_entry(entry: Tuple) -> Tuple:
    tag = entry[0]
    if tag in _PLAIN_TAGS:
        return entry
    if tag == "sent":
        return ("sent", _flatten_message(entry[1]))
    position = _VT_POSITION.get(tag)
    if position is None:
        raise _Unencodable
    vt = entry[position]
    if vt is not None:
        entry = entry[:position] + (vt.entries,) + entry[position + 1:]
    return entry


# frame tags (first byte of every ring frame).  _F_CHUNK carries one
# piece of an oversize frame: [tag][last? u8][part bytes] — the receiver
# reassembles parts in order and decodes the inner frame on the last one,
# so arbitrarily large items flow through a bounded ring without ever
# touching the pipe, and without reordering against smaller frames.
_F_PICKLE, _F_FLUSH, _F_BATCH, _F_CHUNK = 0, 1, 2, 3

def new_stats() -> Dict[str, int]:
    """A fresh transport-accounting dict (shared by both transports)."""
    return {
        "sends": 0,            # transport sends (ring frames + pipe items)
        "ring_frames": 0,      # frames that went through the ring
        "ring_bytes": 0,       # payload bytes written to the ring
        "pipe_items": 0,       # items that went over the pipe
        "oversize_frames": 0,  # data items chunked through the ring
        "nudges": 0,           # one-byte pipe wakeups after ring writes
        "pickled_bytes": 0,    # bytes produced by pickle on this side
        "messages_fast": 0,    # messages shipped without touching pickle
        "messages_pickled": 0, # messages that fell back to pickle
    }


#: control items whose order *relative to data frames* matters: a crash
#: must not leapfrog the deliveries batched before it, and deliveries
#: enqueued after a recover must not be processed while the worker still
#: believes it is crashed.  They ride the ring (as tiny pickled frames)
#: so the single FIFO decides; order-insensitive control (probes, stop,
#: acks, results) stays on the pipe.
_ORDERED_CONTROL = frozenset({"crash", "recover"})


def encode_item(item: Tuple, stats: Dict[str, int]) -> Optional[bytearray]:
    """Encode a data item as one ring frame; None for pipe control items.

    ``flush`` and ``batch`` items flatten to builtins and marshal in one
    C call; an item whose payloads are not marshallable falls back to a
    single pickled frame (counted in ``stats``).  Crash/recover control
    is encoded as a pickled frame too — it must stay ordered with the
    data stream (see ``_ORDERED_CONTROL``).
    """
    tag = item[0]
    if tag in _ORDERED_CONTROL:
        blob = pickle.dumps(item, _PICKLE_PROTO)
        stats["pickled_bytes"] += len(blob)
        out = bytearray((_F_PICKLE,))
        out += blob
        return out
    if tag == "flush":
        log = item[2]
        try:
            blob = marshal.dumps((item[1], [_flatten_entry(entry) for entry in log]))
        except (ValueError, _Unencodable):
            return _encode_pickled(item, stats)
        out = bytearray((_F_FLUSH,))
        out += blob
        stats["messages_fast"] += sum(1 for entry in log if entry[0] == "sent")
        return out
    if tag == "batch":
        batch = item[1]
        try:
            blob = marshal.dumps(
                [(tseq, _flatten_message(message)) for tseq, message in batch]
            )
        except ValueError:
            return _encode_pickled(item, stats)
        out = bytearray((_F_BATCH,))
        out += blob
        stats["messages_fast"] += len(batch)
        return out
    return None


def _encode_pickled(item: Tuple, stats: Dict[str, int]) -> bytearray:
    blob = pickle.dumps(item, _PICKLE_PROTO)
    stats["pickled_bytes"] += len(blob)
    if item[0] == "batch":
        stats["messages_pickled"] += len(item[1])
    elif item[0] == "flush":
        stats["messages_pickled"] += sum(1 for entry in item[2] if entry[0] == "sent")
    out = bytearray((_F_PICKLE,))
    out += blob
    return out


def decode_item(frame) -> Tuple:
    """Decode one ring frame (inverse of :func:`encode_item`)."""
    tag = frame[0]
    if tag == _F_FLUSH:
        pid, log = marshal.loads(frame[1:])  # decodes straight from the segment
        # entry restoration (inverse of _flatten_entry), inlined because
        # this loop runs for every recorded action
        restore_message = _restore_message
        restore_vt = _restore_vt
        plain = _PLAIN_TAGS
        positions = _VT_POSITION
        restored = []
        append = restored.append
        for entry in log:
            entry_tag = entry[0]
            if entry_tag in plain:
                append(entry)
            elif entry_tag == "sent":
                append(("sent", restore_message(entry[1])))
            else:
                position = positions[entry_tag]
                append(
                    entry[:position]
                    + (restore_vt(entry[position]),)
                    + entry[position + 1:]
                )
        return ("flush", pid, restored)
    if tag == _F_BATCH:
        batch = marshal.loads(frame[1:])
        restore_message = _restore_message
        return ("batch", [(tseq, restore_message(fields)) for tseq, fields in batch])
    if tag == _F_PICKLE:
        return pickle.loads(frame[1:])
    raise TransportError(f"corrupt frame tag {tag} in ring")


# ----------------------------------------------------------------------
# endpoints: the surface MPBackend codes against
# ----------------------------------------------------------------------
class PipeEndpoint:
    """The batched pipe transport behind the common endpoint interface.

    Functionally identical to the pre-shm transport (one pickled pipe
    write per item), but pickling explicitly via ``send_bytes`` so both
    transports account ``pickled_bytes`` the same way.
    """

    name = "pipe"

    def __init__(self, conn) -> None:
        self.conn = conn
        self.stats = new_stats()
        self.closing = False  # teardown flag (no-op here; see ShmEndpoint)

    # -- send --------------------------------------------------------------
    def send(self, item: Tuple) -> None:
        blob = pickle.dumps(item, _PICKLE_PROTO)
        stats = self.stats
        stats["sends"] += 1
        stats["pipe_items"] += 1
        stats["pickled_bytes"] += len(blob)
        if item[0] == "batch":
            stats["messages_pickled"] += len(item[1])
        elif item[0] == "flush":
            stats["messages_pickled"] += sum(1 for e in item[2] if e[0] == "sent")
        self.conn.send_bytes(blob)

    send_control = send

    # -- receive -----------------------------------------------------------
    def data_ready(self) -> bool:
        return False  # everything arrives via the pipe: mp_wait covers it

    def poll(self, timeout: float) -> bool:
        return self.conn.poll(timeout)

    def drain(self) -> List[Tuple]:
        items: List[Tuple] = []
        while self.conn.poll(0):
            try:
                items.append(pickle.loads(self.conn.recv_bytes()))
            except EOFError:
                # deliver everything read before the EOF (a worker's last
                # result arrives exactly this way: send, close, exit) —
                # the next drain() call raises the EOF with nothing lost
                if items:
                    return items
                raise
        return items

    def drain_data(self) -> List[Tuple]:
        """Salvageable data after a peer death: nothing outlives a pipe."""
        return []

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ShmEndpoint:
    """One side of a shared-memory link: outgoing ring + incoming ring + pipe.

    Data items (``flush``/``batch``) are marshal-packed into the
    outgoing ring — oversize frames in bounded chunks the receiver
    reassembles in place, so *all* data takes the one ordered ring FIFO.
    The pipe carries only tiny, bounded control traffic (probes,
    crash/recover, stop, acks, results) and the one-byte wakeup nudges.
    """

    name = "shm"

    def __init__(
        self,
        conn,
        send_ring: SpscRing,
        recv_ring: SpscRing,
        close_segments: Optional[Callable[[], None]] = None,
        write_timeout: float = 10.0,
        abort: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.conn = conn
        self._send_ring = send_ring
        self._recv_ring = recv_ring
        self._close_segments = close_segments
        self._write_timeout = write_timeout
        self._abort = abort
        #: teardown signal: a blocked ring write re-checks this flag and
        #: gives up immediately, so senders can always be reclaimed
        self.closing = False
        #: invoked while a ring write waits for space — the router hangs
        #: its drain-the-uplinks loop here, which is what keeps direct
        #: (threadless) ring writes deadlock-free
        self.wait_hook: Optional[Callable[[], None]] = None
        self._oversize = send_ring.capacity // OVERSIZE_DIVISOR
        self._chunk_buf = bytearray()
        self._last_nudge_head = -1
        self.stats = new_stats()

    # -- send --------------------------------------------------------------
    def _send_pickled(self, item: Tuple) -> None:
        # order-insensitive control only: probes, stop, acks, results —
        # tiny, bounded-rate items, so a direct blocking write is safe
        # (data and ordered control never ride the pipe on this transport)
        blob = pickle.dumps(item, _PICKLE_PROTO)
        self.stats["pipe_items"] += 1
        self.stats["pickled_bytes"] += len(blob)
        self.conn.send_bytes(blob)

    def _nudge(self) -> None:
        """Wake a receiver that may be asleep in ``select``.

        Ring writes are invisible to the pipe wait, so after committing
        frames the sender ships a one-byte wakeup — but only when the
        consumer has made progress since the last nudge: at most one
        wakeup is ever outstanding, so a stalled reader cannot fill the
        pipe with them, and a missed wakeup is bounded by the receive
        loops' 2 ms idle poll.
        """
        try:
            head = self._send_ring.consumer_progress()
        except TransportError:  # peer died mid-publish: detected elsewhere
            return
        if head == self._last_nudge_head:
            return
        self._last_nudge_head = head
        self.stats["nudges"] += 1
        try:
            self.conn.send_bytes(_NUDGE)
        except (BrokenPipeError, OSError):  # peer gone: detected elsewhere
            pass

    def _aborting(self) -> bool:
        return self.closing or (self._abort is not None and self._abort())

    def _write_ring(self, frame) -> None:
        if not self._send_ring.write(
            frame, self._write_timeout, abort=self._aborting, on_wait=self.wait_hook
        ):
            raise RingBackpressureTimeout(
                f"ring write of {len(frame)} bytes timed out after "
                f"{self._write_timeout}s (peer stuck, gone, or tearing down)"
            )
        self.stats["ring_frames"] += 1
        self.stats["ring_bytes"] += len(frame)

    def send(self, item: Tuple) -> None:
        stats = self.stats
        stats["sends"] += 1
        # snapshot the codec counters: a frame whose ring write times out
        # never reached the peer, so it must not count as shipped
        counted = (
            stats["messages_fast"],
            stats["messages_pickled"],
            stats["pickled_bytes"],
        )
        frame = encode_item(item, stats)
        if frame is None:
            self._send_pickled(item)
            return
        try:
            if len(frame) > self._oversize:
                # oversize frames flow through the ring in bounded chunks;
                # backpressure drains the reassembly side between pieces,
                # so arbitrarily large items fit an arbitrarily small ring
                stats["oversize_frames"] += 1
                view = memoryview(frame)
                for cut in range(0, len(frame), self._oversize):
                    part = view[cut:cut + self._oversize]
                    chunk = bytearray(
                        (_F_CHUNK, 1 if cut + self._oversize >= len(frame) else 0)
                    )
                    chunk += part
                    self._write_ring(chunk)
            else:
                self._write_ring(frame)
        except TransportError:
            (
                stats["messages_fast"],
                stats["messages_pickled"],
                stats["pickled_bytes"],
            ) = counted
            raise
        self._nudge()

    def send_control(self, item: Tuple) -> None:
        self.stats["sends"] += 1
        self._send_pickled(item)

    # -- receive -----------------------------------------------------------
    def data_ready(self) -> bool:
        return self._recv_ring.readable()

    def poll(self, timeout: float) -> bool:
        """Wait for ring or pipe traffic.

        Senders follow committed ring frames with a pipe nudge, so the
        pipe wait wakes for ring data too; the trailing ``data_ready``
        check catches a frame that raced the wait, and the callers' 2 ms
        idle cadence bounds the cost of a coalesced-away nudge.
        """
        if self.data_ready():
            return True
        if self.conn.poll(timeout):
            return True
        return self.data_ready()

    def _drain_ring(self, items: List[Tuple]) -> None:
        def on_frame(frame) -> bool:
            if frame[0] == _F_CHUNK:
                self._chunk_buf += frame[2:]
                if frame[1]:  # last chunk: decode the reassembled frame
                    whole = self._chunk_buf
                    self._chunk_buf = bytearray()
                    items.append(decode_item(whole))
                return True
            items.append(decode_item(frame))
            return True

        self._recv_ring.read(on_frame)

    def drain(self) -> List[Tuple]:
        items: List[Tuple] = []
        control: List[Tuple] = []
        eof = False
        while self.conn.poll(0):
            try:
                blob = self.conn.recv_bytes()
            except EOFError:
                # deliver everything already read (and committed to the
                # ring) first; the next drain() call re-raises the EOF
                eof = True
                break
            if blob == _NUDGE:
                continue  # wakeup only; the data is in the ring
            control.append(pickle.loads(blob))
        self._drain_ring(items)
        # ring data first (it is the ordered log), control after: a
        # "stop" can never outrun deliveries already committed to the ring
        items.extend(control)
        if eof and not items:
            raise EOFError("transport pipe closed")
        return items

    def drain_data(self) -> List[Tuple]:
        """Ring-only drain: salvage frames committed before a peer died.

        A producer publishes its tail only after a frame is fully
        written, so everything this returns is complete — at worst an
        unfinished chunk sequence stays buffered and undelivered.
        """
        items: List[Tuple] = []
        self._drain_ring(items)
        return items

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._close_segments is not None:
            self._close_segments()
            self._close_segments = None
