"""The application programming model: event-driven processes.

Distributed applications are written as subclasses of :class:`Process`.
A process owns a dictionary of local state (``self.state``), reacts to
messages and timers through decorated handler methods, declares runtime
invariants, and interacts with the outside world *only* through the
:class:`ProcessContext` the cluster provides.  Funnelling every
nondeterministic interaction (sends, timer registration, clock reads,
random draws) through the context is what lets the Scroll record the
execution and the Time Machine checkpoint and roll it back without any
cooperation from application code — the "automated and transparent
fashion" the paper asks for in Section 3.2.

Example
-------
.. code-block:: python

    class Counter(Process):
        def on_start(self):
            self.state["count"] = 0

        @handler("INC")
        def handle_inc(self, msg):
            self.state["count"] += msg.payload
            self.send(msg.src, "ACK", self.state["count"])

        @invariant("count-non-negative")
        def check_count(self):
            return self.state["count"] >= 0
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dsim.clock import LamportClock, VectorClock, VectorTimestamp
from repro.dsim.message import Message, make_message
from repro.dsim.rng import DeterministicRNG
from repro.errors import InvariantViolation, SimulationError

_HANDLER_ATTR = "_repro_handles_kind"
_TIMER_ATTR = "_repro_handles_timer"
_INVARIANT_ATTR = "_repro_invariant_name"


def handler(kind: str) -> Callable:
    """Mark a method as the handler for messages of ``kind``."""

    def decorate(func: Callable) -> Callable:
        setattr(func, _HANDLER_ATTR, kind)
        return func

    return decorate


def timer_handler(name: str) -> Callable:
    """Mark a method as the handler for timers named ``name``."""

    def decorate(func: Callable) -> Callable:
        setattr(func, _TIMER_ATTR, name)
        return func

    return decorate


def invariant(name: str) -> Callable:
    """Mark a zero-argument method as a named invariant.

    The method must return a truthy value when the invariant holds.  It
    may also raise :class:`InvariantViolation` directly to attach a
    detailed message.
    """

    def decorate(func: Callable) -> Callable:
        setattr(func, _INVARIANT_ATTR, name)
        return func

    return decorate


@dataclass
class ProcessContext:
    """Everything a process needs from its environment.

    The cluster builds one context per process; the ``multiprocessing``
    backend and the Investigator build their own variants.  All fields
    are callables or simple objects so alternative environments can
    substitute them freely.
    """

    pid: str
    peers: Tuple[str, ...]
    send_fn: Callable[[Message], None]
    timer_fn: Callable[[str, float, Any], None]
    cancel_timer_fn: Callable[[str], None]
    now_fn: Callable[[], float]
    rng: DeterministicRNG
    record_random_fn: Optional[Callable[[str, str, Any], None]] = None
    record_clock_fn: Optional[Callable[[str, float], None]] = None
    log_fn: Optional[Callable[[str, str], None]] = None
    #: the application-visible clock used by :meth:`Process.now`; defaults
    #: to ``now_fn``.  Replay substitutes the recorded-outcome stream here
    #: while ``now_fn`` stays ambient (message timestamps and other
    #: runtime bookkeeping must not consume recorded clock reads).
    read_clock_fn: Optional[Callable[[], float]] = None
    #: current end position of the run's Scroll, when one is recording;
    #: checkpoints stamp it so rollback can truncate the log's tiers.
    scroll_position_fn: Optional[Callable[[], Optional[int]]] = None


@dataclass
class ProcessCheckpoint:
    """A self-contained snapshot of one process's local state.

    The Time Machine wraps these into globally consistent recovery
    lines.  ``sequence`` is a per-process checkpoint counter; ``vt`` is
    the vector timestamp at capture time, which is what consistency
    checks compare.
    """

    pid: str
    sequence: int
    time: float
    state: Dict[str, Any]
    vt: VectorTimestamp
    lamport: int
    rng_draws: int
    sent_count: int
    received_count: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def size_bytes(self) -> int:
        """Approximate serialized size, used by checkpoint-cost benchmarks."""
        import pickle

        return len(pickle.dumps(self.state, protocol=pickle.HIGHEST_PROTOCOL))


class ConfiguredFactory:
    """A picklable zero-argument factory: a Process class plus instance attributes.

    Application builders traditionally parameterise process classes by
    mutating class attributes (``Master.chunks = n``).  That pattern
    breaks on the multiprocessing backend's ``spawn`` start method — the
    worker re-imports the module and sees the class defaults — and leaks
    configuration between clusters built in one interpreter.  This
    factory instead stamps the configuration onto each *instance*
    (shadowing the class attributes), and pickles cleanly, so the
    configuration travels with the factory wherever the worker is
    started.
    """

    def __init__(self, cls, **attrs) -> None:
        self.cls = cls
        self.attrs = attrs

    def __call__(self) -> "Process":
        process = self.cls()
        for name, value in self.attrs.items():
            setattr(process, name, value)
        return process

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v!r}" for k, v in self.attrs.items())
        return f"ConfiguredFactory({self.cls.__name__}, {inner})"


class Process:
    """Base class for all simulated application processes."""

    def __init__(self) -> None:
        self.state: Dict[str, Any] = {}
        self._ctx: Optional[ProcessContext] = None
        self._vector_clock: Optional[VectorClock] = None
        self._lamport: Optional[LamportClock] = None
        self._crashed = False
        self._sent_count = 0
        self._received_count = 0
        self._checkpoint_sequence = 0
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._timer_handlers: Dict[str, Callable[[Any], None]] = {}
        self._invariants: Dict[str, Callable[[], Any]] = {}
        self._collect_decorated_members()

    # ------------------------------------------------------------------
    # wiring (called by the environment, not by applications)
    # ------------------------------------------------------------------
    def bind(self, ctx: ProcessContext) -> None:
        """Attach the process to its execution context."""
        self._ctx = ctx
        self._vector_clock = VectorClock(ctx.pid)
        self._lamport = LamportClock(ctx.pid)

    def swap_context(self, ctx: Optional[ProcessContext]) -> Optional[ProcessContext]:
        """Swap the execution context *without* resetting logical clocks.

        Replay-forward temporarily redirects a live, checkpoint-restored
        process through a replay context (recorded rng/clock/send
        interception); unlike :meth:`bind`, the vector and Lamport
        clocks restored from the checkpoint keep evolving across the
        swap.  Returns the previous context.
        """
        previous = self._ctx
        self._ctx = ctx
        return previous

    def _collect_decorated_members(self) -> None:
        # Walk the class hierarchy (not dir(self)) so instance properties are
        # never triggered; subclasses override base-class handlers because the
        # MRO is traversed from most-derived to least-derived.
        seen: set = set()
        for klass in type(self).__mro__:
            for name, member in vars(klass).items():
                if name in seen or not callable(member):
                    continue
                seen.add(name)
                bound = getattr(self, name)
                kind = getattr(member, _HANDLER_ATTR, None)
                if kind is not None:
                    self._handlers[kind] = bound
                timer_name = getattr(member, _TIMER_ATTR, None)
                if timer_name is not None:
                    self._timer_handlers[timer_name] = bound
                inv_name = getattr(member, _INVARIANT_ATTR, None)
                if inv_name is not None:
                    self._invariants[inv_name] = bound

    # ------------------------------------------------------------------
    # identity and environment access
    # ------------------------------------------------------------------
    @property
    def ctx(self) -> ProcessContext:
        if self._ctx is None:
            raise SimulationError("process is not bound to a context; was it added to a cluster?")
        return self._ctx

    @property
    def pid(self) -> str:
        """This process's id."""
        return self.ctx.pid

    @property
    def peers(self) -> Tuple[str, ...]:
        """All process ids in the cluster, excluding this one."""
        return tuple(p for p in self.ctx.peers if p != self.ctx.pid)

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def vector_timestamp(self) -> VectorTimestamp:
        """Current vector timestamp of this process."""
        if self._vector_clock is None:
            return VectorTimestamp()
        return self._vector_clock.snapshot()

    @property
    def lamport_time(self) -> int:
        return self._lamport.time if self._lamport is not None else 0

    @property
    def messages_sent(self) -> int:
        return self._sent_count

    @property
    def messages_received(self) -> int:
        return self._received_count

    # ------------------------------------------------------------------
    # application-facing API
    # ------------------------------------------------------------------
    def send(self, dst: str, kind: str, payload: Any = None) -> Message:
        """Send a message; returns the message that entered the network."""
        vt = self._vector_clock.tick() if self._vector_clock else VectorTimestamp()
        lamport = self._lamport.tick() if self._lamport else 0
        message = make_message(
            self.pid, dst, kind, payload, self.ctx.now_fn(), vt, lamport
        )
        self._sent_count += 1
        self.ctx.send_fn(message)
        return message

    def broadcast(self, kind: str, payload: Any = None) -> List[Message]:
        """Send the same message to every peer."""
        return [self.send(peer, kind, payload) for peer in self.peers]

    def set_timer(self, name: str, delay: float, payload: Any = None) -> None:
        """Arm a named timer ``delay`` time units in the future."""
        if delay < 0:
            raise SimulationError("timer delay must be non-negative")
        self.ctx.timer_fn(name, delay, payload)

    def cancel_timer(self, name: str) -> None:
        """Cancel all pending timers with the given name."""
        self.ctx.cancel_timer_fn(name)

    def now(self) -> float:
        """Read the simulation clock (a recorded nondeterministic action)."""
        read = self.ctx.read_clock_fn or self.ctx.now_fn
        value = read()
        if self.ctx.record_clock_fn is not None:
            self.ctx.record_clock_fn(self.pid, value)
        return value

    def random(self) -> float:
        """Draw a uniform float from this process's deterministic stream."""
        value = self.ctx.rng.random()
        self._record_random("random", value)
        return value

    def randint(self, low: int, high: int) -> int:
        """Draw a uniform integer in [low, high] from this process's stream."""
        value = self.ctx.rng.randint(low, high)
        self._record_random("randint", value)
        return value

    def choice(self, items: Sequence[Any]) -> Any:
        """Pick a random element of ``items`` from this process's stream."""
        value = self.ctx.rng.choice(items)
        self._record_random("choice", value)
        return value

    def log(self, text: str) -> None:
        """Emit an application-level log line into the run trace."""
        if self.ctx.log_fn is not None:
            self.ctx.log_fn(self.pid, text)

    def _record_random(self, method: str, value: Any) -> None:
        if self.ctx.record_random_fn is not None:
            self.ctx.record_random_fn(self.pid, method, value)

    # ------------------------------------------------------------------
    # lifecycle callbacks (override in applications)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the cluster starts.  Initialise state here."""

    def on_stop(self) -> None:
        """Called when the run ends normally."""

    def on_crash(self) -> None:
        """Called just before the process is marked crashed."""

    def on_recover(self) -> None:
        """Called after the process is restarted following a crash."""

    def on_unhandled(self, message: Message) -> None:
        """Called for messages whose kind has no registered handler."""
        raise SimulationError(
            f"process {self.pid!r} has no handler for message kind {message.kind!r}"
        )

    # ------------------------------------------------------------------
    # dispatch (called by the environment)
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        """Dispatch an incoming message to its handler, updating clocks."""
        if self._crashed:
            return
        if self._vector_clock is not None:
            self._vector_clock.merge(message.vt)
        if self._lamport is not None:
            self._lamport.merge(message.lamport)
        self._received_count += 1
        handler_fn = self._handlers.get(message.kind)
        if handler_fn is None:
            self.on_unhandled(message)
        else:
            handler_fn(message)

    def fire_timer(self, name: str, payload: Any = None) -> None:
        """Dispatch a timer firing to its handler."""
        if self._crashed:
            return
        if self._vector_clock is not None:
            self._vector_clock.tick()
        if self._lamport is not None:
            self._lamport.tick()
        handler_fn = self._timer_handlers.get(name)
        if handler_fn is None:
            raise SimulationError(f"process {self.pid!r} has no handler for timer {name!r}")
        handler_fn(payload)

    def mark_crashed(self) -> None:
        self.on_crash()
        self._crashed = True

    def mark_recovered(self) -> None:
        self._crashed = False
        self.on_recover()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def invariant_names(self) -> List[str]:
        """Names of all invariants declared on this process."""
        return sorted(self._invariants)

    def check_invariants(self) -> None:
        """Evaluate every declared invariant; raise on the first failure."""
        for name, check in sorted(self._invariants.items()):
            try:
                ok = check()
            except InvariantViolation:
                raise
            except Exception as exc:  # invariant code itself crashed
                raise InvariantViolation(name, self.pid, f"invariant check raised {exc!r}") from exc
            if not ok:
                raise InvariantViolation(name, self.pid, "predicate returned a falsy value")

    # ------------------------------------------------------------------
    # checkpointing support
    # ------------------------------------------------------------------
    def capture_checkpoint(self, time: float) -> ProcessCheckpoint:
        """Capture a deep snapshot of the local state.

        When the environment records a Scroll, the checkpoint also
        stamps the log's current end position (``extra["scroll_position"]``
        — the spill watermark plus the hot-tier length), which is what
        lets a rollback truncate both storage tiers to the recovery line.
        """
        self._checkpoint_sequence += 1
        checkpoint = ProcessCheckpoint(
            pid=self.pid,
            sequence=self._checkpoint_sequence,
            time=time,
            state=copy.deepcopy(self.state),
            vt=self.vector_timestamp,
            lamport=self.lamport_time,
            rng_draws=self.ctx.rng.draws,
            sent_count=self._sent_count,
            received_count=self._received_count,
        )
        position_fn = self.ctx.scroll_position_fn
        if position_fn is not None:
            position = position_fn()
            if position is not None:
                checkpoint.extra["scroll_position"] = position
        return checkpoint

    def restore_checkpoint(self, checkpoint: ProcessCheckpoint) -> None:
        """Restore local state, clocks and the random stream from a snapshot."""
        if checkpoint.pid != self.pid:
            raise SimulationError(
                f"checkpoint for {checkpoint.pid!r} cannot be restored into {self.pid!r}"
            )
        self.state = copy.deepcopy(checkpoint.state)
        if self._vector_clock is not None:
            self._vector_clock.restore(checkpoint.vt)
        if self._lamport is not None:
            self._lamport.restore(checkpoint.lamport)
        self.ctx.rng.restore(checkpoint.rng_draws)
        self._sent_count = checkpoint.sent_count
        self._received_count = checkpoint.received_count
        self._crashed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pid = self._ctx.pid if self._ctx is not None else "<unbound>"
        return f"{type(self).__name__}(pid={pid!r})"
