"""Deprecated shim over :class:`repro.dsim.backend.MPBackend`.

This module used to hold a standalone ``multiprocessing`` cluster with
its own registration, routing, crash-injection and result-collection
logic, shipping one pickled queue write per message.  That substrate now
lives behind the unified :class:`~repro.dsim.backend.Backend` protocol:
build a :class:`~repro.dsim.cluster.Cluster` with ``backend="mp"`` (or
an explicit :class:`~repro.dsim.backend.MPBackend`) and use the normal
cluster API — the transport batches deliveries into one pipe write per
destination worker.

:class:`MPCluster` remains only as a thin adapter for the old call
sites; new code must not import this module (``scripts/check.sh``
enforces the boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.dsim.backend import MPBackend, MPBackendOptions
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.failure import CrashFault, FailurePlan
from repro.dsim.process import Process
from repro.errors import SimulationError


@dataclass
class MPRunResult:
    """Result of a multiprocessing run (legacy shape)."""

    final_states: Dict[str, Dict[str, Any]]
    messages_sent: Dict[str, int]
    messages_received: Dict[str, int]
    wall_seconds: float
    recorded_actions: Dict[str, int] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())


class MPCluster:
    """Legacy adapter: the old ``MPCluster`` API over the unified backend.

    Registration mirrors the old class (factories only, wall-clock crash
    times, ``run(duration)`` in wall seconds).  Execution is the batched
    :class:`~repro.dsim.backend.MPBackend`; ``time_scale`` is pinned to
    1.0 so one simulated time unit equals one wall second, matching the
    old semantics.
    """

    def __init__(self, seed: int = 0, record_actions: bool = False) -> None:
        self.seed = seed
        self.record_actions = record_actions
        self._factories: Dict[str, Callable[[], Process]] = {}
        self._crash_requests: List[Tuple[float, str]] = []

    def add_process(self, pid: str, factory: Callable[[], Process]) -> None:
        """Register a process factory under ``pid``."""
        if pid in self._factories:
            raise SimulationError(f"duplicate process id {pid!r}")
        if isinstance(factory, Process):
            raise TypeError(
                "the multiprocessing backend requires zero-argument factories, not instances"
            )
        self._factories[pid] = factory

    def crash_after(self, pid: str, seconds: float) -> None:
        """Cooperatively crash ``pid`` after ``seconds`` of wall time."""
        if pid not in self._factories:
            raise SimulationError(f"unknown process id {pid!r}")
        self._crash_requests.append((seconds, pid))

    def run(self, duration: float = 1.0) -> MPRunResult:
        """Run all workers for up to ``duration`` wall seconds and collect results."""
        if not self._factories:
            raise SimulationError("cannot run an empty MPCluster")
        # The requested duration must win over the backend's default wall
        # cap, matching the old "run for duration seconds" contract.
        backend = MPBackend(
            MPBackendOptions(time_scale=1.0, max_wall_seconds=duration + 5.0)
        )
        cluster = Cluster(ClusterConfig(seed=self.seed), backend=backend)
        for pid, factory in self._factories.items():
            cluster.add_process(pid, factory)
        plan = FailurePlan()
        for seconds, pid in self._crash_requests:
            plan.add(CrashFault(pid, at=max(seconds, 1e-9)))
        cluster.set_failure_plan(plan)
        result = cluster.run(until=duration)
        stats = backend.worker_stats
        # Old semantics: recorded_actions counted sends, deliveries and
        # random draws, and only when recording was requested.
        recorded = (
            {
                pid: s.get("sent", 0) + s.get("received", 0) + s.get("recorded", 0)
                for pid, s in stats.items()
            }
            if self.record_actions
            else {}
        )
        return MPRunResult(
            final_states=result.process_states,
            messages_sent={pid: s.get("sent", 0) for pid, s in stats.items()},
            messages_received={pid: s.get("received", 0) for pid, s in stats.items()},
            wall_seconds=result.final_time,  # time_scale=1.0: sim units are wall seconds
            recorded_actions=recorded,
        )
