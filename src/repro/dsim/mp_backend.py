"""``multiprocessing`` backend: run the same process classes on real OS processes.

The discrete-event simulator is the primary substrate because it is
deterministic and cheap to roll back.  This backend exists for fidelity:
it runs the *same* :class:`~repro.dsim.process.Process` subclasses as
real OS processes exchanging pickled messages over queues, which is the
closest laptop-scale equivalent of the paper's cluster of communicating
POSIX processes.  It is used by the overhead benchmarks (how expensive is
Scroll-style recording on real processes?) and by integration tests that
check the two backends compute the same application results.

Limitations (documented, deliberate):

* timers are serviced with wall-clock granularity (~1 ms), so runs are
  not bit-for-bit deterministic — which is exactly the nondeterminism
  the Scroll exists to capture;
* crash injection is cooperative (the worker stops processing) rather
  than ``SIGKILL``, so final state can still be collected.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import queue as queue_module
import time as wall_time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dsim.clock import VectorTimestamp
from repro.dsim.message import Message
from repro.dsim.process import Process, ProcessContext
from repro.dsim.rng import DeterministicRNG, derive_seed
from repro.errors import SimulationError

_STOP = "__repro_stop__"
_CRASH = "__repro_crash__"


@dataclass
class MPRunResult:
    """Result of a multiprocessing run."""

    final_states: Dict[str, Dict[str, Any]]
    messages_sent: Dict[str, int]
    messages_received: Dict[str, int]
    wall_seconds: float
    recorded_actions: Dict[str, int] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())


def _worker_main(
    pid: str,
    factory: Callable[[], Process],
    all_pids: Tuple[str, ...],
    seed: int,
    inbox: mp.Queue,
    router: mp.Queue,
    results: mp.Queue,
    duration: float,
    record_actions: bool,
) -> None:
    """Entry point of one worker process."""
    process = factory()
    start = wall_time.monotonic()
    timers: List[Tuple[float, int, str, Any]] = []
    timer_seq = 0
    recorded = 0
    crashed = False

    def now_fn() -> float:
        return wall_time.monotonic() - start

    def send_fn(message: Message) -> None:
        nonlocal recorded
        if record_actions:
            recorded += 1
        router.put(("msg", message.to_record()))

    def timer_fn(name: str, delay: float, payload: Any) -> None:
        nonlocal timer_seq
        timer_seq += 1
        heapq.heappush(timers, (now_fn() + delay, timer_seq, name, payload))

    def cancel_timer_fn(name: str) -> None:
        nonlocal timers
        timers = [entry for entry in timers if entry[2] != name]
        heapq.heapify(timers)

    def record_random(pid_: str, method: str, value: Any) -> None:
        nonlocal recorded
        if record_actions:
            recorded += 1

    ctx = ProcessContext(
        pid=pid,
        peers=all_pids,
        send_fn=send_fn,
        timer_fn=timer_fn,
        cancel_timer_fn=cancel_timer_fn,
        now_fn=now_fn,
        rng=DeterministicRNG(derive_seed(seed, "mp-process", pid)),
        record_random_fn=record_random if record_actions else None,
    )
    process.bind(ctx)
    process.on_start()

    deadline = start + duration
    while wall_time.monotonic() < deadline:
        # fire due timers first
        fired_timer = False
        while timers and timers[0][0] <= now_fn() and not crashed:
            _, _, name, payload = heapq.heappop(timers)
            process.fire_timer(name, payload)
            fired_timer = True
        timeout = 0.001 if fired_timer else 0.01
        try:
            item = inbox.get(timeout=timeout)
        except queue_module.Empty:
            continue
        if item == _STOP:
            break
        if item == _CRASH:
            crashed = True
            process.mark_crashed()
            continue
        if crashed:
            continue
        message = Message.from_record(item)
        if record_actions:
            recorded += 1
        process.deliver(message)

    process.on_stop()
    results.put(
        (
            pid,
            dict(process.state),
            process.messages_sent,
            process.messages_received,
            recorded,
        )
    )


class MPCluster:
    """Runs :class:`Process` subclasses on real OS processes.

    Usage mirrors :class:`~repro.dsim.cluster.Cluster`: register process
    factories, then :meth:`run` for a wall-clock duration.  Messages are
    routed by the parent process, which also honours cooperative crash
    injection via :meth:`crash_after`.
    """

    def __init__(self, seed: int = 0, record_actions: bool = False) -> None:
        self.seed = seed
        self.record_actions = record_actions
        self._factories: Dict[str, Callable[[], Process]] = {}
        self._crash_requests: List[Tuple[float, str]] = []

    def add_process(self, pid: str, factory: Callable[[], Process]) -> None:
        """Register a process factory under ``pid``."""
        if pid in self._factories:
            raise SimulationError(f"duplicate process id {pid!r}")
        if isinstance(factory, Process):
            raise TypeError("the multiprocessing backend requires picklable factories, not instances")
        self._factories[pid] = factory

    def crash_after(self, pid: str, seconds: float) -> None:
        """Cooperatively crash ``pid`` after ``seconds`` of wall time."""
        if pid not in self._factories:
            raise SimulationError(f"unknown process id {pid!r}")
        self._crash_requests.append((seconds, pid))

    def run(self, duration: float = 1.0) -> MPRunResult:
        """Run all workers for ``duration`` wall-clock seconds and collect results."""
        if not self._factories:
            raise SimulationError("cannot run an empty MPCluster")
        ctx = mp.get_context("spawn") if mp.get_start_method(allow_none=True) is None else mp.get_context()
        all_pids = tuple(sorted(self._factories))
        inboxes: Dict[str, mp.Queue] = {pid: ctx.Queue() for pid in all_pids}
        router: mp.Queue = ctx.Queue()
        results: mp.Queue = ctx.Queue()

        workers = []
        start = wall_time.monotonic()
        for pid in all_pids:
            worker = ctx.Process(
                target=_worker_main,
                args=(
                    pid,
                    self._factories[pid],
                    all_pids,
                    self.seed,
                    inboxes[pid],
                    router,
                    results,
                    duration,
                    self.record_actions,
                ),
                daemon=True,
            )
            worker.start()
            workers.append(worker)

        crash_schedule = sorted(self._crash_requests)
        crash_index = 0
        deadline = start + duration
        # Route messages until the deadline passes.
        while wall_time.monotonic() < deadline:
            elapsed = wall_time.monotonic() - start
            while crash_index < len(crash_schedule) and crash_schedule[crash_index][0] <= elapsed:
                _, crash_pid = crash_schedule[crash_index]
                inboxes[crash_pid].put(_CRASH)
                crash_index += 1
            try:
                tag, record = router.get(timeout=0.01)
            except queue_module.Empty:
                continue
            if tag != "msg":
                continue
            dst = record["dst"]
            if dst in inboxes:
                inboxes[dst].put(record)

        for pid in all_pids:
            inboxes[pid].put(_STOP)

        final_states: Dict[str, Dict[str, Any]] = {}
        sent: Dict[str, int] = {}
        received: Dict[str, int] = {}
        recorded: Dict[str, int] = {}
        for _ in all_pids:
            try:
                pid, state, n_sent, n_received, n_recorded = results.get(timeout=5.0)
            except queue_module.Empty:  # pragma: no cover - only on pathological hangs
                break
            final_states[pid] = state
            sent[pid] = n_sent
            received[pid] = n_received
            recorded[pid] = n_recorded

        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()

        return MPRunResult(
            final_states=final_states,
            messages_sent=sent,
            messages_received=received,
            wall_seconds=wall_time.monotonic() - start,
            recorded_actions=recorded,
        )
